"""Tests for the evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    empirical_cdf,
    error_reduction,
    format_percent,
    format_table,
    fraction_above_threshold,
    mae,
    mse,
    pearson_correlation,
    per_trajectory_rte,
    relative_trajectory_error,
    rmse,
    rmsle,
    step_error,
    trajectory_length,
)


class TestRegressionMetrics:
    def test_mse_known_value(self):
        assert mse(np.array([1.0, 3.0]), np.array([0.0, 1.0])) == pytest.approx(2.5)

    def test_rmse_is_sqrt_of_mse(self):
        predictions = np.array([2.0, 4.0])
        targets = np.array([0.0, 0.0])
        assert rmse(predictions, targets) == pytest.approx(np.sqrt(mse(predictions, targets)))

    def test_mae_known_value(self):
        assert mae(np.array([1.0, -3.0]), np.array([0.0, 0.0])) == pytest.approx(2.0)

    def test_rmsle_known_value(self):
        predictions = np.array([np.e - 1.0])
        targets = np.array([0.0])
        assert rmsle(predictions, targets) == pytest.approx(1.0)

    def test_rmsle_clips_negative_predictions(self):
        assert np.isfinite(rmsle(np.array([-5.0]), np.array([10.0])))

    def test_rmsle_rejects_negative_targets(self):
        with pytest.raises(ValueError):
            rmsle(np.array([1.0]), np.array([-1.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            mae(np.array([]), np.array([]))

    def test_error_reduction(self):
        assert error_reduction(10.0, 8.0) == pytest.approx(0.2)
        assert error_reduction(0.0, 5.0) == 0.0
        assert error_reduction(10.0, 12.0) == pytest.approx(-0.2)

    @given(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_metric_properties(self, n, seed):
        rng = np.random.default_rng(seed)
        predictions = rng.normal(size=n)
        targets = rng.normal(size=n)
        assert mse(predictions, targets) >= 0
        assert mae(predictions, targets) >= 0
        assert mse(targets, targets) == 0
        assert mae(predictions, targets) <= rmse(predictions, targets) + 1e-12


class TestTrajectoryMetrics:
    def test_step_error_known_value(self):
        predictions = np.array([[1.0, 0.0], [0.0, 1.0]])
        targets = np.array([[0.0, 0.0], [0.0, 0.0]])
        assert step_error(predictions, targets) == pytest.approx(1.0)

    def test_rte_uses_endpoints(self):
        predictions = np.array([[1.0, 0.0], [-1.0, 0.0]])
        targets = np.array([[0.0, 0.0], [0.0, 0.0]])
        # per-step errors cancel at the trajectory end point
        assert relative_trajectory_error(predictions, targets) == pytest.approx(0.0)
        assert step_error(predictions, targets) == pytest.approx(1.0)

    def test_trajectory_length(self):
        targets = np.array([[3.0, 4.0], [3.0, 4.0]])
        assert trajectory_length(targets) == pytest.approx(10.0)

    def test_per_trajectory_rte(self):
        predictions = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 2.0]])
        targets = np.zeros((3, 2))
        ids = np.array([0, 0, 1])
        errors = per_trajectory_rte(predictions, targets, ids)
        assert errors[0] == pytest.approx(2.0)
        assert errors[1] == pytest.approx(2.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            step_error(np.zeros((3, 3)), np.zeros((3, 3)))
        with pytest.raises(ValueError):
            per_trajectory_rte(np.zeros((3, 2)), np.zeros((3, 2)), np.zeros(2))


class TestStats:
    def test_pearson_perfect_correlation(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_pearson_constant_input_returns_zero(self):
        assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_pearson_validation(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.arange(3.0), np.arange(4.0))
        with pytest.raises(ValueError):
            pearson_correlation(np.array([1.0]), np.array([2.0]))

    def test_empirical_cdf(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        grid = np.array([0.0, 2.5, 5.0])
        np.testing.assert_allclose(empirical_cdf(values, grid), [0.0, 0.5, 1.0])

    def test_fraction_above_threshold(self):
        values = np.array([0.1, 0.5, 1.0, 2.0])
        np.testing.assert_allclose(
            fraction_above_threshold(values, np.array([0.0, 1.0, 3.0])), [1.0, 0.5, 0.0]
        )


class TestReport:
    def test_format_percent(self):
        assert format_percent(0.136) == "13.6%"
        assert format_percent(0.5, digits=0) == "50%"

    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1.0], ["long_name", 2.5]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_table_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])
