"""Tests for the data preprocessing helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Standardizer, corrupt_features


class TestStandardizer:
    def test_tabular_statistics(self):
        rng = np.random.default_rng(0)
        data = rng.normal(loc=3.0, scale=2.0, size=(500, 4))
        scaler = Standardizer().fit(data)
        transformed = scaler.transform(data)
        np.testing.assert_allclose(transformed.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(transformed.std(axis=0), 1.0, atol=1e-10)

    def test_channelwise_statistics_for_windows(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(100, 3, 20)) * np.array([1.0, 5.0, 0.1])[None, :, None]
        scaler = Standardizer().fit(data)
        transformed = scaler.transform(data)
        stds = transformed.std(axis=(0, 2))
        np.testing.assert_allclose(stds, 1.0, atol=1e-8)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Standardizer().transform(np.zeros((2, 2)))

    def test_constant_feature_does_not_divide_by_zero(self):
        data = np.column_stack([np.ones(50), np.arange(50.0)])
        transformed = Standardizer().fit_transform(data)
        assert np.all(np.isfinite(transformed))

    def test_fit_requires_2d(self):
        with pytest.raises(ValueError):
            Standardizer().fit(np.zeros(5))

    def test_same_transform_applied_to_new_data(self):
        rng = np.random.default_rng(1)
        train = rng.normal(loc=10.0, size=(100, 2))
        scaler = Standardizer().fit(train)
        other = scaler.transform(np.full((5, 2), 10.0))
        np.testing.assert_allclose(other, scaler.transform(np.full((5, 2), 10.0)))


class TestCorruptFeatures:
    def test_only_masked_rows_change(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(20, 4))
        mask = np.zeros(20, dtype=bool)
        mask[:5] = True
        corrupted = corrupt_features(features, mask, rng)
        np.testing.assert_array_equal(corrupted[~mask], features[~mask])
        assert not np.allclose(corrupted[mask], features[mask])

    def test_only_selected_columns_change(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(10, 4))
        mask = np.ones(10, dtype=bool)
        corrupted = corrupt_features(features, mask, rng, feature_indices=[1])
        np.testing.assert_array_equal(corrupted[:, [0, 2, 3]], features[:, [0, 2, 3]])
        assert not np.allclose(corrupted[:, 1], features[:, 1])

    def test_no_mask_returns_copy(self):
        features = np.arange(12.0).reshape(4, 3)
        corrupted = corrupt_features(features, np.zeros(4, dtype=bool), np.random.default_rng(0))
        np.testing.assert_array_equal(corrupted, features)
        corrupted[0, 0] = 99.0
        assert features[0, 0] == 0.0

    def test_mask_shape_validated(self):
        with pytest.raises(ValueError):
            corrupt_features(np.zeros((4, 2)), np.zeros(3, dtype=bool), np.random.default_rng(0))

    @given(st.integers(min_value=2, max_value=50), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_original_never_mutated(self, n, seed):
        rng = np.random.default_rng(seed)
        features = rng.normal(size=(n, 3))
        original = features.copy()
        mask = rng.random(n) < 0.5
        corrupt_features(features, mask, rng)
        np.testing.assert_array_equal(features, original)
