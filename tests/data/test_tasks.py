"""Tests for the four synthetic task generators and the shared structures."""

import numpy as np
import pytest

from repro.data import (
    CrowdGenerator,
    CrowdSceneProfile,
    HousingGenerator,
    PdrGenerator,
    TaxiGenerator,
    make_crowd_task,
    make_housing_task,
    make_pdr_task,
    make_taxi_task,
    merge_scenarios,
    split_dataset_by_fraction,
    subsample_scenario,
)
from repro.nn import ArrayDataset


@pytest.fixture(scope="module")
def pdr_task():
    return make_pdr_task(
        n_seen_users=2, n_unseen_users=1, n_source_trajectories=1,
        n_target_trajectories=2, steps_per_trajectory=30, window=12, seed=0,
    )


@pytest.fixture(scope="module")
def crowd_task():
    return make_crowd_task(n_source_images=40, n_target_images_per_scene=16, image_size=10, seed=0)


@pytest.fixture(scope="module")
def housing_task():
    return make_housing_task(n_source=150, n_target=80, seed=0)


@pytest.fixture(scope="module")
def taxi_task():
    return make_taxi_task(n_source=150, n_target=80, seed=0)


class TestPdrTask:
    def test_structure(self, pdr_task):
        assert pdr_task.label_dim == 2
        assert pdr_task.n_scenarios == 3
        assert pdr_task.source_train.inputs.shape[1:] == (6, 12)
        assert pdr_task.source_calibration.inputs.shape[1:] == (6, 12)

    def test_groups(self, pdr_task):
        groups = {s.metadata["group"] for s in pdr_task.scenarios}
        assert groups == {"seen", "unseen"}

    def test_labels_form_ring(self, pdr_task):
        scenario = pdr_task.scenarios[0]
        strides = np.linalg.norm(scenario.adaptation.targets, axis=1)
        profile = scenario.metadata["profile"]
        assert abs(strides.mean() - profile["stride_mean"]) < 0.1
        assert strides.std() < 0.2

    def test_trajectory_ids_align(self, pdr_task):
        scenario = pdr_task.scenarios[0]
        assert len(scenario.metadata["trajectory_ids"]) == len(scenario.adaptation)
        assert len(scenario.metadata["test_trajectory_ids"]) == len(scenario.test)

    def test_deterministic_by_seed(self):
        a = make_pdr_task(n_seen_users=1, n_unseen_users=1, n_source_trajectories=1,
                          n_target_trajectories=2, steps_per_trajectory=20, window=10, seed=3)
        b = make_pdr_task(n_seen_users=1, n_unseen_users=1, n_source_trajectories=1,
                          n_target_trajectories=2, steps_per_trajectory=20, window=10, seed=3)
        np.testing.assert_array_equal(a.source_train.inputs, b.source_train.inputs)

    def test_generator_trajectory_positions_consistent(self):
        generator = PdrGenerator(window=10, seed=0)
        profile = generator.sample_profile("u", seen=True)
        trajectory = generator.simulate_trajectory(profile, 25)
        assert trajectory.positions.shape == (26, 2)
        np.testing.assert_allclose(
            trajectory.positions[-1], trajectory.displacements.sum(axis=0), atol=1e-9
        )

    def test_invalid_steps(self):
        generator = PdrGenerator(seed=0)
        with pytest.raises(ValueError):
            generator.simulate_trajectory(generator.sample_profile("u", True), 0)


class TestCrowdTask:
    def test_structure(self, crowd_task):
        assert crowd_task.n_scenarios == 3
        assert crowd_task.source_train.inputs.shape[1:] == (1, 10, 10)
        assert crowd_task.label_dim == 1

    def test_counts_are_non_negative_integers(self, crowd_task):
        for scenario in crowd_task.scenarios:
            counts = scenario.adaptation.targets
            assert np.all(counts >= 0)
            np.testing.assert_allclose(counts, np.round(counts))

    def test_scene_count_means_ordered(self, crowd_task):
        means = [s.adaptation.targets.mean() for s in crowd_task.scenarios]
        assert means[0] < means[1] < means[2]

    def test_image_mass_tracks_count(self):
        generator = CrowdGenerator(image_size=12, seed=0)
        profile = CrowdSceneProfile(
            name="x", count_mean=10, count_std=1, camera_gain=1.0, background=0.1,
            cluster_spread=0.15, noise_level=0.01, hard_fraction=0.0,
        )
        sparse = generator.render_image(3, profile)
        dense = generator.render_image(60, profile)
        assert dense.sum() > sparse.sum()

    def test_hard_mask_stored(self, crowd_task):
        for scenario in crowd_task.scenarios:
            assert len(scenario.metadata["hard_mask"]) == len(scenario.adaptation)

    def test_invalid_image_size(self):
        with pytest.raises(ValueError):
            CrowdGenerator(image_size=4)


class TestHousingTask:
    def test_structure(self, housing_task):
        assert housing_task.n_scenarios == 1
        assert housing_task.source_train.inputs.shape[1] == 8
        assert housing_task.scenarios[0].name == "coastal"

    def test_prices_positive(self, housing_task):
        assert np.all(housing_task.source_train.targets > 0)
        assert np.all(housing_task.scenarios[0].adaptation.targets > 0)

    def test_inputs_standardized_with_source_stats(self, housing_task):
        source = housing_task.source_train.inputs
        assert np.all(np.abs(source.mean(axis=0)) < 0.5)
        assert np.all(source.std(axis=0) < 2.0)

    def test_coastal_prices_higher_on_average(self):
        generator = HousingGenerator(seed=0)
        coastal, _ = generator.sample_dataset(400, coastal=True, hard_fraction=0.0)
        inland, _ = generator.sample_dataset(400, coastal=False, hard_fraction=0.0)
        assert coastal.targets.mean() > inland.targets.mean()

    def test_hard_mask_metadata(self, housing_task):
        scenario = housing_task.scenarios[0]
        assert scenario.metadata["hard_mask"].dtype == bool
        assert len(scenario.metadata["hard_mask"]) == len(scenario.adaptation)


class TestTaxiTask:
    def test_structure(self, taxi_task):
        assert taxi_task.n_scenarios == 1
        assert taxi_task.source_train.inputs.shape[1] == 7
        assert taxi_task.scenarios[0].name == "manhattan"

    def test_durations_positive(self, taxi_task):
        assert np.all(taxi_task.source_train.targets > 0)

    def test_manhattan_box_membership(self):
        generator = TaxiGenerator(seed=0)
        inside = generator.in_manhattan(np.array([0.5]), np.array([0.5]))
        outside = generator.in_manhattan(np.array([0.1]), np.array([0.1]))
        assert inside[0] and not outside[0]

    def test_manhattan_trips_slower_per_km(self):
        generator = TaxiGenerator(seed=0)
        manhattan, _ = generator.sample_dataset(300, manhattan=True, hard_fraction=0.0)
        other, _ = generator.sample_dataset(300, manhattan=False, hard_fraction=0.0)
        manhattan_pace = (manhattan.targets.ravel() / np.maximum(0.3, generatorless_distance(manhattan))).mean()
        other_pace = (other.targets.ravel() / np.maximum(0.3, generatorless_distance(other))).mean()
        assert manhattan_pace > other_pace


def generatorless_distance(dataset: ArrayDataset) -> np.ndarray:
    """Trip distance column of a raw (unstandardized) taxi dataset."""
    return dataset.inputs[:, 0]


class TestSharedStructures:
    def test_scenario_lookup_and_pooled(self, housing_task):
        scenario = housing_task.scenario("coastal")
        pooled = scenario.pooled()
        assert len(pooled) == scenario.n_adaptation + scenario.n_test
        with pytest.raises(KeyError):
            housing_task.scenario("missing")

    def test_merge_scenarios(self, crowd_task):
        merged = merge_scenarios(crowd_task.scenarios, name="all")
        assert merged.n_adaptation == sum(s.n_adaptation for s in crowd_task.scenarios)
        assert len(merged.metadata["origin"]) == merged.n_adaptation
        with pytest.raises(ValueError):
            merge_scenarios([])

    def test_split_dataset_by_fraction(self):
        dataset = ArrayDataset(np.arange(50)[:, None], np.arange(50))
        adapt, test = split_dataset_by_fraction(dataset, 0.8, np.random.default_rng(0))
        assert len(adapt) == 40 and len(test) == 10
        with pytest.raises(ValueError):
            split_dataset_by_fraction(dataset, 1.5)

    def test_subsample_scenario(self, crowd_task):
        scenario = crowd_task.scenarios[0]
        small = subsample_scenario(scenario, n_adaptation=5, n_test=3, rng=np.random.default_rng(0))
        assert small.n_adaptation == 5
        assert small.n_test == 3
        assert small.name == scenario.name
