"""Tests for the non-stationary stream generators."""

import numpy as np
import pytest

from repro.data import DRIFT_KINDS, make_drift_stream, make_drift_streams
from repro.data.base import TargetScenario
from repro.nn.data import ArrayDataset


@pytest.fixture
def scenario():
    rng = np.random.default_rng(0)
    inputs = rng.normal(size=(120, 3))
    targets = inputs @ np.array([1.0, -1.0, 0.5]) + 0.1 * rng.normal(size=120)
    return TargetScenario(
        "user",
        adaptation=ArrayDataset(inputs[:90], targets[:90]),
        test=ArrayDataset(inputs[90:], targets[90:]),
    )


def label_means(stream):
    """Mean label-norm per batch."""
    return [float(np.linalg.norm(batch.targets, axis=1).mean()) for batch in stream.batches]


class TestShapesAndDeterminism:
    @pytest.mark.parametrize("kind", DRIFT_KINDS)
    def test_batches_have_requested_shape(self, scenario, kind):
        stream = make_drift_stream(scenario, kind, n_steps=10, batch_size=8, seed=0)
        assert stream.kind == kind
        assert stream.n_steps == 10
        assert stream.n_events == 80
        for step, batch in enumerate(stream.batches):
            assert batch.step == step
            assert batch.inputs.shape == (8, 3)
            assert batch.targets.shape == (8, 1)
        assert stream.all_inputs().shape == (80, 3)
        assert stream.all_targets().shape == (80, 1)

    def test_same_seed_reproduces_stream(self, scenario):
        one = make_drift_stream(scenario, "gradual", n_steps=8, batch_size=8, seed=3)
        two = make_drift_stream(scenario, "gradual", n_steps=8, batch_size=8, seed=3)
        for batch_one, batch_two in zip(one.batches, two.batches):
            np.testing.assert_array_equal(batch_one.inputs, batch_two.inputs)
            np.testing.assert_array_equal(batch_one.targets, batch_two.targets)

    def test_different_seeds_differ(self, scenario):
        one = make_drift_stream(scenario, "gradual", n_steps=8, batch_size=8, seed=3)
        two = make_drift_stream(scenario, "gradual", n_steps=8, batch_size=8, seed=4)
        assert not np.array_equal(one.all_inputs(), two.all_inputs())

    def test_unknown_kind_rejected(self, scenario):
        with pytest.raises(ValueError):
            make_drift_stream(scenario, "wobbly")

    def test_invalid_sizes_rejected(self, scenario):
        with pytest.raises(ValueError):
            make_drift_stream(scenario, "sudden", n_steps=0)
        with pytest.raises(ValueError):
            make_drift_stream(scenario, "sudden", batch_size=0)


class TestDriftShapes:
    def test_sudden_switches_label_distribution(self, scenario):
        stream = make_drift_stream(scenario, "sudden", n_steps=12, batch_size=16, seed=0)
        mixes = stream.mix_schedule()
        assert mixes[:6] == [0.0] * 6
        assert mixes[6:] == [1.0] * 6
        means = label_means(stream)
        assert np.mean(means[6:]) > np.mean(means[:6])

    def test_gradual_ramps_monotonically(self, scenario):
        stream = make_drift_stream(scenario, "gradual", n_steps=10, batch_size=8, seed=0)
        mixes = stream.mix_schedule()
        assert mixes[0] == 0.0
        assert mixes[-1] == 1.0
        assert all(later >= earlier for earlier, later in zip(mixes, mixes[1:]))

    def test_recurring_alternates_regimes(self, scenario):
        stream = make_drift_stream(scenario, "recurring", n_steps=12, batch_size=8, cycle=3, seed=0)
        mixes = stream.mix_schedule()
        assert mixes == [0.0] * 3 + [1.0] * 3 + [0.0] * 3 + [1.0] * 3

    def test_noise_burst_keeps_labels_but_perturbs_inputs(self, scenario):
        stream = make_drift_stream(
            scenario, "noise_burst", n_steps=9, batch_size=16, noise_scale=3.0, seed=0
        )
        assert all(batch.mix == 0.0 for batch in stream.batches)
        noisy = [batch for batch in stream.batches if batch.noisy]
        clean = [batch for batch in stream.batches if not batch.noisy]
        assert noisy and clean
        noisy_spread = np.mean([batch.inputs.std() for batch in noisy])
        clean_spread = np.mean([batch.inputs.std() for batch in clean])
        assert noisy_spread > 2.0 * clean_spread


class TestTaskLevel:
    def test_make_drift_streams_covers_all_scenarios(self, scenario):
        from repro.data.base import AdaptationTask

        other = TargetScenario("other", scenario.adaptation, scenario.test)
        task = AdaptationTask(
            name="toy",
            source_train=scenario.adaptation,
            source_calibration=scenario.test,
            scenarios=[scenario, other],
        )
        streams = make_drift_streams(task, "sudden", n_steps=4, batch_size=4, seed=0)
        assert set(streams) == {"user", "other"}
        # Per-scenario seeds differ, so the fleet's streams are independent.
        assert not np.array_equal(
            streams["user"].all_inputs(), streams["other"].all_inputs()
        )
        # Restricting the fleet must not change the surviving streams: the
        # per-scenario seed derives from the task position, not the subset.
        subset = make_drift_streams(task, "sudden", n_steps=4, batch_size=4, seed=0, only=["other"])
        assert set(subset) == {"other"}
        np.testing.assert_array_equal(
            subset["other"].all_inputs(), streams["other"].all_inputs()
        )
