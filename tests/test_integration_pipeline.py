"""Cross-module integration tests: the full TASFAR pipeline on real task generators.

These tests exercise the same code path as the benchmarks (generate task ->
train source model -> calibrate -> adapt -> evaluate) at the smallest usable
scale, and assert the qualitative properties the paper's evaluation relies on.
"""

import numpy as np
import pytest

import repro.nn as nn
from repro.core import Tasfar, TasfarConfig
from repro.experiments import get_bundle
from repro.metrics import mse, pearson_correlation, step_error
from repro.uncertainty import MCDropoutPredictor


@pytest.fixture(scope="module")
def housing_bundle():
    return get_bundle("housing", "tiny", seed=0)


@pytest.fixture(scope="module")
def pdr_bundle():
    return get_bundle("pdr", "tiny", seed=0)


class TestHousingPipeline:
    def test_source_model_learned_something(self, housing_bundle):
        task = housing_bundle.task
        predictions = housing_bundle.predict(task.source_calibration.inputs)
        error = mse(predictions, task.source_calibration.targets)
        variance = float(task.source_calibration.targets.var())
        assert error < variance

    def test_tasfar_adaptation_runs_end_to_end(self, housing_bundle):
        task = housing_bundle.task
        scenario = task.scenarios[0]
        tasfar = Tasfar(TasfarConfig(adaptation_epochs=10, seed=0))
        result = tasfar.adapt(housing_bundle.source_model, scenario.adaptation.inputs, housing_bundle.calibration)
        adapted = nn.Trainer(result.target_model)
        base_error = mse(housing_bundle.predict(scenario.adaptation.inputs), scenario.adaptation.targets)
        adapted_error = mse(adapted.predict(scenario.adaptation.inputs), scenario.adaptation.targets)
        # adaptation must not blow the error up; at tiny scale we only require
        # the qualitative "does not degrade badly" property
        assert adapted_error < base_error * 1.3

    def test_uncertainty_correlates_with_error_on_target(self, housing_bundle):
        scenario = housing_bundle.task.scenarios[0]
        prediction = MCDropoutPredictor(housing_bundle.source_model).predict(scenario.adaptation.inputs)
        errors = np.abs(prediction.mean - scenario.adaptation.targets).mean(axis=1)
        assert pearson_correlation(prediction.uncertainty, errors) > 0.0


class TestPdrPipeline:
    def test_task_and_model_shapes_are_consistent(self, pdr_bundle):
        task = pdr_bundle.task
        scenario = task.scenarios[0]
        predictions = pdr_bundle.predict(scenario.adaptation.inputs)
        assert predictions.shape == scenario.adaptation.targets.shape

    def test_tasfar_adaptation_on_one_user(self, pdr_bundle):
        scenario = pdr_bundle.task.scenarios[0]
        tasfar = Tasfar(TasfarConfig(adaptation_epochs=8, seed=0))
        result = tasfar.adapt(pdr_bundle.source_model, scenario.adaptation.inputs, pdr_bundle.calibration)
        adapted = nn.Trainer(result.target_model)
        base = step_error(pdr_bundle.predict(scenario.adaptation.inputs), scenario.adaptation.targets)
        after = step_error(adapted.predict(scenario.adaptation.inputs), scenario.adaptation.targets)
        assert after < base * 1.25

    def test_density_map_is_two_dimensional(self, pdr_bundle):
        scenario = pdr_bundle.task.scenarios[0]
        tasfar = Tasfar(TasfarConfig(adaptation_epochs=2, seed=0))
        result = tasfar.adapt(pdr_bundle.source_model, scenario.adaptation.inputs, pdr_bundle.calibration)
        assert result.density_map.n_dims == 2

    def test_pseudo_labels_not_worse_than_predictions_on_average(self, pdr_bundle):
        scenario = pdr_bundle.task.scenarios[0]
        tasfar = Tasfar(TasfarConfig(adaptation_epochs=2, seed=0))
        result = tasfar.adapt(pdr_bundle.source_model, scenario.adaptation.inputs, pdr_bundle.calibration)
        uncertain = result.split.uncertain_indices
        if len(uncertain) == 0:
            pytest.skip("no uncertain samples at this scale/seed")
        targets = scenario.adaptation.targets[uncertain]
        prediction_error = np.linalg.norm(result.target_prediction.mean[uncertain] - targets, axis=1).mean()
        pseudo_error = np.linalg.norm(result.pseudo_labels.pseudo_labels - targets, axis=1).mean()
        assert pseudo_error <= prediction_error * 1.15
