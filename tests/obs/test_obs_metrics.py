"""Unit tests for the metrics registry, snapshot schema, and exposition."""

import json
import threading

import pytest

from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    METRICS_SCHEMA,
    MetricsRegistry,
    active_metrics,
    scrub_wall_clock,
    to_prometheus,
    use_metrics,
    validate_snapshot,
)


class TestCounters:
    def test_counter_default_increment(self):
        registry = MetricsRegistry()
        registry.counter("requests")
        registry.counter("requests")
        registry.counter("requests", 3)
        assert registry.counter_value("requests") == 5

    def test_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("requests", kind="adapt")
        registry.counter("requests", kind="predict")
        registry.counter("requests", kind="predict")
        assert registry.counter_value("requests", kind="adapt") == 1
        assert registry.counter_value("requests", kind="predict") == 2
        assert registry.counter_total("requests") == 3

    def test_label_values_stringified(self):
        registry = MetricsRegistry()
        registry.counter("requests", shard=0)
        assert registry.counter_value("requests", shard="0") == 1

    def test_disabled_registry_counts_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("requests")
        registry.gauge_add("depth", 1)
        registry.observe("latency", 0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == []
        assert snapshot["gauges"] == []
        assert snapshot["histograms"] == []


class TestGauges:
    def test_set_and_add(self):
        registry = MetricsRegistry()
        registry.gauge_set("depth", 4.0, shard="0")
        registry.gauge_add("depth", -1, shard="0")
        assert registry.gauge_value("depth", shard="0") == 3.0
        assert registry.gauge_value("depth", shard="1", default=-1.0) == -1.0


class TestHistograms:
    def test_bucket_layout_pinned_at_first_observation(self):
        registry = MetricsRegistry()
        registry.observe("occupancy", 0.3, buckets=(0.5, 1.0))
        registry.observe("occupancy", 0.9)  # reuses the pinned layout
        (entry,) = registry.snapshot()["histograms"]
        assert entry["le"] == [0.5, 1.0]
        assert entry["counts"] == [1, 1, 0]
        assert entry["count"] == 2
        assert entry["sum"] == pytest.approx(1.2)

    def test_default_buckets_are_time_buckets(self):
        registry = MetricsRegistry()
        registry.observe("latency", 0.003)
        (entry,) = registry.snapshot()["histograms"]
        assert tuple(entry["le"]) == DEFAULT_TIME_BUCKETS

    def test_boundary_value_lands_in_lower_bucket(self):
        # Prometheus semantics: le is an upper (inclusive) bound.
        registry = MetricsRegistry()
        registry.observe("x", 0.5, buckets=(0.5, 1.0))
        (entry,) = registry.snapshot()["histograms"]
        assert entry["counts"] == [1, 0, 0]

    def test_unsorted_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.observe("x", 0.1, buckets=(1.0, 0.5))


class TestSnapshot:
    def test_snapshot_validates_and_is_json_stable(self):
        registry = MetricsRegistry()
        registry.counter("b.second", kind="x")
        registry.counter("a.first")
        registry.gauge_set("depth", 2.0)
        registry.observe("latency_seconds", 0.01)
        snapshot = registry.snapshot()
        assert snapshot["schema"] == METRICS_SCHEMA
        validate_snapshot(snapshot)
        # Deterministically ordered: a second snapshot serializes identically.
        assert json.dumps(snapshot, sort_keys=True) == json.dumps(
            registry.snapshot(), sort_keys=True
        )
        assert [entry["name"] for entry in snapshot["counters"]] == ["a.first", "b.second"]

    def test_validate_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="must be a dict"):
            validate_snapshot([])
        with pytest.raises(ValueError, match="unsupported metrics schema"):
            validate_snapshot({"schema": "repro.metrics/v0"})
        base = {"schema": METRICS_SCHEMA, "counters": [], "gauges": [], "histograms": []}
        with pytest.raises(ValueError, match="negative counter"):
            validate_snapshot(
                {**base, "counters": [{"name": "x", "labels": {}, "value": -1}]}
            )
        with pytest.raises(ValueError, match="counts for"):
            validate_snapshot(
                {
                    **base,
                    "histograms": [
                        {"name": "h", "labels": {}, "le": [1.0], "counts": [1], "sum": 0.5, "count": 1}
                    ],
                }
            )

    def test_merge_adds_and_stamps_labels(self):
        worker = MetricsRegistry()
        worker.counter("engine.epochs", 3)
        worker.observe("engine.epoch_seconds", 0.02)
        parent = MetricsRegistry()
        parent.counter("engine.epochs", 1, shard="0")
        parent.merge(worker.snapshot(), extra_labels={"shard": 0})
        assert parent.counter_value("engine.epochs", shard="0") == 4
        (entry,) = parent.snapshot()["histograms"]
        assert entry["labels"] == {"shard": "0"}
        assert entry["count"] == 1

    def test_merge_rejects_mismatched_bucket_layouts(self):
        a = MetricsRegistry()
        a.observe("h", 0.1, buckets=(0.5,))
        b = MetricsRegistry()
        b.observe("h", 0.1, buckets=(0.25,))
        with pytest.raises(ValueError, match="bucket mismatch"):
            a.merge(b.snapshot())


class TestAmbientRegistry:
    def test_use_metrics_installs_and_restores(self):
        registry = MetricsRegistry()
        assert active_metrics() is None
        with use_metrics(registry):
            assert active_metrics() is registry
            with use_metrics(None):
                assert active_metrics() is None
            assert active_metrics() is registry
        assert active_metrics() is None

    def test_ambient_registry_is_thread_local(self):
        registry = MetricsRegistry()
        seen = {}

        def probe():
            seen["other_thread"] = active_metrics()

        with use_metrics(registry):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["other_thread"] is None


class TestScrubbing:
    def test_scrub_zeroes_seconds_metrics_but_keeps_counts(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests", 7, kind="predict")
        registry.counter("stream.ingest_seconds", 1.25)  # name carries time
        registry.gauge_set("uptime_seconds", 9.0)
        registry.observe("serve.request_seconds", 0.5, kind="predict")
        registry.observe("batch.tile_occupancy", 0.75, buckets=(0.5, 1.0))
        scrubbed = scrub_wall_clock(registry.snapshot())
        by_name = {entry["name"]: entry for entry in scrubbed["counters"]}
        assert by_name["serve.requests"]["value"] == 7
        assert by_name["stream.ingest_seconds"]["value"] == 0.0
        assert scrubbed["gauges"][0]["value"] == 0.0
        histos = {entry["name"]: entry for entry in scrubbed["histograms"]}
        timing = histos["serve.request_seconds"]
        assert timing["sum"] == 0.0
        assert all(count == 0 for count in timing["counts"])
        assert timing["count"] == 1  # how many observations stays meaningful
        ratio = histos["batch.tile_occupancy"]
        assert ratio["sum"] == 0.75  # non-timing histograms untouched
        assert sum(ratio["counts"]) == 1

    def test_two_scrubbed_replays_serialize_identically(self):
        def run():
            registry = MetricsRegistry()
            registry.counter("serve.requests", kind="adapt")
            registry.observe("serve.request_seconds", 0.1 * hash("x") % 1, kind="adapt")
            return json.dumps(scrub_wall_clock(registry.snapshot()), sort_keys=True)

        assert run() == run()


class TestPrometheus:
    def test_exposition_renders_every_section(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests", 2, kind="adapt")
        registry.gauge_set("serve.queue_depth", 0.0, shard="0")
        registry.observe("latency", 0.3, buckets=(0.25, 1.0))
        text = to_prometheus(registry.snapshot())
        assert "# TYPE serve_requests_total counter" in text
        assert 'serve_requests_total{kind="adapt"} 2' in text
        assert 'serve_queue_depth{shard="0"} 0.0' in text
        assert "# TYPE latency histogram" in text
        assert 'latency_bucket{le="0.25"} 0' in text
        assert 'latency_bucket{le="1.0"} 1' in text
        assert 'latency_bucket{le="+Inf"} 1' in text
        assert "latency_count 1" in text
        assert text.endswith("\n")


class TestConcurrency:
    def test_racing_counters_lose_no_increment(self):
        registry = MetricsRegistry()
        n_threads, per_thread = 8, 500

        def work():
            for _ in range(per_thread):
                registry.counter("hits", kind="x")
                registry.gauge_add("depth", 1)
                registry.gauge_add("depth", -1)
                registry.observe("lat", 0.001)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter_value("hits", kind="x") == n_threads * per_thread
        assert registry.gauge_value("depth") == 0.0
        (entry,) = registry.snapshot()["histograms"]
        assert entry["count"] == n_threads * per_thread
