"""Unit tests for deterministic request tracing."""

import json

from repro.obs import Tracer, span_id
from repro.serve import Envelope


def spans_by_name(tracer):
    result = {}
    for span in tracer.spans:
        result.setdefault(span["name"], []).append(span)
    return result


class TestSpanIds:
    def test_root_id_is_deterministic(self):
        assert span_id("adapt", "u1", 0) == span_id("adapt", "u1", 0)
        assert span_id("adapt", "u1", 0) != span_id("adapt", "u1", 1)
        assert span_id("adapt", "u1", 0) != span_id("predict", "u1", 0)
        assert len(span_id("adapt", "u1", 0)) == 16

    def test_occurrence_counts_per_kind_and_target(self):
        tracer = Tracer()
        first = tracer.begin("predict", "u1")
        second = tracer.begin("predict", "u1")
        other_kind = tracer.begin("adapt", "u1")
        other_target = tracer.begin("predict", "u2")
        assert first.occurrence == 0
        assert second.occurrence == 1
        assert other_kind.occurrence == 0
        assert other_target.occurrence == 0
        ids = {t.trace_id for t in (first, second, other_kind, other_target)}
        assert len(ids) == 4

    def test_two_replays_produce_identical_id_trees(self):
        def run():
            tracer = Tracer()
            for _ in range(3):
                trace = tracer.begin("stream", "u1")
                trace.mark_dequeued()
                trace.finish(Envelope.success("stream", "u1", {"event": None}))
            return [(s["trace_id"], s["span_id"], s["parent_id"], s["name"])
                    for s in tracer.spans]

        assert run() == run()


class TestRequestTrace:
    def test_full_lifecycle_emits_request_queue_handle(self):
        tracer = Tracer()
        trace = tracer.begin("predict", "u1")
        trace.mark_dequeued()
        trace.finish(Envelope.success("predict", "u1", {"prediction": []}))
        spans = spans_by_name(tracer)
        assert set(spans) == {"request", "queue", "handle"}
        root = spans["request"][0]
        assert root["parent_id"] is None
        assert root["ok"] is True
        for name in ("queue", "handle"):
            child = spans[name][0]
            assert child["parent_id"] == root["span_id"]
            assert child["trace_id"] == root["trace_id"]
            assert child["duration_seconds"] >= 0

    def test_engine_child_from_report_duration(self):
        tracer = Tracer()
        trace = tracer.begin("adapt", "u1")
        trace.mark_dequeued()
        envelope = Envelope.success(
            "adapt", "u1", {"report": {"duration_seconds": 1.5, "losses": []}}
        )
        trace.finish(envelope)
        spans = spans_by_name(tracer)
        engine = spans["engine"][0]
        assert engine["duration_seconds"] == 1.5
        assert engine["parent_id"] == spans["handle"][0]["span_id"]

    def test_never_dequeued_request_has_no_queue_span(self):
        # A dead-pool rejection is answered without ever reaching a shard.
        tracer = Tracer()
        trace = tracer.begin("adapt", "u1")
        trace.finish(None)
        spans = spans_by_name(tracer)
        assert set(spans) == {"request"}
        assert spans["request"][0]["ok"] is None

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        trace = tracer.begin("report", None)
        trace.finish(Envelope.success("report", None, {"report": None}))
        trace.finish(None)
        assert len(tracer.spans) == 1
        assert tracer.spans[0]["target_id"] is None


class TestExport:
    def test_export_lines_are_sorted_keys_json(self):
        tracer = Tracer()
        trace = tracer.begin("predict", "u1")
        trace.mark_dequeued()
        trace.finish(Envelope.success("predict", "u1", {"prediction": []}))
        lines = tracer.export_lines()
        assert len(lines) == 3
        for line in lines:
            span = json.loads(line)
            assert list(span) == sorted(span)
            assert json.dumps(span, sort_keys=True) == line

    def test_export_writes_jsonl_file(self, tmp_path):
        tracer = Tracer()
        tracer.begin("adapt", "u1").finish(None)
        path = tmp_path / "trace.jsonl"
        assert tracer.export(path) == 1
        content = path.read_text(encoding="utf-8")
        assert content.endswith("\n")
        assert json.loads(content.splitlines()[0])["name"] == "request"
