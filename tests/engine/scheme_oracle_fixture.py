"""Shared fixture for the per-scheme equivalence oracle.

The oracle (``oracle_schemes.json``) pins, for every entry of
``SCHEME_NAMES``, the exact fine-tuning losses and adapted-model predictions
produced by the **pre-refactor** adaptation code paths on this fixture.  The
equivalence test adapts the same fixture through the strategy engine and
asserts bitwise-identical numbers, so any refactor of the training hot path
that changes results — RNG consumption order, arithmetic order, batch
assembly — fails loudly.

The fixture is deliberately tiny (a 4-feature linear task, a 12x8 MLP,
three adaptation epochs) so the full six-scheme sweep stays fast enough for
tier-1.
"""

from __future__ import annotations

import numpy as np

import repro.nn as nn
from repro.core import Tasfar, TasfarConfig

#: Seed handed to every scheme's adaptation run.
ADAPT_SEED = 7

#: Construction keywords per scheme, mirroring what the strategy registry
#: passes (epochs/seed for the trainable baselines, nothing for `baseline`,
#: the TasfarConfig for `tasfar`).
SCHEME_KWARGS = {
    "baseline": {},
    "mmd": {"epochs": 3},
    "adv": {"epochs": 2},
    "augfree": {"epochs": 3},
    "datafree": {"epochs": 3},
    "tasfar": {},
}


def fast_config() -> TasfarConfig:
    return TasfarConfig(
        n_mc_samples=8,
        n_segments=5,
        adaptation_epochs=3,
        min_adaptation_epochs=1,
        early_stop=False,
        seed=0,
    )


def build_fixture() -> dict:
    """Trained source model, calibration, source/target data and a probe set."""
    rng = np.random.default_rng(0)
    weights = np.array([1.0, -0.5, 0.25, 2.0])
    source_inputs = rng.normal(size=(120, 4))
    source_labels = source_inputs @ weights + 0.1 * rng.normal(size=120)
    target_inputs = rng.normal(loc=0.3, size=(60, 4))
    probe = rng.normal(size=(12, 4))

    model = nn.build_mlp(4, 1, hidden_dims=(12, 8), dropout=0.2, seed=0)
    source_data = nn.ArrayDataset(source_inputs, source_labels)
    nn.Trainer(model, lr=3e-3).fit(source_data, epochs=10, batch_size=32, rng=rng)

    config = fast_config()
    calibration = Tasfar(config).calibrate_on_source(model, source_inputs, source_labels)
    return {
        "model": model,
        "source_data": source_data,
        "target_inputs": target_inputs,
        "probe": probe,
        "config": config,
        "calibration": calibration,
    }


def fingerprint(losses, target_model, probe) -> dict:
    """JSON-exact fingerprint of one adaptation outcome.

    ``json`` round-trips Python floats exactly (shortest-repr), so equality
    on the decoded values is bitwise equality.
    """
    target_model.eval()
    predictions = np.asarray(target_model.forward(probe), dtype=np.float64).ravel()
    return {
        "losses": [float(value) for value in losses],
        "predictions": [float(value) for value in predictions],
    }
