"""Every subpackage must import standalone, in a fresh interpreter.

The in-process test suite cannot catch import cycles: once any test (or a
conftest) has imported ``repro.core``, every later import order works.  A
cycle only bites when the *first* repro import in a process enters through
the wrong package — exactly what ``python -c "import repro.engine"`` or a
library consumer does — so each candidate entry point is probed in its own
interpreter.
"""

import subprocess
import sys

import pytest

ENTRY_POINTS = [
    "repro.engine",
    "repro.baselines",
    "repro.core",
    "repro.data",
    "repro.runtime",
    "repro.streaming",
    "repro.experiments",
    "repro.cli",
]


@pytest.mark.parametrize("module", ENTRY_POINTS)
def test_package_imports_standalone(module):
    result = subprocess.run(
        [sys.executable, "-c", f"import {module}"],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, (
        f"`import {module}` as the first repro import failed "
        f"(circular import?):\n{result.stderr}"
    )
