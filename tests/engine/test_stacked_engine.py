"""Serial-vs-stacked equivalence for the fine-tune engine itself.

The batched-training tentpole claims :class:`StackedFineTuneEngine` is
bit-identical to running :class:`FineTuneEngine` once per replica.  This
suite asserts that at the engine layer — losses, early-stop epochs, and
post-run parameter bytes — with and without per-replica early stopping
(stoppers trip at different epochs, so the stopped replicas' frozen
parameters are exercised too).
"""

import copy

import numpy as np
import pytest

from repro.engine import FineTuneEngine, LossDropEarlyStopper, StackedFineTuneEngine
from repro.nn import (
    Adam,
    ArrayDataset,
    MSELoss,
    PerReplicaLoss,
    StackedAdam,
    build_mlp,
    parameter_bytes,
    stack_modules,
    unstack_modules,
)

K = 4
N = 48
D = 6
EPOCHS = 8


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    datasets = []
    for _ in range(K):
        x = rng.normal(size=(N, D))
        y = rng.normal(size=(N, 1))
        w = rng.random(N) + 0.5
        datasets.append(ArrayDataset(x, y, w))
    return build_mlp(D, 1, (12, 8), 0.2, seed=0), datasets


def _make_stopper(k):
    # Per-replica configs staggered by ``min_epochs`` so the replicas stop at
    # *different* epochs — the staggered deactivation (and the frozen
    # parameters of already-stopped replicas) is the hard part of the
    # stacked stopper path.
    return LossDropEarlyStopper(
        drop_fraction=0.9, patience=1, min_epochs=2 + k, window=1
    )


def _run_serial(source, datasets, use_stopper):
    models, losses, stops = [], [], []
    for k in range(K):
        model = copy.deepcopy(source)
        loss = MSELoss()
        optimizer = Adam(model.parameters(), lr=1e-3)

        def step(inputs, targets, weights, model=model, loss=loss):
            out = model.forward(inputs)
            value, grad = loss(out, targets, weights)
            model.backward(grad)
            return value

        engine = FineTuneEngine(EPOCHS, 16, stopper=_make_stopper(k) if use_stopper else None)
        result = engine.run(
            model, datasets[k], optimizer, step, rng=np.random.default_rng(100 + k)
        )
        models.append(model)
        losses.append(result.losses)
        stops.append(result.stopped_epoch)
    return models, losses, stops


def _run_stacked(source, datasets, use_stopper):
    models = [copy.deepcopy(source) for _ in range(K)]
    stacked = stack_modules(models)
    optimizer = StackedAdam(stacked.parameters(), K, lr=1e-3)
    per_loss = PerReplicaLoss(MSELoss())

    def step(inputs, targets, weights):
        out = stacked.forward(inputs)
        values, grads = per_loss(out, targets, weights)
        stacked.backward(grads)
        return values

    stoppers = [_make_stopper(k) for k in range(K)] if use_stopper else None
    engine = StackedFineTuneEngine(EPOCHS, 16, stoppers=stoppers)
    results = engine.run(
        stacked, datasets, optimizer, step,
        rngs=[np.random.default_rng(100 + k) for k in range(K)],
    )
    unstack_modules(stacked, models)
    return models, [r.losses for r in results], [r.stopped_epoch for r in results]


@pytest.mark.parametrize("use_stopper", [False, True])
def test_stacked_engine_bit_identical_to_serial(workload, use_stopper):
    source, datasets = workload
    serial_models, serial_losses, serial_stops = _run_serial(source, datasets, use_stopper)
    stacked_models, stacked_losses, stacked_stops = _run_stacked(source, datasets, use_stopper)

    assert stacked_losses == serial_losses
    assert stacked_stops == serial_stops
    if use_stopper:
        # The scenario is only convincing if the replicas actually stop, and
        # at different epochs (otherwise the mask path is never exercised).
        assert all(stop is not None for stop in serial_stops)
        assert len(set(serial_stops)) > 1
    for k in range(K):
        assert parameter_bytes(stacked_models[k]) == parameter_bytes(serial_models[k])
