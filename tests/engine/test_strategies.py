"""Tests for the AdaptationStrategy layer, its registry, and the
strategy-generic runtime services."""

import numpy as np
import pytest

import repro.nn as nn
from repro.baselines import SCHEME_NAMES
from repro.core import Tasfar, TasfarConfig
from repro.engine import (
    AdaptationStrategy,
    BaselineStrategy,
    SourceResources,
    StrategyOutcome,
    TasfarStrategy,
    create_strategy,
    register_strategy,
    strategy_names,
)
from repro.engine.registry import STRATEGY_FACTORIES
from repro.runtime import AdaptationService
from repro.streaming import StreamingAdaptationService


def fast_config():
    return TasfarConfig(
        n_mc_samples=8,
        n_segments=5,
        adaptation_epochs=3,
        min_adaptation_epochs=1,
        early_stop=False,
        seed=0,
    )


@pytest.fixture(scope="module")
def source():
    rng = np.random.default_rng(0)
    weights = np.array([1.0, -0.5, 0.25, 2.0])
    inputs = rng.normal(size=(160, 4))
    targets = inputs @ weights + 0.1 * rng.normal(size=160)
    model = nn.build_mlp(4, 1, hidden_dims=(16, 8), dropout=0.2, seed=0)
    source_data = nn.ArrayDataset(inputs, targets)
    nn.Trainer(model, lr=3e-3).fit(source_data, epochs=15, batch_size=32, rng=rng)
    calibration = Tasfar(fast_config()).calibrate_on_source(model, inputs, targets)
    return {
        "model": model,
        "data": source_data,
        "calibration": calibration,
        "target": np.random.default_rng(9).normal(loc=0.2, size=(48, 4)),
    }


def resources(source):
    return SourceResources(
        source_data=source["data"], calibration=source["calibration"]
    )


class TestRegistry:
    def test_all_paper_schemes_registered(self):
        assert set(SCHEME_NAMES) <= set(strategy_names())

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown adaptation scheme"):
            create_strategy("nonsense")

    def test_shared_kwargs_filtered_per_scheme(self):
        """One kwargs set works for all schemes; extras are dropped."""
        for name in SCHEME_NAMES:
            strategy = create_strategy(name, epochs=2, seed=3, config=fast_config())
            assert isinstance(strategy, AdaptationStrategy)
            assert strategy.name == name

    def test_third_party_registration(self, source):
        class EchoStrategy(AdaptationStrategy):
            name = "echo"

            def adapt(self, source_model, target_inputs, *, seed=None,
                      base_model=None, warm_epochs=None):
                import copy

                return StrategyOutcome(
                    target_model=copy.deepcopy(base_model or source_model),
                    scheme=self.name,
                )

        register_strategy("echo", EchoStrategy)
        try:
            assert "echo" in strategy_names()
            strategy = create_strategy("echo")
            outcome = strategy.adapt(source["model"], source["target"])
            assert outcome.scheme == "echo"
            # A registered scheme serves through the generic service too.
            service = AdaptationService(source["model"], strategy=strategy)
            report = service.adapt("user", source["target"])
            assert report.scheme == "echo"
            assert service.model_for("user") is not None
        finally:
            STRATEGY_FACTORIES.pop("echo", None)


class TestTasfarStrategy:
    def test_requires_calibration(self, source):
        strategy = TasfarStrategy(fast_config())
        with pytest.raises(ValueError, match="no calibration"):
            strategy.adapt(source["model"], source["target"])

    def test_prepare_fits_calibration_from_source_data(self, source):
        strategy = TasfarStrategy(fast_config()).prepare(
            source["model"], SourceResources(calibration_data=source["data"])
        )
        assert strategy.calibration is not None
        assert strategy.calibration.threshold == pytest.approx(
            source["calibration"].threshold
        )

    def test_adapt_matches_direct_tasfar(self, source):
        strategy = TasfarStrategy(fast_config(), calibration=source["calibration"])
        outcome = strategy.adapt(source["model"], source["target"], seed=11)
        direct = Tasfar(fast_config()).adapt(
            source["model"], source["target"], source["calibration"], seed=11
        )
        assert outcome.losses == direct.losses
        assert outcome.density_map is not None
        assert outcome.result is not None
        probe = source["target"][:8]
        np.testing.assert_array_equal(
            outcome.target_model.forward(probe), direct.target_model.forward(probe)
        )

    def test_warm_epochs_shortens_schedule(self, source):
        strategy = TasfarStrategy(fast_config(), calibration=source["calibration"])
        cold = strategy.adapt(source["model"], source["target"], seed=1)
        warm = strategy.adapt(
            source["model"], source["target"], seed=1,
            base_model=cold.target_model, warm_epochs=1,
        )
        assert len(warm.losses) == 1
        assert len(cold.losses) == 3


class TestBaselineStrategy:
    def test_source_based_prepare_requires_source_data(self, source):
        strategy = BaselineStrategy("mmd", epochs=2)
        with pytest.raises(ValueError, match="requires labelled source data"):
            strategy.prepare(source["model"], SourceResources())

    def test_datafree_prepare_requires_statistics_inputs(self, source):
        strategy = BaselineStrategy("datafree", epochs=2)
        with pytest.raises(ValueError, match="feature statistics"):
            strategy.prepare(source["model"], SourceResources())

    def test_unsupported_kwargs_dropped(self):
        strategy = BaselineStrategy("baseline", epochs=9, seed=4, bogus=1)
        assert strategy._kwargs == {}

    @pytest.mark.parametrize("scheme", ["augfree", "datafree", "mmd"])
    def test_warm_start_uses_short_schedule_from_base_model(self, source, scheme):
        strategy = create_strategy(scheme, epochs=3, seed=0).prepare(
            source["model"], resources(source)
        )
        cold = strategy.adapt(source["model"], source["target"], seed=0)
        assert len(cold.losses) == 3
        warm = strategy.adapt(
            source["model"], source["target"], seed=0,
            base_model=cold.target_model, warm_epochs=1,
        )
        assert len(warm.losses) == 1

    def test_per_call_seed_overrides_construction_seed(self, source):
        strategy = create_strategy("augfree", epochs=2, seed=0).prepare(
            source["model"], resources(source)
        )
        probe = source["target"][:8]
        one = strategy.adapt(source["model"], source["target"], seed=1)
        two = strategy.adapt(source["model"], source["target"], seed=2)
        one_again = strategy.adapt(source["model"], source["target"], seed=1)
        np.testing.assert_array_equal(
            one.target_model.forward(probe), one_again.target_model.forward(probe)
        )
        assert not np.array_equal(
            one.target_model.forward(probe), two.target_model.forward(probe)
        )


class TestStrategyGenericService:
    def test_service_requires_calibration_or_strategy(self, source):
        with pytest.raises(ValueError, match="calibration"):
            AdaptationService(source["model"])

    @pytest.mark.parametrize("scheme", ["augfree", "mmd", "baseline"])
    def test_adapt_many_serves_baseline_schemes(self, source, scheme):
        strategy = create_strategy(scheme, epochs=2, seed=0).prepare(
            source["model"], resources(source)
        )
        service = AdaptationService(source["model"], strategy=strategy)
        targets = {
            f"user_{i}": np.random.default_rng(50 + i).normal(size=(24, 4))
            for i in range(3)
        }
        reports = service.adapt_many(targets, jobs=2)
        assert set(reports) == set(targets)
        for name, report in reports.items():
            assert report.scheme == scheme
            assert report.n_samples == 24
            if scheme != "baseline":
                assert len(report.losses) == 2
            assert service.model_for(name) is not None
            assert service.predict(name, targets[name]).shape == (24, 1)

    def test_parallel_matches_serial_for_baseline_scheme(self, source):
        targets = {
            f"user_{i}": np.random.default_rng(80 + i).normal(size=(24, 4))
            for i in range(4)
        }

        def build():
            strategy = create_strategy("augfree", epochs=2, seed=0).prepare(
                source["model"], resources(source)
            )
            return AdaptationService(source["model"], strategy=strategy)

        serial, parallel = build(), build()
        serial_reports = serial.adapt_many(targets, jobs=1)
        parallel_reports = parallel.adapt_many(targets, jobs=4)
        probe = np.random.default_rng(3).normal(size=(8, 4))
        for name in targets:
            assert serial_reports[name].losses == parallel_reports[name].losses
            np.testing.assert_array_equal(
                serial.predict(name, probe), parallel.predict(name, probe)
            )

    def test_report_json_roundtrip_carries_scheme(self, source):
        from repro.runtime import AdaptationReport

        strategy = create_strategy("datafree", epochs=2, seed=0).prepare(
            source["model"], resources(source)
        )
        service = AdaptationService(source["model"], strategy=strategy)
        report = service.adapt("user", source["target"])
        restored = AdaptationReport.from_json(report.to_json())
        assert restored == report
        assert restored.scheme == "datafree"
        assert "diagnostics" in restored.extra


class TestWarmEpochDefaults:
    def test_default_epochs_reported_per_strategy(self, source):
        assert TasfarStrategy(fast_config()).default_epochs == 3
        assert BaselineStrategy("augfree", epochs=4).default_epochs == 4
        assert BaselineStrategy("mmd").default_epochs == 20  # adapter default
        assert BaselineStrategy("baseline").default_epochs is None

    def test_streaming_warm_budget_follows_strategy_cold_budget(self, source):
        """A baseline with a 4-epoch cold schedule must not warm-start with
        TasfarConfig.adaptation_epochs // 4 = 10 epochs (warm > cold)."""
        strategy = create_strategy("augfree", epochs=4, seed=0).prepare(
            source["model"], resources(source)
        )
        service = StreamingAdaptationService(
            source["model"],
            source["calibration"],
            config=TasfarConfig(seed=0),  # cold TASFAR budget would be 40
            strategy=strategy,
        )
        assert service.warm_epochs == 1  # max(1, 4 // 4)

    def test_streaming_requires_calibration_even_with_strategy(self, source):
        strategy = create_strategy("augfree", epochs=2).prepare(
            source["model"], resources(source)
        )
        with pytest.raises(ValueError, match="source calibration"):
            StreamingAdaptationService(source["model"], None, strategy=strategy)


class TestStrategyGenericStreaming:
    def test_streaming_warm_readapts_baseline_scheme(self, source):
        strategy = create_strategy("augfree", epochs=2, seed=0).prepare(
            source["model"], resources(source)
        )
        service = StreamingAdaptationService(
            source["model"],
            source["calibration"],
            config=fast_config(),
            strategy=strategy,
            min_adapt_events=32,
            readapt_budget=32,
            warm_epochs=1,
        )
        rng = np.random.default_rng(7)
        actions = []
        for _ in range(6):
            event = service.ingest("user", rng.normal(size=(16, 4)))
            actions.append(event.action)
        assert "cold_adapt" in actions
        assert "warm_adapt" in actions
        stats = service.stream_stats("user")
        assert stats["cold_adaptations"] >= 1
        assert stats["warm_adaptations"] >= 1
        report = service.report_for("user")
        assert report.scheme == "augfree"
        assert report.extra["mode"] == "warm"
        assert report.extra["drift_reference"] is True

    def test_unprobeable_window_publishes_model_and_degrades_to_budget(self, source):
        """A non-TASFAR fine-tune must not be thrown away (and re-paid every
        ingest) just because the reference density probe finds nothing
        confident: the model is published and re-adaptation becomes
        budget-only until a reference map can be estimated."""
        strategy = create_strategy("augfree", epochs=2, seed=0).prepare(
            source["model"], resources(source)
        )
        service = StreamingAdaptationService(
            source["model"],
            source["calibration"],
            config=fast_config(),
            strategy=strategy,
            min_adapt_events=32,
            readapt_budget=64,
        )
        wild = lambda seed: np.random.default_rng(seed).normal(scale=60.0, size=(16, 4))
        assert service.ingest("user", wild(1)).action == "buffered"
        cold = service.ingest("user", wild(2))
        assert cold.action == "cold_adapt"  # published despite no reference map
        report = service.report_for("user")
        assert report is not None and report.scheme == "augfree"
        assert report.extra["drift_reference"] is False
        assert service.model_for("user") is not None
        # Crucially: the next ingests merely buffer (no fine-tune per batch).
        assert service.ingest("user", wild(3)).action == "buffered"
        assert service.ingest("user", wild(4)).action == "buffered"
        assert service.ingest("user", wild(5)).action == "buffered"
        # Budget still triggers re-adaptation, warm-starting the published model.
        assert service.ingest("user", wild(6)).action == "warm_adapt"
        assert service.stream_stats("user") == {
            "target_id": "user",
            "steps": 6,
            "total_events": 96,
            "buffered": 0,
            "cold_adaptations": 1,
            "warm_adaptations": 1,
        }
