"""Unit tests for the shared FineTuneEngine."""

import numpy as np
import pytest

import repro.nn as nn
from repro.core import LossDropEarlyStopper
from repro.engine import (
    ADAPTATION_STREAM,
    CALIBRATION_STREAM,
    FineTuneEngine,
    PROBE_STREAM,
    stream_generator,
    stream_seed_sequence,
)
from repro.nn.data import ArrayDataset, DataLoader
from repro.nn.losses import MSELoss
from repro.nn.optim import Adam, clip_gradients


def make_dataset(n=50, features=3, weighted=True, seed=0):
    rng = np.random.default_rng(seed)
    inputs = rng.normal(size=(n, features))
    targets = inputs @ rng.normal(size=features) + 0.05 * rng.normal(size=n)
    weights = rng.uniform(0.5, 1.5, size=n) if weighted else None
    return ArrayDataset(inputs, targets, weights)


def make_model(features=3, seed=0):
    return nn.build_mlp(features, 1, hidden_dims=(8,), dropout=0.2, seed=seed)


def legacy_loop(model, dataset, epochs, batch_size, lr, rng):
    """The pre-engine reference loop (DataLoader + manual epoch loop)."""
    saved = [(layer, layer.rate) for layer in model.dropout_layers()]
    for layer, _ in saved:
        layer.rate = 0.0
    optimizer = Adam(model.parameters(), lr=lr)
    loss = MSELoss()
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=True, rng=rng)
    losses = []
    model.train()
    for _ in range(epochs):
        total, batches = 0.0, 0
        for inputs, targets, weights in loader:
            optimizer.zero_grad()
            value, grad = loss(model.forward(inputs), targets, weights)
            model.backward(grad)
            clip_gradients(optimizer.parameters, 5.0)
            optimizer.step()
            total += value
            batches += 1
        losses.append(total / max(batches, 1))
    model.eval()
    for layer, rate in saved:
        layer.rate = rate
    return losses


def engine_loop(model, dataset, epochs, batch_size, lr, rng):
    optimizer = Adam(model.parameters(), lr=lr)
    loss = MSELoss()

    def step(inputs, targets, weights):
        value, grad = loss(model.forward(inputs), targets, weights)
        model.backward(grad)
        return value

    engine = FineTuneEngine(epochs, batch_size)
    return engine.run(model, dataset, optimizer, step, rng=rng)


class TestLegacyEquivalence:
    @pytest.mark.parametrize("batch_size", [7, 16, 64])
    @pytest.mark.parametrize("weighted", [True, False])
    def test_engine_is_bitwise_equal_to_dataloader_loop(self, batch_size, weighted):
        """Preallocated buffers + in-place shuffles must not change anything."""
        dataset = make_dataset(weighted=weighted)
        legacy_model = make_model()
        engine_model = make_model()
        losses = legacy_loop(
            legacy_model, dataset, 4, batch_size, 1e-3, np.random.default_rng(5)
        )
        outcome = engine_loop(
            engine_model, dataset, 4, batch_size, 1e-3, np.random.default_rng(5)
        )
        assert outcome.losses == losses
        for old, new in zip(legacy_model.parameters(), engine_model.parameters()):
            np.testing.assert_array_equal(old.data, new.data)

    def test_batch_larger_than_dataset(self):
        dataset = make_dataset(n=5)
        outcome = engine_loop(make_model(), dataset, 2, 64, 1e-3, np.random.default_rng(0))
        assert len(outcome.losses) == 2


class TestEngineBehaviour:
    def test_early_stopping_reports_epoch(self):
        dataset = make_dataset()
        model = make_model()
        optimizer = Adam(model.parameters(), lr=1e-3)

        def step(inputs, targets, weights):
            value, grad = MSELoss()(model.forward(inputs), targets, weights)
            model.backward(grad)
            return value

        # An aggressive stopper: almost any slowdown counts as "slow".
        stopper = LossDropEarlyStopper(drop_fraction=0.99, patience=1, min_epochs=1)
        engine = FineTuneEngine(50, 16, stopper=stopper)
        outcome = engine.run(model, dataset, optimizer, step, rng=np.random.default_rng(0))
        assert outcome.stopped_epoch is not None
        assert outcome.stopped_epoch == len(outcome.losses)
        assert outcome.n_epochs < 50

    def test_min_batch_size_skips_small_batches(self):
        # 17 samples at batch 16 leaves a 1-sample trailing batch.
        dataset = make_dataset(n=17)
        model = make_model()
        seen_sizes = []

        def step(inputs, targets, weights):
            seen_sizes.append(len(inputs))
            value, grad = MSELoss()(model.forward(inputs), targets, weights)
            model.backward(grad)
            return value

        engine = FineTuneEngine(1, 16, min_batch_size=2)
        engine.run(
            model, dataset, Adam(model.parameters(), lr=1e-3), step,
            rng=np.random.default_rng(0),
        )
        assert seen_sizes == [16]

    def test_dropout_rates_restored_and_model_left_in_eval(self):
        dataset = make_dataset()
        model = make_model()
        rates = [layer.rate for layer in model.dropout_layers()]
        assert any(rate > 0 for rate in rates)
        outcome = engine_loop(model, dataset, 1, 16, 1e-3, np.random.default_rng(0))
        assert outcome.n_epochs == 1
        assert [layer.rate for layer in model.dropout_layers()] == rates
        assert not model.dropout_layers()[0].training

    def test_dropout_restored_even_when_step_raises(self):
        dataset = make_dataset()
        model = make_model()
        rates = [layer.rate for layer in model.dropout_layers()]

        def exploding_step(inputs, targets, weights):
            raise RuntimeError("boom")

        engine = FineTuneEngine(1, 16)
        with pytest.raises(RuntimeError):
            engine.run(
                model, dataset, Adam(model.parameters(), lr=1e-3), exploding_step,
                rng=np.random.default_rng(0),
            )
        assert [layer.rate for layer in model.dropout_layers()] == rates

    def test_used_stopper_rejected_on_reuse(self):
        """A stateful stopper stays tripped: reusing it would silently cap
        the second run at one epoch, so the engine refuses it."""
        dataset = make_dataset()
        stopper = LossDropEarlyStopper(drop_fraction=0.99, patience=1, min_epochs=1)

        def run_once():
            model = make_model()
            optimizer = Adam(model.parameters(), lr=1e-3)

            def step(inputs, targets, weights):
                value, grad = MSELoss()(model.forward(inputs), targets, weights)
                model.backward(grad)
                return value

            FineTuneEngine(10, 16, stopper=stopper).run(
                model, dataset, optimizer, step, rng=np.random.default_rng(0)
            )

        run_once()
        with pytest.raises(ValueError, match="fresh"):
            run_once()

    def test_empty_dataset_returns_empty_result(self):
        dataset = ArrayDataset(np.empty((0, 3)), np.empty((0, 1)))
        model = make_model()
        outcome = engine_loop(model, dataset, 3, 16, 1e-3, np.random.default_rng(0))
        assert outcome.losses == []
        assert outcome.stopped_epoch is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epochs": 0},
            {"epochs": 1, "batch_size": 0},
            {"epochs": 1, "grad_clip": 0.0},
            {"epochs": 1, "min_batch_size": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FineTuneEngine(**kwargs)


class TestRngStreamPlan:
    def test_stream_tags_are_stable(self):
        """The tags are a reproducibility contract — renumbering breaks seeds."""
        assert (CALIBRATION_STREAM, ADAPTATION_STREAM, PROBE_STREAM) == (0, 1, 2)

    def test_streams_are_disjoint_and_deterministic(self):
        a = stream_generator(42, CALIBRATION_STREAM).random(4)
        b = stream_generator(42, ADAPTATION_STREAM).random(4)
        again = stream_generator(42, CALIBRATION_STREAM).random(4)
        np.testing.assert_array_equal(a, again)
        assert not np.array_equal(a, b)

    def test_seed_sequence_matches_manual_tagging(self):
        manual = np.random.default_rng(np.random.SeedSequence([9, 1, 3])).random(4)
        planned = np.random.default_rng(stream_seed_sequence(9, ADAPTATION_STREAM, 3)).random(4)
        np.testing.assert_array_equal(manual, planned)
