"""Serial-vs-stacked equivalence for every adaptation scheme.

Two layers above the engine need the bit-identity guarantee:

* the scheme classes' ``adapt_many_stacked`` (baselines) must match one
  ``adapt`` call per target;
* the unified ``AdaptationStrategy.adapt_stacked`` (all six schemes,
  including TASFAR's pseudo-label pipeline) must match ``adapt``,
  independent of packing order, and through the warm-start path.

Everything is compared on losses, early-stop epochs, diagnostics and raw
parameter bytes — ``==`` on floats is bit equality.
"""

import copy

import numpy as np
import pytest
from scheme_oracle_fixture import SCHEME_KWARGS, build_fixture, fast_config

from repro.baselines.adversarial import AdversarialUda
from repro.baselines.augfree import AugFree
from repro.baselines.datafree import DataFree
from repro.baselines.mmd import MmdUda
from repro.baselines.source_only import SourceOnly
from repro.engine.strategy import (
    BaselineStrategy,
    SourceResources,
    StackJob,
    TasfarStrategy,
)
from repro.nn import parameter_bytes

K = 3
SEEDS = [101, 202, 303]


@pytest.fixture(scope="module")
def fixture():
    return build_fixture()


@pytest.fixture(scope="module")
def targets():
    rng = np.random.default_rng(5)
    return [rng.normal(loc=0.3, size=(60, 4)) for _ in range(K)]


def make_strategy(scheme, fixture):
    resources = SourceResources(
        source_data=fixture["source_data"], calibration=fixture["calibration"]
    )
    if scheme == "tasfar":
        return TasfarStrategy(config=fast_config()).prepare(fixture["model"], resources)
    return BaselineStrategy(scheme, **SCHEME_KWARGS[scheme]).prepare(
        fixture["model"], resources
    )


def assert_outcome_identical(outcome, error, expected, context):
    assert error is None, (context, error)
    assert outcome.losses == expected.losses, context
    assert outcome.stopped_epoch == expected.stopped_epoch, context
    assert outcome.diagnostics == expected.diagnostics, context
    assert parameter_bytes(outcome.target_model) == parameter_bytes(
        expected.target_model
    ), (context, "parameter bytes differ")


@pytest.mark.parametrize("scheme", sorted(SCHEME_KWARGS))
def test_strategy_stacked_bit_identical_and_order_independent(scheme, fixture, targets):
    model = fixture["model"]
    strategy = make_strategy(scheme, fixture)
    assert strategy.supports_stacked

    serial = [
        strategy.adapt(copy.deepcopy(model), targets[k], seed=SEEDS[k])
        for k in range(K)
    ]
    stacked = strategy.adapt_stacked(
        [
            StackJob(model=copy.deepcopy(model), inputs=targets[k], seed=SEEDS[k])
            for k in range(K)
        ]
    )
    for k, (outcome, error) in enumerate(stacked):
        assert_outcome_identical(outcome, error, serial[k], (scheme, k))

    # Packing-order independence: reversed jobs give the same per-job bits.
    stacked_reversed = strategy.adapt_stacked(
        [
            StackJob(model=copy.deepcopy(model), inputs=targets[k], seed=SEEDS[k])
            for k in reversed(range(K))
        ]
    )
    for k, (outcome, error) in enumerate(stacked_reversed):
        assert_outcome_identical(outcome, error, serial[K - 1 - k], (scheme, "reversed", k))


@pytest.mark.parametrize("scheme", ["tasfar", "mmd"])
def test_strategy_stacked_warm_start_bit_identical(scheme, fixture, targets):
    model = fixture["model"]
    strategy = make_strategy(scheme, fixture)
    serial = [
        strategy.adapt(copy.deepcopy(model), targets[k], seed=SEEDS[k], warm_epochs=2)
        for k in range(K)
    ]
    stacked = strategy.adapt_stacked(
        [
            StackJob(model=copy.deepcopy(model), inputs=targets[k], seed=SEEDS[k])
            for k in range(K)
        ],
        warm_epochs=2,
    )
    for k, (outcome, error) in enumerate(stacked):
        assert_outcome_identical(outcome, error, serial[k], (scheme, "warm", k))


BASELINE_CLASSES = [
    ("baseline", SourceOnly, {}),
    ("mmd", MmdUda, {"epochs": 3}),
    ("adv", AdversarialUda, {"epochs": 2}),
    ("augfree", AugFree, {"epochs": 3}),
    ("datafree", DataFree, {"epochs": 3}),
]


@pytest.mark.parametrize("name,cls,kwargs", BASELINE_CLASSES, ids=[n for n, _, _ in BASELINE_CLASSES])
def test_baseline_adapt_many_stacked_bit_identical(name, cls, kwargs, fixture, targets):
    model = fixture["model"]
    source_data = fixture["source_data"]

    def build(k):
        return cls() if cls is SourceOnly else cls(seed=10 + k, **kwargs)

    serial = [build(k).adapt(model, targets[k], source_data) for k in range(K)]
    stacked = cls.adapt_many_stacked(
        [(build(k), model, targets[k]) for k in range(K)], source_data
    )
    for k, ((result, error), expected) in enumerate(zip(stacked, serial)):
        assert error is None, (name, k, error)
        assert result.losses == expected.losses, (name, k)
        assert result.diagnostics == expected.diagnostics, (name, k)
        assert parameter_bytes(result.target_model) == parameter_bytes(
            expected.target_model
        ), (name, k, "parameter bytes differ")


@pytest.mark.parametrize("name,cls,kwargs", [
    ("mmd", MmdUda, {"epochs": 2}),
    ("augfree", AugFree, {"epochs": 2}),
], ids=["mmd", "augfree"])
def test_mixed_length_targets_group_and_stay_identical(name, cls, kwargs, fixture):
    # 60/45/60/45 rows: the stacker must split the four jobs into two
    # equal-length groups of two and still reproduce the serial bits.
    model = fixture["model"]
    source_data = fixture["source_data"]
    rng = np.random.default_rng(99)
    mixed = [
        rng.normal(size=(60, 4)),
        rng.normal(size=(45, 4)),
        rng.normal(size=(60, 4)),
        rng.normal(size=(45, 4)),
    ]
    serial = [
        cls(seed=20 + k, **kwargs).adapt(model, mixed[k], source_data) for k in range(4)
    ]
    stacked = cls.adapt_many_stacked(
        [(cls(seed=20 + k, **kwargs), model, mixed[k]) for k in range(4)], source_data
    )
    for k, ((result, error), expected) in enumerate(zip(stacked, serial)):
        assert error is None, (name, k, error)
        assert result.losses == expected.losses, (name, k)
        assert parameter_bytes(result.target_model) == parameter_bytes(
            expected.target_model
        ), (name, k, "parameter bytes differ")
