"""NetServer behaviour: ordering, burst framing, shedding, backpressure.

Everything here runs against stub gateways (see ``conftest.py``) so the
assertions are about the *transport*: what order envelopes come back in,
when the server batches, when it sheds, and what happens when clients
misbehave.
"""

import json
import socket
import threading
import time

import pytest

from conftest import SlowGateway, StubGateway
from repro.net import NetClient, NetServer, overloaded_envelope
from repro.serve import Envelope, ReportRequest


def report_line(target_id):
    return json.dumps({"kind": "report", "target_id": target_id})


def raw_exchange(client, lines, n_responses):
    """Send raw wire lines, parse the envelopes that come back."""
    responses = client._exchange(lines, n_responses, idempotent=False)
    return [Envelope.from_json(raw) for raw in responses]


class TestOrdering:
    def test_one_connection_pipelined_requests_answer_in_order(self, serve_stub):
        server = serve_stub(StubGateway())
        host, port = server.address
        with NetClient(host, port) as client:
            lines = [report_line(f"t{i}") for i in range(20)]
            envelopes = raw_exchange(client, lines, 20)
        assert [e.target_id for e in envelopes] == [f"t{i}" for i in range(20)]
        assert all(e.ok for e in envelopes)

    def test_connections_are_independent(self, serve_stub):
        server = serve_stub(StubGateway(), workers=4)
        host, port = server.address
        results = {}

        def run(name):
            with NetClient(host, port) as client:
                lines = [report_line(f"{name}-{i}") for i in range(10)]
                results[name] = raw_exchange(client, lines, 10)

        threads = [threading.Thread(target=run, args=(f"c{i}",)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for name, envelopes in results.items():
            assert [e.target_id for e in envelopes] == [f"{name}-{i}" for i in range(10)]
        assert server.stats["connections_opened"] == 4


class TestBurstFraming:
    def test_blank_markers_batch_into_one_submit_many(self, serve_stub):
        gateway = StubGateway()
        server = serve_stub(gateway)
        host, port = server.address
        with NetClient(host, port) as client:
            lines = ["", report_line("a"), report_line("b"), report_line("c"), ""]
            envelopes = raw_exchange(client, lines, 3)
        assert [e.payload["burst"] for e in envelopes] == [3, 3, 3]
        assert gateway.batches == [3]
        assert server.stats["bursts"] == 1

    def test_unmarked_lines_answer_one_by_one(self, serve_stub):
        gateway = StubGateway()
        server = serve_stub(gateway)
        host, port = server.address
        with NetClient(host, port) as client:
            envelopes = raw_exchange(
                client, [report_line("a"), report_line("b"), report_line("c")], 3
            )
        assert [e.payload["burst"] for e in envelopes] == [1, 1, 1]
        assert gateway.batches == [1, 1, 1]

    def test_junk_inside_a_burst_flushes_then_answers_in_place(self, serve_stub):
        gateway = StubGateway()
        server = serve_stub(gateway)
        host, port = server.address
        with NetClient(host, port) as client:
            lines = ["", report_line("a"), "{not json", report_line("b"), ""]
            envelopes = raw_exchange(client, lines, 3)
        # Order is the correlation: a's answer, the invalid envelope, b's.
        assert envelopes[0].target_id == "a" and envelopes[0].ok
        assert not envelopes[1].ok
        assert envelopes[2].target_id == "b" and envelopes[2].ok
        # The junk split the burst: a flushed before it, b after.
        assert gateway.batches == [1, 1]
        assert server.stats["invalid"] == 1

    def test_eof_flushes_an_open_burst(self, serve_stub):
        gateway = StubGateway()
        server = serve_stub(gateway)
        host, port = server.address
        with socket.create_connection(server.address, timeout=10) as sock:
            sock.settimeout(10)
            payload = "\n" + report_line("a") + "\n" + report_line("b") + "\n"
            sock.sendall(payload.encode())  # burst opened, never closed
            sock.shutdown(socket.SHUT_WR)
            reader = sock.makefile("rb")
            envelopes = [Envelope.from_json(reader.readline().decode()) for _ in range(2)]
            assert reader.readline() == b""  # server closed after the flush
        assert [e.payload["burst"] for e in envelopes] == [2, 2]
        assert gateway.batches == [2]


class TestOverload:
    def test_shed_requests_answer_as_typed_overloaded_envelopes(self, serve_stub):
        gateway = SlowGateway()
        server = serve_stub(gateway, max_pending=1)
        host, port = server.address
        with NetClient(host, port, timeout=30) as client:
            lines = [report_line("a"), report_line("b"), report_line("c")]
            payload = "".join(line + "\n" for line in lines).encode()
            client.connect()
            client._sock.sendall(payload)
            # b and c must shed while a is still executing; only then let
            # the gateway answer.
            deadline = time.monotonic() + 10
            while server.stats["shed"] < 2 and time.monotonic() < deadline:
                time.sleep(0.005)
            gateway.release.set()
            envelopes = [Envelope.from_json(client._read_line()) for _ in range(3)]
        assert envelopes[0].ok and envelopes[0].target_id == "a"
        for envelope, target in zip(envelopes[1:], ("b", "c")):
            assert not envelope.ok
            assert envelope.target_id == target
            assert envelope.error["type"] == "overloaded"
        assert server.stats["accepted"] == 1
        assert server.stats["shed"] == 2
        deadline = time.monotonic() + 5
        while server.stats["served"] < 3 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert server.stats["served"] == 3  # nothing silently dropped

    def test_envelope_shape_matches_the_codec(self):
        envelope = overloaded_envelope(ReportRequest("t1"), limit=4)
        decoded = json.loads(envelope.to_json())
        assert decoded["ok"] is False
        assert decoded["kind"] == "report"
        assert decoded["error"]["type"] == "overloaded"
        assert Envelope.from_json(envelope.to_json()).error["type"] == "overloaded"

    def test_hard_cap_bounds_the_queue_and_loses_nothing(self, serve_stub):
        gateway = SlowGateway()
        server = serve_stub(gateway, max_pending=1, hard_cap=3)
        host, port = server.address
        n = 12
        with NetClient(host, port, timeout=30) as client:
            lines = [report_line(f"t{i}") for i in range(n)]
            client.connect()
            client._sock.sendall("".join(line + "\n" for line in lines).encode())
            time.sleep(0.2)  # let the reader park at the cap
            gateway.release.set()
            envelopes = [Envelope.from_json(client._read_line()) for _ in range(n)]
        # Every request was answered, in order, exactly once …
        assert [e.target_id for e in envelopes] == [f"t{i}" for i in range(n)]
        for envelope in envelopes:
            assert envelope.ok or envelope.error["type"] == "overloaded"
        # … the books balance, and the queue never blew past the cap.
        assert server.stats["accepted"] + server.stats["shed"] == n
        # served ticks just after the write drains; give the loop a beat.
        deadline = time.monotonic() + 5
        while server.stats["served"] < n and time.monotonic() < deadline:
            time.sleep(0.005)
        assert server.stats["served"] == n
        assert server.stats["peak_queue_depth"] <= 3

    def test_max_pending_zero_sheds_everything(self, serve_stub):
        server = serve_stub(StubGateway(), max_pending=0, hard_cap=8)
        host, port = server.address
        with NetClient(host, port) as client:
            envelopes = raw_exchange(client, [report_line("a")], 1)
        assert envelopes[0].error["type"] == "overloaded"


class TestMisbehavingClients:
    def test_client_vanishing_mid_burst_does_not_poison_the_server(self, serve_stub):
        server = serve_stub(StubGateway())
        host, port = server.address
        sock = socket.create_connection(server.address, timeout=5)
        sock.sendall(("\n" + report_line("doomed") + "\n").encode())
        sock.close()  # gone without reading, burst left open
        deadline = time.monotonic() + 10
        while server.stats["connections_closed"] < 1 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert server.stats["connections_closed"] == 1
        # The server still serves the next client.
        with NetClient(host, port) as client:
            [envelope] = raw_exchange(client, [report_line("alive")], 1)
        assert envelope.ok

    def test_binary_junk_comes_back_as_invalid_envelopes(self, serve_stub):
        server = serve_stub(StubGateway())
        with socket.create_connection(server.address, timeout=10) as sock:
            sock.settimeout(10)
            sock.sendall(b"\xff\xfe\x00garbage\n" + report_line("ok").encode() + b"\n")
            reader = sock.makefile("rb")
            junk = Envelope.from_json(reader.readline().decode("utf-8", "replace"))
            good = Envelope.from_json(reader.readline().decode())
        assert not junk.ok
        assert good.ok and good.target_id == "ok"


class TestConstruction:
    def test_hard_cap_must_exceed_max_pending(self):
        with pytest.raises(ValueError):
            NetServer(StubGateway(), max_pending=4, hard_cap=4)

    def test_address_requires_a_bound_socket(self):
        with pytest.raises(RuntimeError):
            NetServer(StubGateway()).address
