"""Cluster map validation, rendezvous routing, and the multi-node client.

The routing tests pin the growth invariant the whole cluster design rests
on: adding a node moves targets only *to* the new node, never between
survivors — same property, one level up, as PR 4's shard placement.
"""

import json

import pytest

from conftest import StubGateway
from repro.net import (
    CLUSTER_SCHEMA,
    ClusterClient,
    ClusterMap,
    ClusterRouter,
    NodeSpec,
    load_cluster_map,
    node_command,
)
from repro.serve import ReportRequest


def good_map(**overrides):
    payload = {
        "schema": CLUSTER_SCHEMA,
        "serve_args": ["--task", "housing", "--scale", "tiny"],
        "nodes": [
            {"name": "a", "host": "127.0.0.1", "port": 7601},
            {"name": "b", "host": "127.0.0.1", "port": 7602},
        ],
    }
    payload.update(overrides)
    return payload


class TestLoadClusterMap:
    def test_loads_from_dict_text_and_path(self, tmp_path):
        payload = good_map()
        from_dict = load_cluster_map(payload)
        from_text = load_cluster_map(json.dumps(payload))
        path = tmp_path / "cluster.json"
        path.write_text(json.dumps(payload))
        from_path = load_cluster_map(path)
        for loaded in (from_dict, from_text, from_path):
            assert loaded.names == ("a", "b")
            assert loaded.node("b").port == 7602
            assert loaded.serve_args == ("--task", "housing", "--scale", "tiny")

    @pytest.mark.parametrize(
        "doctor, match",
        [
            (lambda m: m.update(schema="repro.cluster/v0"), "schema"),
            (lambda m: m.update(surprise=1), "unknown cluster map keys"),
            (lambda m: m.update(nodes=[]), "non-empty"),
            (lambda m: m["nodes"][0].update(color="red"), "unknown node keys"),
            (lambda m: m["nodes"][0].update(name=""), "name"),
            (lambda m: m["nodes"][0].update(port=0), "port"),
            (lambda m: m["nodes"][1].update(name="a"), "unique"),
            (lambda m: m["nodes"][1].update(port=7601), "unique"),
            (lambda m: m.update(serve_args=[1, 2]), "serve_args"),
        ],
    )
    def test_strict_validation(self, doctor, match):
        payload = good_map()
        doctor(payload)
        with pytest.raises(ValueError, match=match):
            load_cluster_map(payload)


class TestClusterRouter:
    def test_deterministic_and_covering(self):
        router = ClusterRouter(["a", "b", "c"])
        placement = router.placement(f"user-{i:03d}" for i in range(200))
        again = ClusterRouter(["a", "b", "c"]).placement(placement)
        assert placement == again
        counts = {name: 0 for name in ("a", "b", "c")}
        for node in placement.values():
            counts[node] += 1
        assert all(count > 0 for count in counts.values())

    def test_growth_moves_targets_only_to_the_new_node(self):
        before = ClusterRouter(["a", "b"])
        after = ClusterRouter(["a", "b", "c"])
        moved = 0
        for i in range(300):
            target = f"user-{i:04d}"
            old, new = before.node_for(target), after.node_for(target)
            if new != old:
                assert new == "c"  # never a→b or b→a
                moved += 1
        assert 0 < moved < 300  # c took some targets, not all

    def test_order_of_names_does_not_matter(self):
        forward = ClusterRouter(["a", "b", "c"])
        shuffled = ClusterRouter(["c", "a", "b"])
        for i in range(50):
            target = f"user-{i}"
            assert forward.node_for(target) == shuffled.node_for(target)

    def test_rejects_empty_and_duplicate_names(self):
        with pytest.raises(ValueError):
            ClusterRouter([])
        with pytest.raises(ValueError):
            ClusterRouter(["a", "a"])


class TestClusterClient:
    @pytest.fixture
    def cluster(self, serve_stub):
        gateways = {name: StubGateway(name) for name in ("a", "b")}
        nodes = []
        for name, gateway in gateways.items():
            server = serve_stub(gateway)
            host, port = server.address
            nodes.append(NodeSpec(name=name, host=host, port=port))
        cluster_map = ClusterMap(nodes=tuple(nodes))
        with ClusterClient(cluster_map, timeout=10.0) as client:
            yield client, gateways

    def test_submit_routes_by_rendezvous(self, cluster):
        client, _ = cluster
        for i in range(20):
            target = f"user-{i}"
            envelope = client.submit(ReportRequest(target))
            assert envelope.ok
            assert envelope.payload["node"] == client.router.node_for(target)

    def test_submit_many_scatters_and_reorders_correctly(self, cluster):
        client, gateways = cluster
        targets = [f"user-{i}" for i in range(30)]
        envelopes = client.submit_many([ReportRequest(t) for t in targets])
        assert [e.target_id for e in envelopes] == targets  # request order
        for target, envelope in zip(targets, envelopes):
            assert envelope.payload["node"] == client.router.node_for(target)
        # Each node saw its sub-burst as ONE submit_many.
        routed = client.router.placement(targets)
        for name, gateway in gateways.items():
            expected = sum(1 for node in routed.values() if node == name)
            assert gateway.batches == ([expected] if expected else [])

    def test_fleet_wide_requests_go_to_the_first_node(self, cluster):
        client, _ = cluster
        envelope = client.submit(ReportRequest(None))
        assert envelope.payload["node"] == client.map.names[0]

    def test_metrics_snapshot_labels_every_entry_with_its_node(self, cluster):
        client, gateways = cluster
        for name, gateway in gateways.items():
            gateway.metrics.counter("stub.pings", 3)
        merged = client.metrics_snapshot()
        pings = [c for c in merged["counters"] if c["name"] == "stub.pings"]
        assert sorted(c["labels"]["node"] for c in pings) == ["a", "b"]
        assert all(c["value"] == 3 for c in pings)


class TestNodeCommand:
    def test_argv_shape(self):
        cluster_map = load_cluster_map(good_map())
        node = cluster_map.node("b")
        argv = node_command(cluster_map, node, python="python3")
        assert argv[:4] == ["python3", "-m", "repro.cli", "serve"]
        assert "--listen" in argv and "127.0.0.1:7602" in argv
        assert argv[argv.index("--node") + 1] == "b"
        # Shared args present, after the fixed flags.
        assert "--task" in argv and "housing" in argv

    def test_per_node_args_come_after_shared_ones(self):
        payload = good_map()
        payload["nodes"][0]["serve_args"] = ["--shards", "4"]
        cluster_map = load_cluster_map(payload)
        argv = node_command(cluster_map, cluster_map.node("a"))
        assert argv.index("--task") < argv.index("--shards")
