"""Graceful-shutdown regressions, against the real CLI in real processes.

Signal handling cannot be faithfully tested in-process (pytest owns the
main thread's handlers), so these tests spawn ``repro serve`` the way an
operator does, deliver real SIGTERM, and assert the contract: in-flight
work drains, ``--metrics-out`` flushes, the process exits 0.
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent.parent
SERVE = [sys.executable, "-m", "repro.cli", "serve", "--task", "housing", "--scale", "tiny"]


def spawn(extra_args, metrics_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.Popen(
        [*SERVE, "--metrics-out", str(metrics_path), *extra_args],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        cwd=str(REPO),
        text=True,
    )


def terminate(proc, timeout=60):
    proc.send_signal(signal.SIGTERM)
    try:
        return proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        pytest.fail("serve did not exit after SIGTERM (graceful shutdown hung)")


def report_line(target):
    return json.dumps({"kind": "report", "target_id": target}) + "\n"


class TestStdioShutdown:
    def test_sigterm_drains_and_flushes_metrics(self, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        proc = spawn([], metrics_path)
        try:
            proc.stdin.write(report_line("t1"))
            proc.stdin.flush()
            answer = json.loads(proc.stdout.readline())
            assert answer["ok"] is True
            rc = terminate(proc)
            assert rc == 0, proc.stderr.read()
        finally:
            if proc.poll() is None:
                proc.kill()
        snapshot = json.loads(metrics_path.read_text())
        requests = [
            c for c in snapshot["counters"] if c["name"] == "serve.requests"
        ]
        assert requests, "the flushed snapshot must include the served request"


class TestTcpShutdown:
    def wait_for_address(self, proc):
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            line = proc.stderr.readline()
            if not line:
                break
            match = re.search(r"listening on ([\d.]+):(\d+)", line)
            if match:
                return match.group(1), int(match.group(2))
        pytest.fail("serve --listen never reported its address")

    def test_sigterm_drains_open_connections_and_exits_zero(self, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        proc = spawn(["--listen", "127.0.0.1:0"], metrics_path)
        try:
            host, port = self.wait_for_address(proc)
            with socket.create_connection((host, port), timeout=30) as sock:
                sock.settimeout(30)
                reader = sock.makefile("rb")
                # One answered exchange proves the server is live …
                sock.sendall(report_line("t1").encode())
                assert json.loads(reader.readline())["ok"] is True
                # … then a request immediately followed by SIGTERM: the
                # drain must still deliver its envelope before closing.
                sock.sendall(report_line("t2").encode())
                proc.send_signal(signal.SIGTERM)
                final = json.loads(reader.readline())
                assert final["ok"] is True and final["target_id"] == "t2"
                assert reader.readline() == b""  # clean EOF, not a reset
            rc = proc.wait(timeout=60)
            assert rc == 0, proc.stderr.read()
        finally:
            if proc.poll() is None:
                proc.kill()
        snapshot = json.loads(metrics_path.read_text())
        names = {c["name"] for c in snapshot["counters"]}
        assert "net.accepted" in names, "transport counters must reach --metrics-out"
        accepted = sum(
            c["value"] for c in snapshot["counters"] if c["name"] == "net.accepted"
        )
        assert accepted == 2
