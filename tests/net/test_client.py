"""NetClient retry policy: bounded, and honest about side effects.

The acceptors here are raw scripted sockets, not NetServers — the point
is to control exactly when the "server" misbehaves (never answers,
closes mid-read) and count how many times it was actually reached.
"""

import json
import socket
import threading
import time

import pytest

from repro.net import NetClient, NetError
from repro.serve import Envelope, ReportRequest


class ScriptedAcceptor:
    """A TCP listener running one scripted behaviour per accepted connection.

    ``script`` maps the connection index to a behaviour:
    ``"close"`` (accept then immediately close), ``"serve"`` (answer one
    envelope per received line), ``"hang"`` (accept, read, never answer).
    The last entry repeats for any further connections.
    """

    def __init__(self, script):
        self.script = script
        self.connections = 0
        self.lines_seen = []
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self._listener.settimeout(0.2)
        self.address = self._listener.getsockname()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            behaviour = self.script[min(self.connections, len(self.script) - 1)]
            self.connections += 1
            try:
                if behaviour == "close":
                    conn.close()
                    continue
                conn.settimeout(5.0)
                reader = conn.makefile("rb")
                while not self._stop.is_set():
                    raw = reader.readline()
                    if not raw:
                        break
                    line = raw.decode().rstrip("\n")
                    self.lines_seen.append(line)
                    if behaviour == "serve" and line:
                        request = json.loads(line)
                        answer = Envelope(
                            ok=True,
                            kind=request.get("kind", "report"),
                            target_id=request.get("target_id"),
                        )
                        conn.sendall((answer.to_json() + "\n").encode())
            except OSError:
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def close(self):
        self._stop.set()
        self._thread.join(timeout=5)
        self._listener.close()


@pytest.fixture
def acceptor():
    acceptors = []

    def factory(script):
        instance = ScriptedAcceptor(script)
        acceptors.append(instance)
        return instance

    yield factory
    for instance in acceptors:
        instance.close()


class TestConnectFailures:
    def test_refused_connection_raises_net_error_after_bounded_retries(self):
        # Grab a port nothing listens on.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()
        probe.close()
        client = NetClient(host, port, timeout=1.0, retries=2, retry_delay=0.01)
        started = time.monotonic()
        with pytest.raises(NetError, match="failed after 3 attempt"):
            client.request(ReportRequest("t1"))
        assert time.monotonic() - started < 10

    def test_timeout_waiting_for_an_answer_is_bounded(self, acceptor):
        server = acceptor(["hang"])
        client = NetClient(*server.address, timeout=0.3, retries=0)
        started = time.monotonic()
        with pytest.raises(NetError):
            client.request_line(json.dumps({"kind": "report", "target_id": "t"}))
        assert time.monotonic() - started < 5
        client.close()


class TestRetryPolicy:
    def test_idempotent_request_is_resent_after_a_mid_read_disconnect(self, acceptor):
        server = acceptor(["close", "serve"])
        client = NetClient(*server.address, timeout=5.0, retries=2, retry_delay=0.01)
        envelope = client.request(ReportRequest("t1"))  # report: idempotent
        assert envelope.ok and envelope.target_id == "t1"
        assert server.connections == 2  # first died mid-read, second served
        client.close()

    def test_non_idempotent_request_is_never_resent(self, acceptor):
        server = acceptor(["close", "serve"])
        client = NetClient(*server.address, timeout=5.0, retries=2, retry_delay=0.01)
        # request_line is pinned non-idempotent: the client cannot know
        # whether the first server saw the line before dying.
        with pytest.raises(NetError, match="failed after 1 attempt"):
            client.request_line(json.dumps({"kind": "adapt", "target_id": "t1"}))
        time.sleep(0.1)
        assert server.connections == 1  # no second server-side attempt
        client.close()

    def test_mixed_burst_with_a_mutating_kind_is_non_idempotent(self, acceptor):
        server = acceptor(["close"])
        client = NetClient(*server.address, timeout=5.0, retries=3, retry_delay=0.01)
        from repro.serve import StreamRequest

        with pytest.raises(NetError, match="failed after 1 attempt"):
            client.request_many(
                [ReportRequest("a"), StreamRequest("b", [[0.0, 1.0]])]
            )
        client.close()


class TestWireShape:
    def test_single_request_sends_no_burst_markers(self, acceptor):
        server = acceptor(["serve"])
        client = NetClient(*server.address, timeout=5.0)
        client.request(ReportRequest("t1"))
        client.close()
        assert len(server.lines_seen) == 1  # no blank marker lines

    def test_multi_request_burst_is_bracketed_by_blank_lines(self, acceptor):
        server = acceptor(["serve"])
        client = NetClient(*server.address, timeout=5.0)
        client.request_many([ReportRequest("a"), ReportRequest("b")])
        client.close()
        assert server.lines_seen[0] == ""
        assert server.lines_seen[-1] == ""
        assert len(server.lines_seen) == 4

    def test_blank_line_passthrough_never_touches_the_wire(self, acceptor):
        server = acceptor(["serve"])
        client = NetClient(*server.address, timeout=5.0)
        assert client.request_line("   \n") is None
        client.close()
        assert server.connections == 0

    def test_non_envelope_response_is_a_net_error(self, acceptor):
        server = acceptor(["hang"])
        # Answer by hand with junk so from_json fails.
        raw = socket.socket()
        raw.bind(("127.0.0.1", 0))
        raw.listen(1)
        host, port = raw.getsockname()

        def junk_server():
            conn, _ = raw.accept()
            conn.makefile("rb").readline()
            conn.sendall(b"this is not an envelope\n")
            conn.close()

        thread = threading.Thread(target=junk_server, daemon=True)
        thread.start()
        client = NetClient(host, port, timeout=5.0, retries=0)
        with pytest.raises(NetError, match="non-envelope"):
            client.request(ReportRequest("t1"))
        client.close()
        thread.join(timeout=5)
        raw.close()
