"""The transport-determinism oracle: TCP runs are byte-identical to
in-process runs, with the network fault plans firing.

This is the acceptance test of the networked-serving PR: a deterministic
workload spec replayed through a real socket server (burst markers,
bounded queues, connection churn, process-backed shards) must produce the
exact transcript of an in-process run — and when the transport sheds
load, the metrics books must still balance against the envelope record.
"""

import json
import time

import numpy as np
import pytest

from repro.net import NetClient, RemoteGateway
from repro.serve import Envelope, PredictRequest
from repro.serve.protocol import encode_request
from repro.sim import (
    InvariantSuite,
    RequestRecord,
    build_gateway,
    create_fault_plan,
    run_simulation,
    verify_transport,
)
from repro.sim.spec import TraceEvent

from sim_fixtures import make_spec


class TestTransportDeterminism:
    def test_tcp_transcript_is_byte_identical_to_in_process(self):
        ok, detail, tcp_result, local_result = verify_transport(make_spec())
        assert ok, detail
        assert tcp_result.ok and local_result.ok
        assert tcp_result.transcript_lines == local_result.transcript_lines

    def test_conn_churn_over_process_shards_stays_byte_identical(self):
        spec = make_spec(
            fault_plan="conn_churn",
            fault_options={"every": 2},
            executor="process",
        )
        ok, detail, tcp_result, _ = verify_transport(spec)
        assert ok, detail
        churns = [f for f in tcp_result.faults if f["fault"] == "conn_churn"]
        assert churns, "the oracle must fire: no churn was injected"
        assert all(f["applied"] for f in churns)

    def test_slow_client_backpressure_stays_byte_identical(self):
        spec = make_spec(
            fault_plan="slow_client",
            fault_options={"every": 2, "stall_seconds": 0.05},
        )
        ok, detail, tcp_result, _ = verify_transport(spec)
        assert ok, detail
        stalls = [f for f in tcp_result.faults if f["fault"] == "slow_client"]
        assert stalls and all(f["applied"] for f in stalls)


class TestFaultPlanHonesty:
    def test_network_faults_record_not_applied_in_process(self):
        # In-process gateways have no connections: the plans must say so
        # rather than pretend the fault happened.
        for plan, options in (
            ("conn_churn", {"every": 2}),
            ("slow_client", {"every": 2, "stall_seconds": 0.01}),
        ):
            result = run_simulation(
                make_spec(n_ticks=3, fault_plan=plan, fault_options=options)
            )
            assert result.ok
            assert result.faults, f"{plan}: the fault log is empty"
            assert all(not f["applied"] for f in result.faults)

    def test_unknown_fault_options_are_rejected(self):
        with pytest.raises(ValueError, match="unknown option"):
            create_fault_plan("conn_churn", bogus=1)
        with pytest.raises(ValueError, match="unknown option"):
            create_fault_plan("slow_client", stall=0.5)


class TestOverloadAccounting:
    def test_shed_requests_reconcile_with_the_metrics_books(self, serve_stub):
        """Overload a tiny queue; every request answers, the books balance.

        How many requests shed depends on worker/reader interleaving, so
        the assertion is the one that matters operationally: zero hung
        clients, every shed answered with the typed envelope, and the
        ``metrics_accounting`` invariant reconciling whatever the actual
        accepted/shed split was.
        """
        gateway = build_gateway(make_spec())
        try:
            server = serve_stub(gateway, max_pending=2)
            host, port = server.address
            remote = RemoteGateway(host, port, local=gateway)
            suite = InvariantSuite(remote, verify_coalescing=False)

            rng = np.random.default_rng(7)
            requests = [
                PredictRequest("fleet-00", rng.normal(size=(3, 8))) for _ in range(4)
            ]
            lines = ["", *(json.dumps(encode_request(r)) for r in requests), ""]
            client = NetClient(host, port, timeout=30.0)
            raw = client._exchange(lines, len(requests), idempotent=False)
            envelopes = [Envelope.from_json(answer) for answer in raw]
            client.close()

            # Zero hung clients: one envelope per request, in order.
            assert len(envelopes) == len(requests)
            shed = [e for e in envelopes if e.error and e.error.get("type") == "overloaded"]
            answered = [e for e in envelopes if e not in shed]
            assert shed, "max_pending=2 with a 4-predict burst must shed"
            assert answered, "the admitted prefix must still be served"

            # Wait for the connection to fold up so queue gauges read 0.
            deadline = time.monotonic() + 10
            while server.stats["connections_closed"] < 1 and time.monotonic() < deadline:
                time.sleep(0.005)

            records = [
                RequestRecord(
                    TraceEvent(0, seq, request.kind, request.target_id, lines[seq + 1]),
                    request,
                    envelope,
                )
                for seq, (request, envelope) in enumerate(zip(requests, envelopes))
            ]
            suite.observe_tick(0, records)
            assert suite.ok, [v.detail for v in suite.violations]
            assert suite.checks["metrics_accounting"] == 1
            assert server.stats["shed"] == len(shed)
        finally:
            gateway.close()
