"""Hypothesis property tests for the socket line framer.

The framer is the one piece of the transport TCP gets to mangle: the
kernel hands back arbitrary segment boundaries, so every guarantee the
stdio loop got from ``readline`` has to be re-proven over chunked reads.

* **chunking invariance** — any partition of a byte stream yields exactly
  the lines the unpartitioned stream yields;
* **stdio equivalence** — the lines recovered from a chunked stream are
  the same lines a blocking ``readline`` loop would have seen, so
  ``decode_line`` (and everything above it) cannot tell the transports
  apart;
* **totality** — arbitrary junk bytes never raise, and every recovered
  line either decodes to a request or to the codec's ``invalid`` error
  envelope: garbage never escapes the envelope discipline;
* **overflow** — a line past ``max_line_bytes`` is replaced by a
  guaranteed-invalid line instead of growing without bound.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import LineFramer
from repro.serve import Envelope
from repro.serve.loop import decode_line


def frame_all(framer, data):
    """Feed ``data`` in one call; collect completed lines plus the tail."""
    lines = framer.feed(data)
    tail = framer.flush()
    if tail is not None:
        lines.append(tail)
    return lines


def frame_chunked(data, cut_points):
    """Feed ``data`` split at ``cut_points``; collect the same way."""
    framer = LineFramer()
    cuts = sorted({min(cut, len(data)) for cut in cut_points})
    pieces, start = [], 0
    for cut in [*cuts, len(data)]:
        pieces.append(data[start:cut])
        start = cut
    lines = []
    for piece in pieces:
        lines.extend(framer.feed(piece))
    tail = framer.flush()
    if tail is not None:
        lines.append(tail)
    return lines


payloads = st.binary(max_size=400)
cut_lists = st.lists(st.integers(min_value=0, max_value=400), max_size=10)


class TestChunkingInvariance:
    @settings(max_examples=150, deadline=None)
    @given(payload=payloads, cuts=cut_lists)
    def test_any_partition_yields_the_same_lines(self, payload, cuts):
        whole = frame_all(LineFramer(), payload)
        chunked = frame_chunked(payload, cuts)
        assert chunked == whole

    @settings(max_examples=100, deadline=None)
    @given(
        lines=st.lists(st.text(max_size=40).map(lambda s: s.replace("\n", " ")), max_size=8),
        cuts=cut_lists,
    )
    def test_chunked_stream_equals_a_readline_loop(self, lines, cuts):
        # What a blocking stdio loop would see, modulo the framer's two
        # deliberate normalisations (CR stripping, lossy decode).
        stream = "".join(line + "\n" for line in lines).encode("utf-8")
        recovered = frame_chunked(stream, cuts)
        assert recovered == [line.rstrip("\r") for line in lines]


class TestTotality:
    @settings(max_examples=150, deadline=None)
    @given(payload=payloads, cuts=cut_lists)
    def test_junk_never_raises_and_never_escapes_the_envelope(self, payload, cuts):
        for line in frame_chunked(payload, cuts):
            request, error = decode_line(line)
            if not line.strip():
                assert request is None and error is None
            else:
                assert (request is None) != (error is None)
                if error is not None:
                    assert isinstance(error, Envelope)
                    assert not error.ok
                    # The error envelope itself must survive the wire.
                    assert not json.loads(error.to_json())["ok"]


class TestOverflow:
    def test_oversized_line_is_replaced_not_buffered(self):
        framer = LineFramer(max_line_bytes=64)
        lines = framer.feed(b"x" * 500)  # no newline yet: nothing emitted
        assert lines == []
        [replacement] = framer.feed(b"y" * 100 + b"\nok\n")[:1]
        assert "exceeded the transport limit" in replacement
        request, error = decode_line(replacement)
        assert request is None and error is not None
        assert not error.ok

    def test_line_after_an_overflow_is_framed_normally(self):
        framer = LineFramer(max_line_bytes=64)
        framer.feed(b"x" * 500)
        produced = framer.feed(b"\nhello\n")
        assert len(produced) == 2
        assert produced[1] == "hello"
