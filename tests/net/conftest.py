"""Shared fixtures for the socket-transport suite.

The stub gateways here implement only the submission surface the
transport needs (``submit`` / ``submit_many`` / ``metrics``), recording
how the server batched what came off the wire — which is the whole point
of most transport tests: the interesting behaviour is *between* the
socket and the gateway, not inside the gateway.
"""

import sys
import threading
from pathlib import Path

import pytest

# The transport-determinism tests replay the same workload specs the sim
# suite uses; make its fixture helpers importable from here.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "sim"))

from repro.obs import MetricsRegistry
from repro.net import NetServer
from repro.serve import Envelope


class StubGateway:
    """Echo gateway: answers every request, records burst shapes.

    Each envelope's payload carries the size of the ``submit_many`` burst
    it arrived in (and this gateway's ``name``), so a test can read the
    server's batching decisions straight off the wire.
    """

    def __init__(self, name="stub"):
        self.name = name
        self.metrics = MetricsRegistry()
        self.batches = []  # sizes of every submit/submit_many call, in order
        self._lock = threading.Lock()

    def submit(self, request):
        return self.submit_many([request])[0]

    def submit_many(self, requests):
        requests = list(requests)
        with self._lock:
            self.batches.append(len(requests))
        return [self._answer(request, len(requests)) for request in requests]

    def _answer(self, request, burst):
        if request.kind == "metrics":
            payload = {"metrics": self.metrics.snapshot(), "node": self.name}
        else:
            payload = {"burst": burst, "node": self.name}
        return Envelope(
            ok=True, kind=request.kind, target_id=request.target_id, payload=payload
        )

    def close(self):
        pass


class SlowGateway(StubGateway):
    """A stub whose every execution blocks until :attr:`release` is set —
    the deterministic way to pile requests up in the server's queue."""

    def __init__(self, name="slow"):
        super().__init__(name)
        self.release = threading.Event()

    def submit_many(self, requests):
        assert self.release.wait(timeout=30.0), "SlowGateway never released"
        return super().submit_many(requests)


@pytest.fixture
def serve_stub():
    """Factory: start a NetServer over a gateway, stop it at teardown."""
    servers = []

    def factory(gateway, **kwargs):
        server = NetServer(gateway, **kwargs)
        server.start()
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.stop()
