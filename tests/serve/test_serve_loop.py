"""Tests for the JSON-lines serving loop and the `repro serve` subcommand."""

import io
import json

import numpy as np

from repro.serve import SCHEMA, AdaptRequest, Gateway, serve_lines, serve_loop

from gateway_fixtures import fast_config, make_targets

ENVELOPE_KEYS = {
    "schema",
    "ok",
    "kind",
    "target_id",
    "payload",
    "error",
    "duration_seconds",
}


def build_gateway(source):
    model, calibration = source
    return Gateway(model, calibration, config=fast_config(), n_shards=2)


def request_lines():
    data = make_targets(n_targets=1)["user_00"]
    probe = np.random.default_rng(2).normal(size=(4, 4)).tolist()
    return [
        json.dumps({"kind": "adapt", "target_id": "u1", "inputs": data.tolist()}),
        "",  # blank lines are skipped
        json.dumps({"kind": "predict", "target_id": "u1", "inputs": probe}),
        json.dumps({"kind": "predict", "target_id": "u2", "inputs": probe}),
        "this is not json",
        json.dumps({"kind": "warp", "target_id": "u1"}),
        json.dumps({"kind": ["adapt"], "target_id": "u1"}),  # unhashable kind
        json.dumps({"kind": "predict", "target_id": "u1", "inputs": [[0.1, 0.2]]}),  # bad width
        json.dumps({"kind": "stream", "target_id": "u1", "batch": probe}),
        json.dumps({"kind": "report", "target_id": "u1"}),
        json.dumps({"kind": "report"}),
    ]


class TestServeLines:
    def test_every_line_gets_a_versioned_envelope(self, source):
        gateway = build_gateway(source)
        envelopes = list(serve_lines(gateway, request_lines()))
        gateway.close()
        assert len(envelopes) == 10  # one per non-blank line
        assert [envelope.ok for envelope in envelopes] == [
            True, True, True, False, False, False, False, True, True, True,
        ]
        assert all(envelope.schema == SCHEMA for envelope in envelopes)
        adapted, probed, fallback = envelopes[0], envelopes[1], envelopes[2]
        assert adapted.payload["report"]["target_id"] == "u1"
        assert probed.payload["model"] == "adapted"
        assert fallback.payload["model"] == "source"
        assert envelopes[3].kind == "invalid"  # bad JSON
        assert "unknown request kind" in envelopes[4].error["message"]
        assert "kind must be a string" in envelopes[5].error["message"]
        assert envelopes[6].kind == "predict"  # wrong feature width: error data
        assert envelopes[8].payload["report"]["target_id"] == "u1"
        assert set(envelopes[9].payload["reports"]) == {"u1"}

    def test_loop_writes_one_json_line_per_envelope(self, source):
        gateway = build_gateway(source)
        stdout = io.StringIO()
        served = serve_loop(gateway, io.StringIO("\n".join(request_lines())), stdout)
        gateway.close()
        lines = [line for line in stdout.getvalue().splitlines() if line]
        assert served == len(lines) == 10
        for line in lines:
            payload = json.loads(line)
            assert set(payload) == ENVELOPE_KEYS
            assert payload["schema"] == SCHEMA


class TestLoopFaultTolerance:
    """Regression tests: nothing that happens after decoding may escape the loop.

    Found while scripting fault plans for the workload simulator: a request
    whose *submission* raised (a registry ``KeyError`` for an unknown
    target, a shard pool shut down mid-flight) used to propagate out of
    ``serve_lines`` and kill every queued request behind it.
    """

    def test_unknown_target_registry_keyerror_becomes_error_envelope(self, source):
        gateway = build_gateway(source)
        probe = np.random.default_rng(3).normal(size=(2, 4)).tolist()
        lines = [
            json.dumps(
                {"kind": "predict", "target_id": "ghost", "inputs": probe, "strict": True}
            ),
            json.dumps({"kind": "report", "target_id": "ghost"}),
        ]
        envelopes = list(serve_lines(gateway, lines))
        gateway.close()
        assert [e.ok for e in envelopes] == [False, True]
        assert envelopes[0].kind == "predict"
        assert envelopes[0].error["type"] == "KeyError"
        assert "never adapted" in envelopes[0].error["message"]
        assert envelopes[1].payload["report"] is None

    def test_submit_exceptions_are_absorbed_and_the_loop_continues(self, source):
        class ExplodingGateway:
            def __init__(self, inner):
                self.inner = inner
                self.calls = 0

            def submit(self, request):
                self.calls += 1
                if self.calls == 1:
                    raise KeyError("no bundle registered for task 'warp'")
                return self.inner.submit(request)

        gateway = build_gateway(source)
        exploding = ExplodingGateway(gateway)
        probe = np.random.default_rng(4).normal(size=(2, 4)).tolist()
        lines = [
            json.dumps({"kind": "predict", "target_id": "u1", "inputs": probe}),
            json.dumps({"kind": "report"}),
        ]
        envelopes = list(serve_lines(exploding, lines))
        gateway.close()
        assert len(envelopes) == 2  # the loop survived the submit-time KeyError
        assert not envelopes[0].ok
        assert envelopes[0].kind == "predict"
        assert envelopes[0].target_id == "u1"
        assert envelopes[0].error["type"] == "KeyError"
        assert envelopes[1].ok

    def test_dead_shard_pools_answer_error_envelopes(self, source):
        gateway = build_gateway(source)
        gateway.close()  # every shard pool is gone; the loop must outlive them
        probe = np.random.default_rng(5).normal(size=(2, 4)).tolist()
        lines = [
            json.dumps({"kind": "predict", "target_id": "u1", "inputs": probe}),
            json.dumps({"kind": "adapt", "target_id": "u1", "inputs": probe}),
        ]
        envelopes = list(serve_lines(gateway, lines))
        assert len(envelopes) == 2
        assert all(not e.ok for e in envelopes)
        assert all(e.error["type"] == "RuntimeError" for e in envelopes)

    def test_submit_async_on_dead_pool_returns_error_future(self, source):
        from repro.serve import PredictRequest

        gateway = build_gateway(source)
        gateway.close()
        probe = np.random.default_rng(6).normal(size=(2, 4))
        future = gateway.submit_async(PredictRequest("u1", probe))
        envelope = future.result(timeout=5)
        assert not envelope.ok
        assert envelope.error["type"] == "RuntimeError"

    def test_broken_stdout_pipe_ends_the_loop_cleanly(self, source):
        """`repro serve ... | head -n 2`: the reader hangs up mid-stream.

        The loop must stop (not crash) and report only the envelopes that
        actually reached the reader.
        """

        class BrokenPipe(io.StringIO):
            def __init__(self, writes_before_break):
                super().__init__()
                self.remaining = writes_before_break

            def write(self, text):
                if self.remaining <= 0:
                    raise BrokenPipeError("downstream reader hung up")
                self.remaining -= 1
                return super().write(text)

        gateway = build_gateway(source)
        stdout = BrokenPipe(writes_before_break=2)
        served = serve_loop(gateway, io.StringIO("\n".join(request_lines())), stdout)
        gateway.close()
        # Each envelope is one write; the third write broke the pipe, so
        # exactly the two delivered envelopes are counted.
        assert served == 2
        assert len([line for line in stdout.getvalue().splitlines() if line]) == 2

    def test_closed_stdout_ends_the_loop_cleanly(self, source):
        """A closed text stream raises ValueError, not BrokenPipeError."""

        class ClosingStdout(io.StringIO):
            def __init__(self, writes_before_close):
                super().__init__()
                self.remaining = writes_before_close

            def write(self, text):
                if self.remaining <= 0:
                    self.close()
                self.remaining -= 1
                return super().write(text)

        gateway = build_gateway(source)
        served = serve_loop(
            gateway,
            io.StringIO("\n".join(request_lines())),
            ClosingStdout(writes_before_close=3),
        )
        gateway.close()
        assert served == 3


class TestServeCommand:
    def test_serve_command_end_to_end(self, capsys, monkeypatch):
        from repro.cli import main

        scripted = [
            {"kind": "adapt", "target_id": "coastal",
             "inputs": [[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]] * 4},
            {"kind": "predict", "target_id": "coastal",
             "inputs": [[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]] * 4},
            {"kind": "report"},
        ]
        stdin = io.StringIO("\n".join(json.dumps(request) for request in scripted))
        monkeypatch.setattr("sys.stdin", stdin)
        assert main(["serve", "--task", "housing", "--scale", "tiny", "--shards", "2"]) == 0
        captured = capsys.readouterr()
        assert "[serve] ready" in captured.err
        lines = [line for line in captured.out.splitlines() if line]
        assert len(lines) == 3
        envelopes = [json.loads(line) for line in lines]
        assert all(envelope["ok"] for envelope in envelopes)
        assert all(envelope["schema"] == SCHEMA for envelope in envelopes)
        assert envelopes[1]["payload"]["model"] == "adapted"
        assert "coastal" in envelopes[2]["payload"]["reports"]

    def test_serve_rejects_invalid_knobs(self):
        import pytest

        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["serve", "--task", "housing", "--scale", "tiny", "--shards", "0"])
