"""Tests for the sharded serving gateway and its prediction micro-batcher."""

import numpy as np
import pytest

from repro.serve import (
    AdaptRequest,
    BatchPolicy,
    Envelope,
    Gateway,
    PredictRequest,
    ReportRequest,
    StreamRequest,
)

from gateway_fixtures import fast_config, make_targets


def build_gateway(source, **kwargs):
    model, calibration = source
    kwargs.setdefault("config", fast_config())
    kwargs.setdefault("shard_workers", 2)
    return Gateway(model, calibration, **kwargs)


def adapted_gateway(source, n_targets=4, **kwargs):
    gateway = build_gateway(source, **kwargs)
    fleet = make_targets(n_targets=n_targets)
    envelopes = gateway.submit_many(
        [AdaptRequest(name, data) for name, data in fleet.items()]
    )
    assert all(envelope.ok for envelope in envelopes)
    return gateway, fleet


class TestSubmission:
    def test_adapt_then_predict_roundtrip(self, source):
        gateway, fleet = adapted_gateway(source, n_shards=2)
        probe = np.random.default_rng(3).normal(size=(8, 4))
        envelope = gateway.submit(PredictRequest("user_00", probe))
        assert envelope.ok and envelope.kind == "predict"
        assert envelope.payload["model"] == "adapted"
        np.testing.assert_array_equal(
            envelope.payload["prediction"], gateway.predict("user_00", probe)
        )
        gateway.close()

    def test_unadapted_target_falls_back_to_source(self, source):
        gateway = build_gateway(source)
        probe = np.random.default_rng(4).normal(size=(6, 4))
        envelope = gateway.submit(PredictRequest("stranger", probe))
        assert envelope.ok and envelope.payload["model"] == "source"
        gateway.close()

    def test_strict_predict_yields_error_envelope(self, source):
        gateway = build_gateway(source)
        envelope = gateway.submit(
            PredictRequest("stranger", np.zeros((4, 4)), strict=True)
        )
        assert not envelope.ok
        assert envelope.error["type"] == "KeyError"
        assert "never adapted" in envelope.error["message"]
        gateway.close()

    def test_one_bad_request_does_not_poison_the_batch(self, source):
        gateway, fleet = adapted_gateway(source)
        probe = np.random.default_rng(5).normal(size=(8, 4))
        envelopes = gateway.submit_many(
            [
                PredictRequest("user_00", probe),
                PredictRequest("stranger", probe, strict=True),
                PredictRequest("user_01", probe),
            ]
        )
        assert [envelope.ok for envelope in envelopes] == [True, False, True]
        gateway.close()

    def test_submit_async_returns_future_envelope(self, source):
        gateway, fleet = adapted_gateway(source)
        probe = np.random.default_rng(6).normal(size=(8, 4))
        future = gateway.submit_async(PredictRequest("user_00", probe))
        envelope = future.result(timeout=30)
        assert isinstance(envelope, Envelope) and envelope.ok
        gateway.close()

    def test_adapt_reports_survive_and_merge_across_shards(self, source):
        gateway, fleet = adapted_gateway(source, n_shards=3)
        envelope = gateway.submit(ReportRequest())
        assert envelope.ok
        assert sorted(envelope.payload["reports"]) == sorted(fleet)
        single = gateway.submit(ReportRequest("user_01"))
        assert single.ok and single.payload["report"]["target_id"] == "user_01"
        assert single.payload["shard"] == gateway.shard_for("user_01")
        gateway.close()

    def test_stream_requests_reach_streaming_shards(self, source):
        gateway = build_gateway(source, service_options={"min_adapt_events": 16})
        batch = np.random.default_rng(7).normal(size=(8, 4))
        envelope = gateway.submit(StreamRequest("walker", batch))
        assert envelope.ok and envelope.payload["event"]["action"] == "buffered"
        envelope = gateway.submit(StreamRequest("walker", batch + 0.1))
        assert envelope.payload["event"]["action"] in ("cold_adapt", "adapt_failed")
        assert gateway.stream_stats("walker")["total_events"] == 16
        gateway.close()

    def test_gateway_without_calibration_rejects_streams(self, source):
        model, _ = source
        from repro.engine import create_strategy

        strategy = create_strategy("baseline", epochs=2, seed=0)
        gateway = Gateway(model, strategy=strategy)
        envelope = gateway.submit(StreamRequest("walker", np.zeros((4, 4))))
        assert not envelope.ok and envelope.error["type"] == "TypeError"
        gateway.close()

    def test_int_and_str_target_ids_are_one_target(self, source):
        gateway = build_gateway(source)
        data = make_targets(n_targets=1)["user_00"]
        assert gateway.submit(AdaptRequest(7, data)).ok
        assert gateway.report_for("7") is not None
        assert gateway.shard_for(7) == gateway.shard_for("7")
        probe = np.random.default_rng(8).normal(size=(8, 4))
        envelope = gateway.submit(PredictRequest("7", probe, strict=True))
        assert envelope.ok and envelope.payload["model"] == "adapted"
        gateway.close()


def bursty_requests(rng, n_bursts=40):
    """A bursty multi-target workload: mixed sizes, duplicates, fallbacks."""
    requests = []
    for burst in range(n_bursts):
        target = f"user_{burst % 6:02d}"  # user_04/05 never adapted
        rows = (1, 4, 13, 300)[burst % 4]  # includes >= batch_size payloads
        inputs = rng.normal(size=(rows, 4))
        requests.append(PredictRequest(target, inputs))
        if burst % 3 == 0:  # duplicate-target burst: byte-identical payload
            requests.append(PredictRequest(target, inputs.copy()))
    return requests


class TestMicroBatching:
    @pytest.mark.parametrize("mode", ["stack", "dedup", "off"])
    def test_coalesced_bitwise_equal_to_per_request_submits(self, source, mode):
        gateway, fleet = adapted_gateway(
            source,
            n_shards=2,
            max_cached_models=3,  # user_00 evicted: source-fallback traffic too
            batch_policy=BatchPolicy(mode=mode),
        )
        requests = bursty_requests(np.random.default_rng(9))
        envelopes = gateway.submit_many(requests)
        assert all(envelope.ok for envelope in envelopes)
        for request, envelope in zip(requests, envelopes):
            single = gateway.submit(PredictRequest(request.target_id, request.inputs))
            np.testing.assert_array_equal(
                envelope.payload["prediction"], single.payload["prediction"]
            )
        if mode != "off":
            assert any(envelope.payload["coalesced"] for envelope in envelopes)
        gateway.close()

    @pytest.mark.parametrize("mode", ["stack", "dedup", "off"])
    def test_gateway_matches_legacy_service_predict(self, source, mode):
        gateway, fleet = adapted_gateway(source, batch_policy=BatchPolicy(mode=mode))
        requests = bursty_requests(np.random.default_rng(10), n_bursts=16)
        envelopes = gateway.submit_many(requests)
        for request, envelope in zip(requests, envelopes):
            legacy = gateway.predict(request.target_id, request.inputs)
            if mode == "stack" and len(request.inputs) < request.batch_size:
                # The tiled executor fixes the forward shape; vs the
                # request-shaped legacy path that can cost an ulp.
                np.testing.assert_allclose(
                    envelope.payload["prediction"], legacy, rtol=1e-12, atol=1e-12
                )
            else:
                np.testing.assert_array_equal(envelope.payload["prediction"], legacy)
        gateway.close()

    def test_duplicate_payloads_computed_once_and_fanned_out(self, source):
        gateway, fleet = adapted_gateway(source, batch_policy=BatchPolicy(mode="dedup"))
        probe = np.random.default_rng(11).normal(size=(8, 4))
        requests = [PredictRequest("user_00", probe.copy()) for _ in range(6)]
        envelopes = gateway.submit_many(requests)
        assert all(envelope.ok for envelope in envelopes)
        assert sum(envelope.payload["coalesced"] for envelope in envelopes) == 6
        reference = gateway.predict("user_00", probe)
        for envelope in envelopes:
            np.testing.assert_array_equal(envelope.payload["prediction"], reference)
        gateway.close()

    def test_mixed_batch_sizes_never_share_a_group(self, source):
        gateway, fleet = adapted_gateway(source)
        probe = np.random.default_rng(12).normal(size=(20, 4))
        requests = [
            PredictRequest("user_00", probe, batch_size=8),
            PredictRequest("user_00", probe.copy(), batch_size=256),
        ]
        envelopes = gateway.submit_many(requests)
        for request, envelope in zip(requests, envelopes):
            single = gateway.submit(request)
            np.testing.assert_array_equal(
                envelope.payload["prediction"], single.payload["prediction"]
            )
        # The batch_size=8 request is chunk-executed (20 >= 8): that stays
        # on the legacy path and must match the service bit for bit.
        np.testing.assert_array_equal(
            envelopes[0].payload["prediction"],
            gateway.predict("user_00", probe, batch_size=8),
        )
        gateway.close()

    def test_tiled_execution_is_packing_invariant(self, source):
        """The same request answered alone, in a small burst, and in a large
        burst must come back bit-identical every time."""
        gateway, fleet = adapted_gateway(source)
        rng = np.random.default_rng(13)
        probe = PredictRequest("user_01", rng.normal(size=(7, 4)))
        alone = gateway.submit(probe).payload["prediction"]
        small = gateway.submit_many(
            [probe, PredictRequest("user_01", rng.normal(size=(3, 4)))]
        )[0].payload["prediction"]
        noise = [
            PredictRequest("user_01", rng.normal(size=(rows, 4)))
            for rows in (1, 5, 30, 64, 2)
        ]
        large = gateway.submit_many(noise[:2] + [probe] + noise[2:])[2].payload[
            "prediction"
        ]
        np.testing.assert_array_equal(alone, small)
        np.testing.assert_array_equal(alone, large)
        gateway.close()

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            BatchPolicy(mode="telepathy")
        with pytest.raises(ValueError, match="tile_rows"):
            BatchPolicy(tile_rows=0)

    def test_forward_failure_is_attributed_not_batch_fatal(self, source):
        """A payload whose forward raises (wrong feature width) must come
        back as its own error envelope; coalesced neighbours still answer."""
        gateway, fleet = adapted_gateway(source)
        rng = np.random.default_rng(14)
        good_a = PredictRequest("user_00", rng.normal(size=(6, 4)))
        bad = PredictRequest("user_00", rng.normal(size=(6, 2)))  # 2 of 4 features
        good_b = PredictRequest("user_01", rng.normal(size=(6, 4)))
        envelopes = gateway.submit_many([good_a, bad, good_b])
        assert [envelope.ok for envelope in envelopes] == [True, False, True]
        assert envelopes[1].error["type"] in ("ValueError", "AssertionError")
        for request, envelope in ((good_a, envelopes[0]), (good_b, envelopes[2])):
            single = gateway.submit(PredictRequest(request.target_id, request.inputs))
            np.testing.assert_array_equal(
                envelope.payload["prediction"], single.payload["prediction"]
            )
        gateway.close()


class TestSharding:
    def test_placement_is_deterministic_across_gateways(self, source):
        targets = [f"t{i}" for i in range(64)]
        first = build_gateway(source, n_shards=4)
        second = build_gateway(source, n_shards=4)
        assert [first.shard_for(t) for t in targets] == [
            second.shard_for(t) for t in targets
        ]
        # All shards get some share of a reasonable fleet.
        assert len({first.shard_for(t) for t in targets}) == 4
        first.close()
        second.close()

    def test_growing_the_shard_count_only_moves_targets_to_new_shards(self, source):
        targets = [f"t{i}" for i in range(128)]
        small = build_gateway(source, n_shards=3)
        large = build_gateway(source, n_shards=5)
        moved = 0
        for target in targets:
            before, after = small.shard_for(target), large.shard_for(target)
            if before != after:
                assert after >= 3  # rendezvous: never reshuffled among old shards
                moved += 1
        assert 0 < moved < len(targets)
        small.close()
        large.close()

    def test_adaptation_is_bit_identical_whatever_the_shard_count(self, source):
        fleet = make_targets(n_targets=4)
        probe = np.random.default_rng(13).normal(size=(8, 4))
        outputs = []
        for n_shards in (1, 3):
            gateway = build_gateway(source, n_shards=n_shards)
            assert all(
                e.ok
                for e in gateway.submit_many(
                    [AdaptRequest(name, data) for name, data in fleet.items()]
                )
            )
            outputs.append({name: gateway.predict(name, probe) for name in fleet})
            gateway.close()
        for name in fleet:
            np.testing.assert_array_equal(outputs[0][name], outputs[1][name])

    def test_invalid_shard_parameters_rejected(self, source):
        with pytest.raises(ValueError, match="n_shards"):
            build_gateway(source, n_shards=0)
        with pytest.raises(ValueError, match="shard_workers"):
            build_gateway(source, shard_workers=0)


class TestFromTask:
    def test_from_task_resolves_registries_and_serves(self):
        gateway = Gateway.from_task(
            "housing", scheme="baseline", scale="tiny", seed=0, n_shards=2
        )
        from repro.experiments import get_bundle

        bundle = get_bundle("housing", "tiny", 0)
        scenario = bundle.task.scenarios[0]
        envelope = gateway.submit(
            AdaptRequest(scenario.name, scenario.adaptation.inputs)
        )
        assert envelope.ok and envelope.payload["report"]["scheme"] == "baseline"
        predict = gateway.submit(
            PredictRequest(scenario.name, scenario.adaptation.inputs[:8])
        )
        assert predict.ok and predict.payload["model"] == "adapted"
        gateway.close()

    def test_from_task_unknown_names_raise(self):
        with pytest.raises(ValueError, match="unknown task"):
            Gateway.from_task("nonsense", scale="tiny")
        with pytest.raises(ValueError, match="unknown adaptation scheme"):
            Gateway.from_task("housing", scheme="wishful", scale="tiny")
