"""Shared helpers for the serving-gateway tests.

The canonical source-model/fleet fixtures live in
``tests/runtime/test_service.py`` (the service the gateway wraps); this
module re-exports them so the serve suite can never silently diverge from
the runtime suite's recipe.  Loaded by file path because the test tree is
not a package (pytest rootdir-inserts each test directory separately).
"""

import importlib.util
from pathlib import Path

_path = Path(__file__).resolve().parent.parent / "runtime" / "test_service.py"
_spec = importlib.util.spec_from_file_location("_runtime_service_fixtures", _path)
_module = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_module)

fast_config = _module.fast_config
make_source = _module.make_source
make_targets = _module.make_targets

__all__ = ["fast_config", "make_source", "make_targets"]
