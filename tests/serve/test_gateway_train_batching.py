"""Gateway-level ``train_batching``: envelope identity and rejection.

``submit_many`` bursts mixing adapt, stream and predict traffic — with
duplicate target ids forcing wave splits — must return envelopes
identical to the serial gateway for any stacking factor and for either
executor.  A gateway configured with an unstackable strategy must refuse
to construct when ``train_batching`` is above one.
"""

import numpy as np
import pytest
from engine.scheme_oracle_fixture import build_fixture, fast_config

from repro.engine.strategy import AdaptationStrategy
from repro.serve.gateway import Gateway
from repro.serve.protocol import AdaptRequest, PredictRequest, StreamRequest

N_TARGETS = 6


@pytest.fixture(scope="module")
def fixture():
    return build_fixture()


@pytest.fixture(scope="module")
def traffic():
    rng = np.random.default_rng(23)
    return {
        "adapt": {f"a{k}": rng.normal(loc=0.3, size=(60, 4)) for k in range(N_TARGETS)},
        "stream": [
            {f"s{k}": rng.normal(loc=0.3 + 0.2 * r, size=(12, 4)) for k in range(N_TARGETS)}
            for r in range(5)
        ],
        "probe": rng.normal(size=(9, 4)),
    }


def envelope_key(envelope):
    payload = envelope.payload
    if payload is not None:
        payload = dict(payload)
        for field in ("report", "event"):
            if payload.get(field):
                payload[field] = {
                    k: v for k, v in payload[field].items() if k != "duration_seconds"
                }
        if "prediction" in payload:
            payload["prediction"] = np.asarray(payload["prediction"]).tobytes()
    return (envelope.ok, envelope.kind, envelope.target_id, str(payload), str(envelope.error))


def run_gateway(fixture, traffic, train_batching=1, executor="thread"):
    gateway = Gateway(
        fixture["model"],
        fixture["calibration"],
        config=fast_config(),
        n_shards=2,
        shard_workers=2,
        executor=executor,
        train_batching=train_batching,
        service_options={"min_adapt_events": 24, "readapt_budget": 24},
        max_cached_models=16,
    )
    keys = []
    try:
        burst = [AdaptRequest(tid, data) for tid, data in traffic["adapt"].items()]
        # Duplicate id inside one burst: the stacker must split it off into
        # a later wave rather than put the same target twice in one stack.
        burst.append(AdaptRequest("a0", traffic["adapt"]["a0"]))
        keys.append([envelope_key(e) for e in gateway.submit_many(burst)])
        for batches in traffic["stream"]:
            requests = [StreamRequest(tid, batch) for tid, batch in batches.items()]
            requests.append(StreamRequest("s1", batches["s1"]))
            requests.append(PredictRequest("a1", traffic["probe"]))
            keys.append([envelope_key(e) for e in gateway.submit_many(requests)])
    finally:
        gateway.close()
    return keys


@pytest.fixture(scope="module")
def serial(fixture, traffic):
    return run_gateway(fixture, traffic)


@pytest.mark.parametrize(
    "train_batching,executor",
    [(3, "thread"), (6, "thread"), (3, "process")],
    ids=["tb3-thread", "tb6-thread", "tb3-process"],
)
def test_gateway_stacked_envelopes_identical(fixture, traffic, serial, train_batching, executor):
    assert run_gateway(fixture, traffic, train_batching, executor) == serial


def test_gateway_rejects_unstackable_strategy_at_construction(fixture):
    class NoStack(AdaptationStrategy):
        name = "nostack"

    with pytest.raises(ValueError, match="nostack"):
        Gateway(
            fixture["model"],
            fixture["calibration"],
            config=fast_config(),
            strategy=NoStack(),
            train_batching=4,
        )
