"""Tests for the typed request/response protocol and its JSON wire codec."""

import json

import numpy as np
import pytest

from repro.serve import (
    SCHEMA,
    AdaptRequest,
    Envelope,
    PredictRequest,
    ReportRequest,
    StreamRequest,
    decode_request,
    encode_request,
)


class TestRequests:
    def test_target_ids_are_canonicalized(self):
        block = [[0.1, 0.2]]
        assert AdaptRequest(7, block).target_id == "7"
        assert PredictRequest(7, block).target_id == AdaptRequest("7", block).target_id
        assert StreamRequest(3.5, block).target_id == "3.5"
        assert ReportRequest(42).target_id == "42"
        assert ReportRequest().target_id is None

    def test_inputs_coerced_to_float64_arrays(self):
        request = PredictRequest("u", [[1, 2], [3, 4]])
        assert isinstance(request.inputs, np.ndarray)
        assert request.inputs.dtype == np.float64
        assert request.inputs.shape == (2, 2)

    @pytest.mark.parametrize("bad", [[], [0.1, 0.2]])
    def test_degenerate_sample_blocks_rejected(self, bad):
        with pytest.raises(ValueError, match="non-empty array"):
            PredictRequest("u", bad)

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError, match="batch_size must be at least 1"):
            PredictRequest("u", [[0.0]], batch_size=0)


class TestCodec:
    def test_roundtrip_every_kind(self):
        block = [[0.5, -0.5], [1.5, 2.5]]
        requests = [
            AdaptRequest("u1", block, seed=7),
            PredictRequest(9, block, batch_size=64, strict=True),
            StreamRequest("u1", block),
            ReportRequest("u1"),
            ReportRequest(),
        ]
        for request in requests:
            wire = encode_request(request)
            assert wire["kind"] == request.kind
            json.dumps(wire)  # wire form must be pure JSON builtins
            rebuilt = decode_request(wire)
            assert type(rebuilt) is type(request)
            assert rebuilt.target_id == request.target_id
            for name in ("inputs", "batch"):
                if hasattr(request, name):
                    np.testing.assert_array_equal(
                        getattr(rebuilt, name), getattr(request, name)
                    )
        assert decode_request(encode_request(PredictRequest(9, block))).strict is False

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown request kind"):
            decode_request({"kind": "teleport", "target_id": "u"})

    @pytest.mark.parametrize("kind", [["adapt"], {"k": 1}, 7, None])
    def test_non_string_kind_rejected_as_value_error(self, kind):
        with pytest.raises(ValueError, match="kind must be a string"):
            decode_request({"kind": kind, "target_id": "u"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            decode_request({"kind": "report", "target_id": "u", "verbose": True})

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            decode_request(["kind", "adapt"])


class TestEnvelope:
    def test_success_roundtrip_and_schema_stamp(self):
        envelope = Envelope.success(
            "predict",
            "u1",
            {"prediction": np.array([[1.0], [2.0]]), "model": "adapted"},
            duration_seconds=0.25,
        )
        assert envelope.schema == SCHEMA
        wire = envelope.to_dict()
        json.dumps(wire)  # numpy payload must be converted at the boundary
        rebuilt = Envelope.from_json(envelope.to_json())
        assert rebuilt.ok and rebuilt.kind == "predict" and rebuilt.target_id == "u1"
        assert rebuilt.schema == SCHEMA
        assert rebuilt.payload["prediction"] == [[1.0], [2.0]]
        assert rebuilt.duration_seconds == pytest.approx(0.25)

    def test_failure_carries_structured_error(self):
        envelope = Envelope.failure("adapt", "u2", KeyError("gone"))
        assert not envelope.ok
        assert envelope.error["type"] == "KeyError"
        assert "gone" in envelope.error["message"]
        rebuilt = Envelope.from_json(envelope.to_json())
        assert rebuilt.error == envelope.error and rebuilt.payload is None
