"""Gateway-level telemetry: the metrics request kind, request counters,
queue-depth accounting, batching instrumentation, and tracing wiring."""

import json

import numpy as np
import pytest

from repro.obs import Tracer, validate_snapshot
from repro.serve import (
    AdaptRequest,
    Gateway,
    MetricsRequest,
    PredictRequest,
    decode_request,
    encode_request,
)

from gateway_fixtures import fast_config, make_targets


def build_gateway(source, **kwargs):
    model, calibration = source
    kwargs.setdefault("config", fast_config())
    kwargs.setdefault("shard_workers", 2)
    return Gateway(model, calibration, **kwargs)


def adapted_gateway(source, n_targets=4, **kwargs):
    gateway = build_gateway(source, **kwargs)
    fleet = make_targets(n_targets=n_targets)
    envelopes = gateway.submit_many(
        [AdaptRequest(name, data) for name, data in fleet.items()]
    )
    assert all(envelope.ok for envelope in envelopes)
    return gateway, fleet


class TestMetricsRequest:
    def test_wire_roundtrip(self):
        for request in (MetricsRequest(), MetricsRequest(target_id="user_00")):
            line = json.dumps(encode_request(request))
            assert decode_request(json.loads(line)) == request

    def test_fleet_snapshot_via_request(self, source):
        gateway, fleet = adapted_gateway(source, n_shards=2)
        envelope = gateway.submit(MetricsRequest())
        assert envelope.ok and envelope.kind == "metrics"
        snapshot = envelope.payload["metrics"]
        validate_snapshot(snapshot)
        # Shard-scoped series are labeled with their shard index.
        shards = {
            entry["labels"]["shard"]
            for entry in snapshot["counters"]
            if entry["name"] == "service.adaptations"
        }
        assert shards == {"0", "1"}
        # The metrics request counts itself, but only after answering: the
        # snapshot it carries predates its own envelope.
        by_kind = {
            entry["labels"]["kind"]: entry["value"]
            for entry in snapshot["counters"]
            if entry["name"] == "serve.requests"
        }
        assert by_kind["adapt"] == len(fleet)
        assert "metrics" not in by_kind
        assert gateway.metrics.counter_value("serve.requests", kind="metrics") == 1
        gateway.close()

    def test_targeted_snapshot_narrows_to_owning_shard(self, source):
        gateway, fleet = adapted_gateway(source, n_shards=2)
        target = next(iter(fleet))
        envelope = gateway.submit(MetricsRequest(target_id=target))
        assert envelope.ok
        shard = envelope.payload["shard"]
        assert shard == gateway.shard_for(target)
        labels = {
            entry["labels"].get("shard")
            for entry in envelope.payload["metrics"]["counters"]
            if entry["name"].startswith("service.")
        }
        assert labels == {str(shard)}
        gateway.close()

    def test_wire_serving_of_metrics_kind(self, source):
        from repro.serve import serve_lines

        gateway = build_gateway(source)
        lines = iter(['{"kind": "metrics"}'])
        (envelope,) = list(serve_lines(gateway, lines))
        wire = json.loads(envelope.to_json())
        assert wire["ok"] is True
        validate_snapshot(wire["payload"]["metrics"])
        gateway.close()


class TestRequestCounters:
    def test_every_envelope_is_counted_by_kind(self, source):
        gateway, fleet = adapted_gateway(source, n_shards=2)
        probe = np.random.default_rng(11).normal(size=(8, 4))
        names = list(fleet)
        envelopes = gateway.submit_many(
            [PredictRequest(name, probe) for name in names]
            + [PredictRequest("stranger", probe, strict=True)]
        )
        assert sum(e.ok for e in envelopes) == len(names)
        metrics = gateway.metrics
        assert metrics.counter_value("serve.requests", kind="adapt") == len(fleet)
        assert metrics.counter_value("serve.requests", kind="predict") == len(names) + 1
        assert metrics.counter_value("serve.errors", kind="predict") == 1
        assert metrics.counter_value("serve.errors", kind="adapt") == 0
        gateway.close()

    def test_queue_depth_returns_to_zero_after_burst(self, source):
        gateway, fleet = adapted_gateway(source, n_shards=2)
        probe = np.random.default_rng(12).normal(size=(8, 4))
        gateway.submit_many(
            [PredictRequest(name, probe) for name in fleet for _ in range(3)]
        )
        for shard in range(gateway.n_shards):
            assert gateway.metrics.gauge_value("serve.queue_depth", shard=str(shard)) == 0
        waits = [
            entry
            for entry in gateway.metrics.snapshot()["histograms"]
            if entry["name"] == "serve.queue_wait_seconds"
        ]
        assert sum(entry["count"] for entry in waits) > 0
        gateway.close()

    def test_batching_counters_see_coalesced_burst(self, source):
        gateway, fleet = adapted_gateway(source, n_shards=1)
        probe = np.random.default_rng(13).normal(size=(8, 4))
        target = next(iter(fleet))
        # Four identical predicts: one forward, three dedup hits.
        gateway.submit_many([PredictRequest(target, probe) for _ in range(4)])
        metrics = gateway.metrics
        assert metrics.counter_total("batch.plans") >= 1
        assert metrics.counter_total("batch.dedup_hits") >= 3
        gateway.close()


class TestSnapshotAndToggle:
    def test_metrics_snapshot_merges_gateway_and_shards(self, source):
        gateway, fleet = adapted_gateway(source, n_shards=2)
        snapshot = gateway.metrics_snapshot()
        validate_snapshot(snapshot)
        names = {entry["name"] for entry in snapshot["counters"]}
        assert "serve.requests" in names  # gateway scope
        assert "service.adaptations" in names  # shard scope, labeled
        assert all(
            "shard" in entry["labels"]
            for entry in snapshot["counters"]
            if entry["name"] == "service.adaptations"
        )
        gateway.close()

    def test_set_metrics_enabled_false_stops_counting(self, source):
        gateway = build_gateway(source)
        gateway.set_metrics_enabled(False)
        fleet = make_targets(n_targets=1)
        envelopes = gateway.submit_many(
            [AdaptRequest(name, data) for name, data in fleet.items()]
        )
        assert all(envelope.ok for envelope in envelopes)
        snapshot = gateway.metrics_snapshot()
        assert snapshot["counters"] == []
        gateway.set_metrics_enabled(True)
        gateway.submit(MetricsRequest())
        assert gateway.metrics.counter_value("serve.requests", kind="metrics") == 1
        gateway.close()


class TestTracing:
    def test_gateway_traces_request_lifecycle(self, source):
        tracer = Tracer()
        gateway = build_gateway(source, tracer=tracer)
        fleet = make_targets(n_targets=2)
        gateway.submit_many([AdaptRequest(name, data) for name, data in fleet.items()])
        probe = np.random.default_rng(14).normal(size=(8, 4))
        gateway.submit(PredictRequest(next(iter(fleet)), probe))
        spans = tracer.spans
        roots = [span for span in spans if span["name"] == "request"]
        assert {span["kind"] for span in roots} == {"adapt", "predict"}
        assert len(roots) == 3
        adapt_roots = [span for span in roots if span["kind"] == "adapt"]
        engine = [span for span in spans if span["name"] == "engine"]
        assert len(engine) == len(adapt_roots)  # adapts carry training time
        by_id = {span["span_id"]: span for span in spans}
        for span in spans:
            if span["parent_id"] is not None:
                assert span["parent_id"] in by_id
        gateway.close()

    def test_trace_ids_stable_across_identical_runs(self, source):
        def run():
            tracer = Tracer()
            gateway = build_gateway(source, tracer=tracer)
            fleet = make_targets(n_targets=2)
            gateway.submit_many(
                [AdaptRequest(name, data) for name, data in fleet.items()]
            )
            gateway.close()
            return sorted(
                (span["trace_id"], span["span_id"], span["name"])
                for span in tracer.spans
            )

        assert run() == run()
