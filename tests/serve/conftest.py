"""Shared fixtures for the serving-gateway tests."""

import pytest

from gateway_fixtures import make_source


@pytest.fixture(scope="module")
def source():
    return make_source()
