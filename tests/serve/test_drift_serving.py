"""Drift-under-serving coverage: every scheme, through the Gateway.

The batch path of every scheme is pinned by the engine oracle tests; until
now only TASFAR had coverage for the *streaming* story — a drifting stream
arriving through the serving gateway must trigger warm re-adaptation and
end up no worse than re-adapting cold.  This module closes that gap for
every scheme in the strategy registry.
"""

import numpy as np
import pytest

import repro.nn as nn
from repro.data.base import TargetScenario
from repro.data.drift import make_drift_stream
from repro.engine import SourceResources, create_strategy, strategy_names
from repro.metrics import mae
from repro.runtime import AdaptationService
from repro.serve import Gateway, StreamRequest

from gateway_fixtures import fast_config, make_source


@pytest.fixture(scope="module")
def source():
    return make_source()


@pytest.fixture(scope="module")
def scenario():
    """A synthetic target whose label distribution has two clear regimes."""
    rng = np.random.default_rng(42)
    weights = np.array([1.0, -0.5, 0.25, 2.0])

    def block(n, seed):
        block_rng = np.random.default_rng(seed)
        inputs = block_rng.normal(loc=0.25, size=(n, 4))
        targets = inputs @ weights + 0.1 * block_rng.normal(size=n)
        return nn.ArrayDataset(inputs, targets)

    del rng
    return TargetScenario(name="drifter", adaptation=block(120, 1), test=block(60, 2))


def drifted_regime(scenario):
    """The upper-label half of the pooled samples — exactly the pool
    ``make_drift_stream`` drifts toward, used here as the post-drift eval set."""
    pooled = scenario.pooled()
    order = np.argsort(np.linalg.norm(pooled.targets, axis=1), kind="stable")
    upper = order[len(order) // 2 :]
    return pooled.inputs[upper], pooled.targets[upper]


def prepared_strategy(scheme, source):
    model, calibration = source
    rng = np.random.default_rng(0)
    weights = np.array([1.0, -0.5, 0.25, 2.0])
    inputs = rng.normal(size=(160, 4))
    targets = inputs @ weights + 0.1 * rng.normal(size=160)
    return create_strategy(scheme, config=fast_config(), epochs=3, seed=0).prepare(
        model,
        SourceResources(
            source_data=nn.ArrayDataset(inputs, targets), calibration=calibration
        ),
    )


@pytest.mark.parametrize("scheme", sorted(strategy_names()))
class TestDriftUnderServing:
    def test_gradual_drift_triggers_warm_readapt_and_matches_cold(
        self, scheme, source, scenario
    ):
        model, calibration = source
        strategy = prepared_strategy(scheme, source)
        stream = make_drift_stream(
            scenario, kind="gradual", n_steps=8, batch_size=16, seed=3
        )
        gateway = Gateway(
            model,
            calibration,
            config=fast_config(),
            strategy=strategy,
            n_shards=2,
            service_options={
                "min_adapt_events": 32,
                "readapt_budget": 48,
                "warm_epochs": 1,
            },
        )
        user = f"{scheme}-user"
        for batch in stream.batches:
            envelope = gateway.submit(StreamRequest(user, batch.inputs))
            assert envelope.ok, envelope.error

        stats = gateway.stream_stats(user)
        assert stats["cold_adaptations"] >= 1, f"{scheme}: never cold-adapted"
        assert stats["warm_adaptations"] >= 1, (
            f"{scheme}: the drifting stream never triggered a warm re-adaptation "
            f"({stats})"
        )
        report = gateway.report_for(user)
        assert report.extra["mode"] == "warm"
        assert report.scheme == scheme

        # Reconstruct the window the final (warm) re-adaptation trained on:
        # every batch ingested after the previous adaptation consumed the
        # buffer (the cap is far above this stream, so nothing was dropped).
        events = gateway.events_for(user)
        adapt_steps = [
            e.step for e in events if e.action in ("cold_adapt", "warm_adapt")
        ]
        window = np.concatenate(
            [
                stream.batches[step - 1].inputs
                for step in range(adapt_steps[-2] + 1, adapt_steps[-1] + 1)
            ],
            axis=0,
        )

        # Cold re-adaptation on the same window, from the pristine source
        # model, with the scheme's full cold schedule.
        cold_service = AdaptationService(
            model, calibration, config=fast_config(), strategy=strategy
        )
        cold_service.adapt("cold", window)

        eval_inputs, eval_targets = drifted_regime(scenario)
        warm_mae = mae(gateway.predict(user, eval_inputs), eval_targets)
        cold_mae = mae(cold_service.predict("cold", eval_inputs), eval_targets)
        model.eval()
        source_mae = mae(model.forward(eval_inputs), eval_targets)
        # "No worse than cold": the same quality bar the streaming benchmark
        # holds warm starts to (benchmarks/test_bench_streaming.py), with a
        # tighter band — the warm/cold gap must be small against the
        # adaptation headroom the source model leaves.
        noise_band = 0.10 * max(source_mae, cold_mae)
        assert warm_mae <= cold_mae + noise_band, (
            f"{scheme}: warm re-adaptation MAE {warm_mae:.4f} worse than "
            f"cold re-adaptation MAE {cold_mae:.4f} beyond the noise band "
            f"{noise_band:.4f} (source MAE {source_mae:.4f})"
        )
        gateway.close()
