"""Hypothesis property tests for the serving wire codec.

Two properties every client can rely on:

* **round-trip identity** — any valid request survives
  ``encode_request``/``decode_request`` unchanged, and any envelope with a
  JSON payload survives ``to_json``/``from_json`` unchanged;
* **total decoding** — arbitrary junk (random text, random JSON values,
  random field soups) never raises anything but the documented decode
  error, :class:`ValueError` (``json.JSONDecodeError`` is one).
"""

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    AdaptRequest,
    Envelope,
    PredictRequest,
    ReportRequest,
    StreamRequest,
    decode_request,
    encode_request,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)

#: Non-empty 2-D float blocks as nested lists (the wire form of samples).
sample_blocks = st.integers(min_value=1, max_value=4).flatmap(
    lambda width: st.lists(
        st.lists(finite_floats, min_size=width, max_size=width), min_size=1, max_size=5
    )
)

target_ids = st.text(min_size=1, max_size=12)

requests = st.one_of(
    st.builds(
        AdaptRequest,
        target_id=target_ids,
        inputs=sample_blocks,
        seed=st.one_of(st.none(), st.integers(min_value=0, max_value=2**31)),
    ),
    st.builds(
        PredictRequest,
        target_id=target_ids,
        inputs=sample_blocks,
        batch_size=st.integers(min_value=1, max_value=512),
        strict=st.booleans(),
    ),
    st.builds(StreamRequest, target_id=target_ids, batch=sample_blocks),
    st.builds(ReportRequest, target_id=st.one_of(st.none(), target_ids)),
)

#: Arbitrary JSON values (the payload/error bodies an envelope may carry).
json_values = st.recursive(
    st.one_of(st.none(), st.booleans(), finite_floats, st.integers(
        min_value=-(2**53), max_value=2**53), st.text(max_size=8)),
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.text(max_size=8), children, max_size=3),
    ),
    max_leaves=10,
)

json_objects = st.dictionaries(st.text(max_size=8), json_values, max_size=4)

envelopes = st.builds(
    Envelope,
    ok=st.booleans(),
    kind=st.sampled_from(["adapt", "predict", "stream", "report", "invalid"]),
    target_id=st.one_of(st.none(), target_ids),
    payload=st.one_of(st.none(), json_objects),
    error=st.one_of(st.none(), json_objects),
    duration_seconds=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)


class TestRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(request=requests)
    def test_request_wire_round_trip_is_identity(self, request):
        clone = decode_request(json.loads(json.dumps(encode_request(request))))
        assert type(clone) is type(request)
        assert clone.kind == request.kind
        for name in request.__dataclass_fields__:
            original, restored = getattr(request, name), getattr(clone, name)
            if isinstance(original, np.ndarray):
                assert restored.shape == original.shape
                assert restored.dtype == original.dtype
                assert original.tobytes() == restored.tobytes()
            else:
                assert original == restored

    @settings(max_examples=80, deadline=None)
    @given(envelope=envelopes)
    def test_envelope_json_round_trip_is_identity(self, envelope):
        clone = Envelope.from_json(envelope.to_json())
        assert clone == envelope


class TestJunkNeverEscapesValueError:
    @settings(max_examples=120, deadline=None)
    @given(text=st.text(max_size=60))
    def test_envelope_from_json_raises_only_valueerror(self, text):
        try:
            envelope = Envelope.from_json(text)
        except ValueError:
            return  # the documented decode error (JSONDecodeError included)
        assert isinstance(envelope, Envelope)  # the rare valid accident

    @settings(max_examples=120, deadline=None)
    @given(value=json_values)
    def test_envelope_from_dict_raises_only_valueerror(self, value):
        try:
            envelope = Envelope.from_dict(value)
        except ValueError:
            return
        assert isinstance(envelope, Envelope)

    @settings(max_examples=120, deadline=None)
    @given(value=json_values)
    def test_decode_request_raises_only_valueerror_on_json_junk(self, value):
        try:
            request = decode_request(value)
        except ValueError:
            return
        assert request.kind in ("adapt", "predict", "stream", "report")

    @settings(max_examples=120, deadline=None)
    @given(
        fields=st.dictionaries(
            st.sampled_from(
                ["kind", "target_id", "inputs", "batch", "seed", "batch_size", "strict"]
            ),
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(min_value=-10, max_value=10),
                st.text(max_size=6),
                st.sampled_from(["adapt", "predict", "stream", "report"]),
                st.lists(st.one_of(finite_floats, st.text(max_size=3)), max_size=3),
                sample_blocks,
            ),
        )
    )
    def test_decode_request_raises_only_valueerror_on_field_soup(self, fields):
        """Plausible-looking request dictionaries with hostile field values."""
        try:
            request = decode_request(fields)
        except ValueError:
            return
        assert request.kind in ("adapt", "predict", "stream", "report")
