"""Metric correctness for the adaptation service, under concurrency.

The registry's numbers are only trustworthy if they reconcile *exactly*
with what the service actually did — under racing threads, LRU eviction
pressure, and process workers shipping deltas back across the pickle
boundary.  Each test derives the expected totals from the workload itself
and asserts equality, not approximation.
"""

import threading

import numpy as np
import pytest

from repro.obs import MetricsRegistry

from test_service import build_service, make_targets


@pytest.fixture(scope="module")
def source():
    from test_service import make_source

    return make_source()


def probe_inputs(seed=7, n=8):
    return np.random.default_rng(seed).normal(size=(n, 4))


class TestCacheAccounting:
    def test_hits_misses_evictions_reconcile_serially(self, source):
        service = build_service(source, max_cached_models=2)
        targets = make_targets(n_targets=4)
        names = list(targets)
        service.adapt_many(targets)  # serial: jobs=1
        probe = probe_inputs()
        for name in names:  # two evicted -> source fallback, two cached
            service.predict(name, probe)
        metrics = service.metrics
        assert metrics.counter_value("service.adaptations", mode="cold") == 4
        assert metrics.counter_value("service.cache.evictions", reason="capacity") == 2
        assert metrics.counter_value("service.cache.hits") == 2
        assert metrics.counter_value("service.cache.misses") == 2
        assert metrics.counter_value("service.cache.strict_misses") == 0

    def test_strict_miss_counted_separately(self, source):
        service = build_service(source)
        with pytest.raises(KeyError):
            service.predict("never_adapted", probe_inputs(), strict=True)
        assert service.metrics.counter_value("service.cache.strict_misses") == 1
        assert service.metrics.counter_value("service.cache.misses") == 0

    def test_explicit_evictions_labeled(self, source):
        service = build_service(source)
        targets = make_targets(n_targets=2)
        service.adapt_many(targets)
        assert service.evict() == list(targets)
        metrics = service.metrics
        assert metrics.counter_value("service.cache.evictions", reason="explicit") == 2
        assert metrics.counter_value("service.cache.evictions", reason="capacity") == 0

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_adapt_racing_predict_reconciles_exactly(self, source, executor):
        """adapt_many under eviction pressure, with predict hammering away.

        Every predict is either a hit or a miss — never lost, never double
        counted — and evictions match the cache-capacity arithmetic, no
        matter which threads (or processes) did the adapting.
        """
        n_targets, max_cached, n_predictors, predicts_each = 4, 2, 3, 25
        service = build_service(source, max_cached_models=max_cached)
        targets = make_targets(n_targets=n_targets)
        names = list(targets)
        probe = probe_inputs()
        stop = threading.Event()
        predict_counts = [0] * n_predictors
        errors = []

        def hammer(slot):
            while not stop.is_set() or predict_counts[slot] < predicts_each:
                try:
                    service.predict(names[predict_counts[slot] % n_targets], probe)
                except Exception as exc:  # pragma: no cover - fails the test
                    errors.append(exc)
                    return
                predict_counts[slot] += 1
                if predict_counts[slot] >= predicts_each and stop.is_set():
                    return

        predictors = [
            threading.Thread(target=hammer, args=(slot,)) for slot in range(n_predictors)
        ]
        for thread in predictors:
            thread.start()
        try:
            if executor == "thread":
                with pytest.warns(RuntimeWarning, match="thread executor"):
                    reports = service.adapt_many(targets, jobs=2, executor="thread")
            else:
                reports = service.adapt_many(targets, jobs=2, executor="process")
        finally:
            stop.set()
            for thread in predictors:
                thread.join()
        assert not errors
        assert len(reports) == n_targets

        metrics = service.metrics
        total_predicts = sum(predict_counts)
        hits = metrics.counter_value("service.cache.hits")
        misses = metrics.counter_value("service.cache.misses")
        assert hits + misses == total_predicts
        assert metrics.counter_value("service.adaptations", mode="cold") == n_targets
        assert metrics.counter_value("service.cache.evictions", reason="capacity") == (
            n_targets - max_cached
        )
        # Epoch accounting survives the executor boundary: process workers
        # count epochs in a worker-local registry and ship the delta home.
        expected_epochs = sum(len(report.losses) for report in reports.values())
        assert metrics.counter_total("engine.epochs") == expected_epochs
        assert metrics.counter_total("engine.runs") == n_targets


class TestEngineAccounting:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_epochs_match_report_losses(self, source, executor):
        service = build_service(source)
        targets = make_targets(n_targets=3)
        if executor == "thread":
            reports = service.adapt_many(targets)  # serial in-process path
        else:
            reports = service.adapt_many(targets, jobs=2, executor="process")
        expected_epochs = sum(len(report.losses) for report in reports.values())
        assert service.metrics.counter_total("engine.epochs") == expected_epochs
        assert service.metrics.counter_total("engine.runs") == len(targets)
        histogram = [
            entry
            for entry in service.metrics.snapshot()["histograms"]
            if entry["name"] == "engine.epoch_seconds"
        ]
        assert histogram and histogram[0]["count"] == expected_epochs

    def test_disabled_registry_stays_empty_and_results_match(self, source):
        quiet = build_service(source, metrics=MetricsRegistry(enabled=False))
        loud = build_service(source)
        targets = make_targets(n_targets=2)
        quiet_reports = quiet.adapt_many(targets)
        loud_reports = loud.adapt_many(targets)
        snapshot = quiet.metrics.snapshot()
        assert snapshot["counters"] == [] and snapshot["histograms"] == []
        for name in targets:  # telemetry must never change the numbers
            assert quiet_reports[name].losses == loud_reports[name].losses
