"""Cross-process determinism and crash-isolation for the worker pools.

The tentpole claim of the process executor is *bit-identity*: an adaptation
that ran inside a worker process must hand back the very same floats — losses,
parameters, density maps — as the same adaptation run in-process, for every
scheme in the registry.  These tests pin that claim, plus the crash semantics
(killed pools raise typed errors instead of hanging) and the honesty warning
on the GIL-bound thread executor.
"""

import warnings

import numpy as np
import pytest

import repro.nn as nn
from repro.engine import SourceResources, create_strategy, strategy_names
from repro.nn import model_digest, parameter_bytes
from repro.runtime import (
    EXECUTOR_KINDS,
    AdaptationService,
    AdaptationWorkerPool,
    WorkerCrashError,
)

from test_service import build_service, fast_config, make_source, make_targets


@pytest.fixture(scope="module")
def source():
    return make_source()


def prepared_strategy(scheme, source):
    model, calibration = source
    rng = np.random.default_rng(0)
    weights = np.array([1.0, -0.5, 0.25, 2.0])
    inputs = rng.normal(size=(160, 4))
    targets = inputs @ weights + 0.1 * rng.normal(size=160)
    return create_strategy(scheme, config=fast_config(), epochs=3, seed=0).prepare(
        model,
        SourceResources(
            source_data=nn.ArrayDataset(inputs, targets), calibration=calibration
        ),
    )


class TestExecutorSelection:
    def test_executor_kinds(self):
        assert EXECUTOR_KINDS == ("thread", "process")

    def test_unknown_executor_rejected(self, source):
        service = build_service(source)
        with pytest.raises(ValueError, match="executor"):
            service.adapt_many(make_targets(n_targets=2), jobs=2, executor="fiber")

    def test_default_is_thread_until_pool_attached(self, source):
        service = build_service(source)
        assert service.executor == "thread"
        service.use_process_workers(2)
        try:
            assert service.executor == "process"
        finally:
            service.close()
        assert service.executor == "thread"


@pytest.mark.parametrize("scheme", sorted(strategy_names()))
class TestProcessBitIdentity:
    """``adapt_many(jobs=4, executor="process")`` == serial, for all six schemes."""

    def test_process_pool_matches_serial_bitwise(self, scheme, source):
        model, calibration = source
        targets = make_targets(n_targets=4)

        serial = AdaptationService(
            model, calibration, fast_config(), strategy=prepared_strategy(scheme, source)
        )
        serial_reports = serial.adapt_many(targets, jobs=1)

        pooled = AdaptationService(
            model, calibration, fast_config(), strategy=prepared_strategy(scheme, source)
        )
        pooled_reports = pooled.adapt_many(targets, jobs=4, executor="process")

        assert list(serial_reports) == list(pooled_reports)
        probe = np.random.default_rng(0).normal(size=(16, 4))
        for name in targets:
            assert serial_reports[name].losses == pooled_reports[name].losses
            assert serial_reports[name].seed == pooled_reports[name].seed
            assert serial_reports[name].n_confident == pooled_reports[name].n_confident
            # Parameter-level identity, byte for byte, not allclose.
            assert parameter_bytes(serial.model_for(name)) == parameter_bytes(
                pooled.model_for(name)
            )
            np.testing.assert_array_equal(
                serial.predict(name, probe), pooled.predict(name, probe)
            )


class TestAttachedPool:
    def test_attached_pool_serves_adapt_and_matches_serial(self, source):
        targets = make_targets(n_targets=2)
        serial = build_service(source)
        serial_reports = serial.adapt_many(targets)

        service = build_service(source)
        service.use_process_workers(2)
        try:
            for name, data in targets.items():
                report = service.adapt(name, data)
                assert report.losses == serial_reports[name].losses
                assert model_digest(service.model_for(name)) == model_digest(
                    serial.model_for(name)
                )
        finally:
            service.close()

    def test_restart_kills_real_processes_and_results_survive(self, source):
        targets = make_targets(n_targets=1)
        name, data = next(iter(targets.items()))
        service = build_service(source)
        pool = service.use_process_workers(2)
        try:
            before = service.adapt(name, data)
            pids = pool.worker_pids()
            assert pids, "workers should be live after an adaptation"
            killed = service.restart_workers()
            assert killed == pids
            assert pool.worker_pids() != pids or not pool.worker_pids()
            after = service.adapt(name, data)
            assert after.losses == before.losses
        finally:
            service.close()

    def test_worker_errors_propagate_like_in_process_ones(self, source):
        # An input no sample of which clears the confidence threshold makes
        # TASFAR raise NoConfidentSamplesError; raised inside a worker
        # process it must surface to the caller unchanged, exactly like the
        # in-process path (the gateway turns it into an error envelope).
        from repro.core.adapter import NoConfidentSamplesError

        service = build_service(source)
        hopeless = np.full((12, 4), 1e6)
        with pytest.raises(NoConfidentSamplesError):
            service.adapt("doomed", hopeless)
        service.use_process_workers(2)
        try:
            with pytest.raises(NoConfidentSamplesError):
                service.adapt("doomed", hopeless)
        finally:
            service.close()


class TestPoolCrashSemantics:
    def test_submit_after_close_raises_typed_error(self, source):
        model, calibration = source
        strategy = prepared_strategy("tasfar", source)
        pool = AdaptationWorkerPool(1, model, strategy)
        pool.close()
        with pytest.raises(WorkerCrashError):
            pool.submit("t", np.zeros((4, 4)), 0)

    def test_killed_in_flight_future_raises_instead_of_hanging(self, source):
        model, calibration = source
        strategy = prepared_strategy("tasfar", source)
        data = make_targets(n_targets=1)["user_00"]
        pool = AdaptationWorkerPool(1, model, strategy)
        try:
            # Warm the pool so the worker exists, then bury it in work and
            # kill it: every outstanding future must resolve (queued ones
            # cancelled, the running one broken), all as WorkerCrashError.
            pool.adapt("warm", data, seed=0)
            futures = [pool.submit(f"t{i}", data, seed=i) for i in range(6)]
            pool.restart()
            failures = 0
            for future in futures:
                try:
                    pool.collect(future)
                except WorkerCrashError:
                    failures += 1
            assert failures > 0, "restart with queued work should break some futures"
            # The respawned pool serves the same request to the same bits.
            report, _ = pool.adapt("warm", data, seed=0)
            assert report.target_id == "warm"
        finally:
            pool.close()

    def test_invalid_worker_count_rejected(self, source):
        model, calibration = source
        with pytest.raises(ValueError):
            AdaptationWorkerPool(0, model, prepared_strategy("tasfar", source))


class TestThreadExecutorWarning:
    def test_thread_executor_warns_once_per_service(self, source):
        service = build_service(source)
        targets = make_targets(n_targets=2)
        with pytest.warns(RuntimeWarning, match="no speedup"):
            service.adapt_many(targets, jobs=2, executor="thread")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            service.adapt_many(targets, jobs=2, executor="thread")

    def test_serial_and_process_paths_do_not_warn(self, source):
        service = build_service(source)
        targets = make_targets(n_targets=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            service.adapt_many(targets, jobs=1)
            service.adapt_many(targets, jobs=2, executor="process")
