"""Crash consistency for the snapshot tier, against real processes and signals.

The durability claim of :class:`~repro.runtime.SnapshotStore` is that a
writer killed at *any* point mid-spill can never leave a torn snapshot under
the final name: a reader afterwards sees either the previous complete
snapshot or a clean miss, and the only debris is a temp file that the next
store opened on the directory garbage-collects.  In-process tests cannot
fake a real ``SIGKILL`` between ``fsync`` and ``rename``, so these spawn a
writer subprocess, stall it exactly there, and kill it for real.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.runtime import SnapshotStore

REPO = Path(__file__).resolve().parent.parent.parent

#: A writer that optionally lays down a good snapshot, then starts a second
#: spill and stalls right after fsync — after the marker prints, the temp
#: file exists, the data is durable in it, but the atomic rename has NOT
#: happened.  Killing it there is the worst legal crash point.
WRITER = """
import os, sys, time
from repro.runtime.snapshots import SnapshotStore

root, with_old = sys.argv[1], sys.argv[2] == "old"
store = SnapshotStore(root)
if with_old:
    store.save("t", {"report": {"phase": "old"}, "weights": [], "stream": None})
real_fsync = os.fsync
def stalling_fsync(fd):
    real_fsync(fd)
    print("MID-SPILL", flush=True)
    time.sleep(120)
os.fsync = stalling_fsync
store.save("t", {"report": {"phase": "new"}, "weights": [], "stream": None})
print("DONE", flush=True)
"""


def spawn_writer(root: Path, with_old: bool) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.Popen(
        [sys.executable, "-c", WRITER, str(root), "old" if with_old else "fresh"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )


def wait_for_marker(proc: subprocess.Popen, marker: str, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if marker in line:
            return
    proc.kill()
    pytest.fail(f"writer never reached the {marker} point")


@pytest.mark.parametrize("with_old", [True, False], ids=["over_old_snapshot", "first_spill"])
def test_writer_killed_mid_spill_never_leaves_a_torn_snapshot(tmp_path, with_old):
    proc = spawn_writer(tmp_path, with_old)
    try:
        wait_for_marker(proc, "MID-SPILL")
        # The writer is parked between fsync and rename: its temp file is on
        # disk, the final name is not (or still holds the old document).
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()

    leftovers = list(tmp_path.glob(".*.tmp"))
    assert leftovers, "the killed writer must leave its temp file behind"

    # A store that skips GC (reading the directory cold, as any concurrent
    # reader would) sees old-or-nothing, never the half-written new state.
    reader = SnapshotStore.__new__(SnapshotStore)
    reader.root = tmp_path
    payload = reader.load("t")
    if with_old:
        assert payload is not None
        assert payload["report"]["phase"] == "old"
    else:
        assert payload is None

    # The next store opened on the directory sweeps the debris and still
    # serves the same old-or-nothing answer.
    reopened = SnapshotStore(tmp_path)
    assert reopened.collected_temp_files == len(leftovers)
    assert list(tmp_path.glob(".*.tmp")) == []
    if with_old:
        assert reopened.load("t")["report"]["phase"] == "old"
    else:
        assert reopened.load("t") is None


def test_uninterrupted_writer_lands_the_new_snapshot(tmp_path):
    """Control: without the kill, the same writer completes the replacement."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    script = WRITER.replace("time.sleep(120)", "pass")
    done = subprocess.run(
        [sys.executable, "-c", script, str(tmp_path), "old"],
        capture_output=True,
        env=env,
        text=True,
        timeout=120,
    )
    assert done.returncode == 0, done.stderr
    assert "DONE" in done.stdout
    store = SnapshotStore(tmp_path)
    assert store.collected_temp_files == 0
    assert store.load("t")["report"]["phase"] == "new"


def test_interrupted_save_unlinks_its_temp_file(tmp_path):
    """In-process crash point: an exception inside save leaves no debris."""
    store = SnapshotStore(tmp_path)
    real_fsync = os.fsync

    def failing_fsync(fd):
        raise OSError("disk on fire")

    os.fsync = failing_fsync
    try:
        with pytest.raises(OSError, match="disk on fire"):
            store.save("t", {"report": {}, "weights": [], "stream": None})
    finally:
        os.fsync = real_fsync
    assert list(tmp_path.glob(".*.tmp")) == []
    assert store.load("t") is None
