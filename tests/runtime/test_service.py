"""Tests for the multi-target AdaptationService."""

import numpy as np
import pytest

import repro.nn as nn
from repro.core import Tasfar, TasfarConfig
from repro.runtime import AdaptationReport, AdaptationService


def make_source(seed=0, n_source=160):
    """A small trained source model plus its calibration."""
    rng = np.random.default_rng(seed)
    weights = np.array([1.0, -0.5, 0.25, 2.0])
    inputs = rng.normal(size=(n_source, 4))
    targets = inputs @ weights + 0.1 * rng.normal(size=n_source)
    model = nn.build_mlp(4, 1, hidden_dims=(16, 8), dropout=0.2, seed=seed)
    trainer = nn.Trainer(model, lr=3e-3)
    trainer.fit(nn.ArrayDataset(inputs, targets), epochs=15, batch_size=32, rng=rng)
    config = fast_config()
    calibration = Tasfar(config).calibrate_on_source(model, inputs, targets)
    return model, calibration


def fast_config():
    return TasfarConfig(
        n_mc_samples=8,
        n_segments=5,
        adaptation_epochs=3,
        min_adaptation_epochs=1,
        early_stop=False,
        seed=0,
    )


def make_targets(n_targets=4, n_samples=40, seed=100):
    """Per-target input sets with a mild per-target shift."""
    targets = {}
    for index in range(n_targets):
        rng = np.random.default_rng(seed + index)
        shift = 0.2 * index
        targets[f"user_{index:02d}"] = rng.normal(loc=shift, size=(n_samples, 4))
    return targets


@pytest.fixture(scope="module")
def source():
    return make_source()


def build_service(source, **kwargs):
    model, calibration = source
    kwargs.setdefault("config", fast_config())
    return AdaptationService(model, calibration, **kwargs)


class TestParallelEqualsSerial:
    def test_parallel_adapt_matches_serial_bitwise(self, source):
        targets = make_targets(n_targets=5)
        serial = build_service(source)
        serial_reports = serial.adapt_many(targets, jobs=1)
        parallel = build_service(source)
        # The GIL-bound thread executor is still supported (and must stay
        # bit-identical); it just warns once that it buys no speedup.
        with pytest.warns(RuntimeWarning, match="thread executor"):
            parallel_reports = parallel.adapt_many(targets, jobs=4)

        assert list(serial_reports) == list(parallel_reports)
        probe = np.random.default_rng(0).normal(size=(16, 4))
        for name in targets:
            assert serial_reports[name].losses == parallel_reports[name].losses
            assert serial_reports[name].seed == parallel_reports[name].seed
            assert serial_reports[name].n_confident == parallel_reports[name].n_confident
            np.testing.assert_array_equal(
                serial.predict(name, probe), parallel.predict(name, probe)
            )

    def test_adaptation_order_does_not_matter(self, source):
        targets = make_targets(n_targets=3)
        forward = build_service(source)
        for name, data in targets.items():
            forward.adapt(name, data)
        backward = build_service(source)
        for name, data in reversed(list(targets.items())):
            backward.adapt(name, data)
        probe = np.random.default_rng(1).normal(size=(8, 4))
        for name in targets:
            assert forward.report_for(name).losses == backward.report_for(name).losses
            np.testing.assert_array_equal(
                forward.predict(name, probe), backward.predict(name, probe)
            )

    def test_adapt_is_idempotent(self, source):
        service = build_service(source)
        data = make_targets(n_targets=1)["user_00"]
        first = service.adapt("user_00", data)
        second = service.adapt("user_00", data)
        assert first.losses == second.losses
        assert first.seed == second.seed


class TestCacheEviction:
    def test_lru_eviction_keeps_reports(self, source):
        service = build_service(source, max_cached_models=2)
        targets = make_targets(n_targets=4)
        service.adapt_many(targets)
        names = list(targets)
        assert service.cached_targets == names[-2:]
        assert service.n_adapted == 4
        for name in names[:2]:
            assert service.model_for(name) is None
            assert service.report_for(name) is not None

    def test_lookup_refreshes_lru_order(self, source):
        service = build_service(source, max_cached_models=2)
        targets = make_targets(n_targets=3)
        names = list(targets)
        service.adapt(names[0], targets[names[0]])
        service.adapt(names[1], targets[names[1]])
        assert service.model_for(names[0]) is not None  # touch: now most recent
        service.adapt(names[2], targets[names[2]])
        assert service.model_for(names[1]) is None
        assert service.model_for(names[0]) is not None

    def test_evicted_target_falls_back_to_source_predictions(self, source):
        model, _ = source
        service = build_service(source, max_cached_models=1)
        targets = make_targets(n_targets=2)
        service.adapt_many(targets)
        probe = np.random.default_rng(2).normal(size=(8, 4))
        model.eval()
        np.testing.assert_array_equal(service.predict("user_00", probe), model.forward(probe))
        assert not np.array_equal(service.predict("user_01", probe), model.forward(probe))

    def test_invalid_capacity_rejected(self, source):
        with pytest.raises(ValueError):
            build_service(source, max_cached_models=0)


class TestStrictLookups:
    def test_model_for_required_distinguishes_never_adapted(self, source):
        service = build_service(source)
        with pytest.raises(KeyError, match="never adapted"):
            service.model_for("ghost", required=True)

    def test_model_for_required_distinguishes_evicted(self, source):
        service = build_service(source, max_cached_models=1)
        targets = make_targets(n_targets=2)
        service.adapt_many(targets)
        with pytest.raises(KeyError, match="evicted from the LRU cache"):
            service.model_for("user_00", required=True)
        # The message also names the capacity so the fix is obvious.
        with pytest.raises(KeyError, match="max_cached_models=1"):
            service.model_for("user_00", required=True)

    def test_predict_strict_raises_instead_of_falling_back(self, source):
        service = build_service(source, max_cached_models=1)
        targets = make_targets(n_targets=2)
        service.adapt_many(targets)
        probe = np.random.default_rng(3).normal(size=(4, 4))
        with pytest.raises(KeyError, match="never adapted"):
            service.predict("ghost", probe, strict=True)
        with pytest.raises(KeyError, match="evicted"):
            service.predict("user_00", probe, strict=True)
        # Non-strict keeps the documented source-model fallback.
        assert service.predict("user_00", probe).shape == (4, 1)


class TestReports:
    def test_report_json_roundtrip(self, source):
        service = build_service(source)
        report = service.adapt("user_00", make_targets(n_targets=1)["user_00"])
        restored = AdaptationReport.from_json(report.to_json())
        assert restored == report

    def test_report_contents(self, source):
        service = build_service(source)
        data = make_targets(n_targets=1)["user_00"]
        report = service.adapt("user_00", data)
        assert report.target_id == "user_00"
        assert report.n_samples == len(data)
        assert report.n_confident + report.n_uncertain == len(data)
        assert report.n_training_samples > 0
        assert len(report.losses) >= 1
        assert report.duration_seconds > 0
        assert report.density_map_shape

    def test_target_seed_is_stable_and_distinct(self, source):
        service = build_service(source)
        again = build_service(source)
        assert service.target_seed("user_00") == again.target_seed("user_00")
        assert service.target_seed("user_00") != service.target_seed("user_01")

    def test_base_seed_changes_target_seeds(self, source):
        one = build_service(source, base_seed=0)
        two = build_service(source, base_seed=1)
        assert one.target_seed("user_00") != two.target_seed("user_00")


class TestInputs:
    def test_adapt_many_accepts_pairs_and_preserves_order(self, source):
        service = build_service(source)
        targets = make_targets(n_targets=3)
        pairs = list(targets.items())[::-1]
        with pytest.warns(RuntimeWarning, match="thread executor"):
            reports = service.adapt_many(pairs, jobs=2)
        assert list(reports) == [name for name, _ in pairs]

    def test_invalid_jobs_rejected(self, source):
        service = build_service(source)
        with pytest.raises(ValueError):
            service.adapt_many(make_targets(n_targets=1), jobs=0)

    def test_source_model_not_mutated_by_adapt(self, source):
        model, _ = source
        before = [param.data.copy() for param in model.parameters()]
        service = build_service(source)
        service.adapt("user_00", make_targets(n_targets=1)["user_00"])
        for old, param in zip(before, model.parameters()):
            np.testing.assert_array_equal(old, param.data)


class TestTargetIdCoercion:
    """``7`` and ``"7"`` must be the same target on every public surface."""

    def test_int_and_str_ids_share_reports_models_and_seeds(self, source):
        service = build_service(source)
        data = make_targets(n_targets=1)["user_00"]
        report = service.adapt(7, data)
        assert report.target_id == "7"
        assert service.target_seed(7) == service.target_seed("7")
        assert service.report_for("7") is report
        assert service.report_for(7) is report
        assert service.model_for("7") is service.model_for(7)
        assert service.n_adapted == 1
        # Re-adapting under the string spelling replaces, not duplicates.
        service.adapt("7", data)
        assert service.n_adapted == 1

    def test_int_and_str_ids_share_predictions(self, source):
        service = build_service(source)
        service.adapt(7, make_targets(n_targets=1)["user_00"])
        probe = np.random.default_rng(4).normal(size=(6, 4))
        np.testing.assert_array_equal(
            service.predict(7, probe, strict=True), service.predict("7", probe, strict=True)
        )

    def test_adapt_many_keys_are_canonical(self, source):
        service = build_service(source)
        data = make_targets(n_targets=1)["user_00"]
        reports = service.adapt_many([(7, data)], jobs=1)
        assert list(reports) == ["7"]
        with pytest.warns(RuntimeWarning, match="thread executor"):
            reports = service.adapt_many([(8, data), (9, data)], jobs=2)
        assert list(reports) == ["8", "9"]

    def test_strict_errors_name_the_canonical_id(self, source):
        service = build_service(source)
        with pytest.raises(KeyError, match="'7'"):
            service.model_for(7, required=True)


class TestBatchSizeValidation:
    def test_predict_rejects_non_positive_batch_size(self, source):
        service = build_service(source)
        probe = np.random.default_rng(5).normal(size=(4, 4))
        for bad in (0, -1):
            with pytest.raises(ValueError, match="batch_size must be at least 1"):
                service.predict("anyone", probe, batch_size=bad)

    def test_predict_batched_rejects_non_positive_batch_size(self, source):
        import repro.nn as nn_mod

        model, _ = source
        probe = np.random.default_rng(6).normal(size=(4, 4))
        with pytest.raises(ValueError, match="batch_size must be at least 1"):
            nn_mod.predict_batched(model, probe, batch_size=0)


class TestConcurrentEvictionRaces:
    """adapt_many constantly evicting while predict reads the LRU cache."""

    def _race(self, source, strict):
        import threading

        service = build_service(source, max_cached_models=2)
        fleet = make_targets(n_targets=8, n_samples=30)
        names = list(fleet)
        probe = np.random.default_rng(7).normal(size=(4, 4))
        errors = []
        done = threading.Event()

        def hammer():
            index = 0
            while not done.is_set():
                name = names[index % len(names)]
                index += 1
                try:
                    prediction = service.predict(name, probe, strict=strict)
                    assert prediction.shape == (4, 1)
                    assert np.isfinite(prediction).all()
                except KeyError as exc:
                    message = str(exc)
                    # Only the strict mode may refuse, and only with the
                    # two documented reasons; fallback mode never raises.
                    assert strict, f"non-strict predict raised {exc!r}"
                    assert "never adapted" in message or "evicted" in message
                except Exception as exc:  # pragma: no cover - the failure mode
                    errors.append(exc)

        readers = [threading.Thread(target=hammer) for _ in range(3)]
        for reader in readers:
            reader.start()
        try:
            with pytest.warns(RuntimeWarning, match="thread executor"):
                for _ in range(2):
                    service.adapt_many(fleet, jobs=4)
        finally:
            done.set()
            for reader in readers:
                reader.join()
        assert not errors, errors
        # Every target kept its report; only max_cached models survive.
        assert service.n_adapted == len(fleet)
        assert len(service.cached_targets) == 2

    def test_fallback_predict_survives_concurrent_eviction(self, source):
        self._race(source, strict=False)

    def test_strict_predict_survives_concurrent_eviction(self, source):
        self._race(source, strict=True)
