"""Hypothesis property tests for the ``repro.snapshot/v1`` codec and store.

Three properties the warm tier rests on:

* **round-trip identity** — arrays, model weights, density maps, and drift
  state all survive encode/decode to the exact bytes (NaN payloads and
  non-finite scalars included: the codec moves raw IEEE-754 bytes, not
  parsed text);
* **total decoding** — junk bytes, truncated files, and arbitrary payload
  soups never raise anything but the typed :class:`SnapshotError`;
* **version discipline** — a payload carrying any schema string other than
  ``repro.snapshot/v1`` is rejected, whatever else it contains.
"""

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.nn as nn
from repro.core.density_map import LabelDensityMap
from repro.runtime.snapshots import (
    SNAPSHOT_SCHEMA,
    SnapshotError,
    SnapshotStore,
    decode_array,
    decode_density_map,
    decode_drift_state,
    encode_array,
    encode_density_map,
    encode_drift_state,
    encode_model_weights,
    restore_model_weights,
)
from repro.streaming.drift import DensityDriftMonitor, DriftDetector

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
any_floats = st.floats(allow_nan=True, allow_infinity=True, width=64)

arrays = st.integers(min_value=1, max_value=3).flatmap(
    lambda ndim: st.lists(
        st.integers(min_value=1, max_value=4), min_size=ndim, max_size=ndim
    ).flatmap(
        lambda shape: st.lists(
            any_floats,
            min_size=int(np.prod(shape)),
            max_size=int(np.prod(shape)),
        ).map(lambda flat: np.array(flat, dtype=np.float64).reshape(shape))
    )
)

#: Strictly increasing bin-edge vectors (what LabelDensityMap accepts).
edge_vectors = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=6,
    unique=True,
).map(lambda values: np.array(sorted(values), dtype=np.float64))


@st.composite
def density_maps(draw):
    edges = [draw(edge_vectors) for _ in range(draw(st.integers(1, 2)))]
    density = LabelDensityMap(edges)
    flat = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False),
            min_size=int(np.prod(density.shape)),
            max_size=int(np.prod(density.shape)),
        )
    )
    density.densities = np.array(flat, dtype=np.float64).reshape(density.shape)
    density._accumulated = draw(st.integers(0, 10_000))
    return density


@st.composite
def drift_monitors(draw):
    reference = draw(density_maps())
    detector = DriftDetector(
        threshold=draw(st.floats(1e-3, 10.0)),
        delta=draw(st.floats(0.0, 1.0)),
        min_samples=draw(st.integers(1, 50)),
    )
    monitor = DensityDriftMonitor(
        reference,
        detector,
        window_decay=draw(st.floats(0.01, 0.99)),
        warmup_events=draw(st.integers(0, 100)),
        error_model=None,
    )
    # Mid-flight internal state, set the way a live stream would leave it.
    detector.n_observations = draw(st.integers(0, 1000))
    detector._mean = draw(st.floats(-10.0, 10.0))
    detector._cumulative = draw(st.floats(-10.0, 10.0))
    detector._cumulative_min = draw(st.floats(-10.0, 10.0))
    detector.drifted = draw(st.booleans())
    recent_flat = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False),
            min_size=int(np.prod(monitor.recent.shape)),
            max_size=int(np.prod(monitor.recent.shape)),
        )
    )
    monitor.recent._map.densities = np.array(recent_flat, dtype=np.float64).reshape(
        monitor.recent.shape
    )
    monitor.recent._map._accumulated = draw(st.integers(0, 10_000))
    monitor.recent.n_events = draw(st.integers(0, 10_000))
    monitor.recent.n_updates = draw(st.integers(0, 10_000))
    return monitor


json_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**31), max_value=2**31),
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=8),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.text(max_size=6), children, max_size=3),
    ),
    max_leaves=8,
)


# ----------------------------------------------------------------------
# Round-trip identity
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(array=arrays)
def test_array_round_trip_is_byte_identical(array):
    decoded = decode_array(encode_array(array))
    assert decoded.shape == array.shape
    assert decoded.dtype == array.dtype
    assert decoded.tobytes() == array.tobytes()  # NaN bit patterns included


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31), scale=st.floats(0.01, 10.0))
def test_model_weights_round_trip_restores_exact_bytes(seed, scale):
    from repro.nn import parameter_bytes

    original = nn.build_mlp(3, 1, hidden_dims=(5,), seed=int(seed))
    rng = np.random.default_rng(int(seed))
    for param in original.parameters():
        param.data[...] = scale * rng.normal(size=param.data.shape)
    blank = nn.build_mlp(3, 1, hidden_dims=(5,), seed=0)
    restore_model_weights(blank, encode_model_weights(original))
    assert parameter_bytes(blank) == parameter_bytes(original)


@settings(max_examples=30, deadline=None)
@given(density=density_maps())
def test_density_map_round_trip_is_exact(density):
    decoded = decode_density_map(encode_density_map(density))
    assert decoded.densities.tobytes() == density.densities.tobytes()
    assert decoded._accumulated == density._accumulated
    assert len(decoded.edges) == len(density.edges)
    for a, b in zip(decoded.edges, density.edges):
        assert a.tobytes() == b.tobytes()


@settings(max_examples=30, deadline=None)
@given(monitor=drift_monitors())
def test_drift_state_round_trip_is_a_fixed_point(monitor):
    payload = encode_drift_state(monitor)
    decoded = decode_drift_state(json.loads(json.dumps(payload)))
    assert encode_drift_state(decoded) == payload


def test_none_sections_round_trip():
    assert decode_density_map(None) is None
    assert decode_drift_state(None) is None
    assert encode_density_map(None) is None
    assert encode_drift_state(None) is None


@settings(max_examples=25, deadline=None)
@given(payload=st.dictionaries(st.text(max_size=6), json_values, max_size=4))
def test_store_save_load_round_trips_payload_sections(tmp_path_factory, payload):
    store = SnapshotStore(tmp_path_factory.mktemp("store"))
    store.save("target", {"report": payload, "weights": [], "stream": None})
    loaded = store.load("target")
    assert loaded["report"] == json.loads(json.dumps(payload))
    assert loaded["schema"] == SNAPSHOT_SCHEMA
    assert loaded["target_id"] == "target"


@settings(max_examples=40, deadline=None)
@given(a=st.text(min_size=1, max_size=30), b=st.text(min_size=1, max_size=30))
def test_distinct_target_ids_never_share_a_file(tmp_path_factory, a, b):
    store = SnapshotStore(tmp_path_factory.mktemp("store"))
    if a == b:
        assert store.path_for(a) == store.path_for(b)
    else:
        # Even ids that sanitize to the same slug diverge through the digest.
        assert store.path_for(a) != store.path_for(b)


# ----------------------------------------------------------------------
# Total decoding: junk never escapes SnapshotError
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(junk=st.binary(max_size=200))
def test_junk_bytes_raise_only_snapshot_error(tmp_path_factory, junk):
    store = SnapshotStore(tmp_path_factory.mktemp("store"))
    store.path_for("t").write_bytes(junk)
    try:
        store.load("t")
    except SnapshotError:
        pass  # the only exception allowed out
    else:
        raise AssertionError("junk bytes must not load as a snapshot")
    assert store.has("t") is False


@settings(max_examples=40, deadline=None)
@given(cut=st.floats(min_value=0.0, max_value=1.0))
def test_truncated_snapshot_raises_only_snapshot_error(tmp_path_factory, cut):
    store = SnapshotStore(tmp_path_factory.mktemp("store"))
    store.save("t", {"report": {"k": 1}, "weights": [], "stream": None})
    path = store.path_for("t")
    text = path.read_bytes()
    # Cut anywhere strictly inside the document (len-2 keeps at least the
    # closing brace missing; the full text minus its newline is still the
    # complete, valid document and is excluded on purpose).
    path.write_bytes(text[: int(cut * (len(text) - 2))])
    try:
        store.load("t")
    except SnapshotError:
        pass
    else:
        raise AssertionError("a truncated snapshot must not load")


@settings(max_examples=40, deadline=None)
@given(spec=json_values)
def test_decode_array_rejects_soup_with_snapshot_error_only(spec):
    try:
        decode_array(spec if isinstance(spec, dict) else {"shape": spec})
    except SnapshotError:
        pass
    # A dict that happens to be a valid encoding decoding cleanly is fine.


@settings(max_examples=40, deadline=None)
@given(payload=json_values)
def test_decode_drift_state_rejects_soup_with_snapshot_error_only(payload):
    if payload is None:
        return
    try:
        decode_drift_state(payload)
    except SnapshotError:
        pass


@settings(max_examples=25, deadline=None)
@given(version=st.text(max_size=20).filter(lambda v: v != SNAPSHOT_SCHEMA))
def test_unknown_schema_version_is_rejected(tmp_path_factory, version):
    store = SnapshotStore(tmp_path_factory.mktemp("store"))
    store.save("t", {"report": {}, "weights": [], "stream": None})
    path = store.path_for("t")
    payload = json.loads(path.read_text())
    payload["schema"] = version
    path.write_text(json.dumps(payload))
    try:
        store.load("t")
    except SnapshotError:
        pass
    else:
        raise AssertionError(f"schema {version!r} must be rejected")
