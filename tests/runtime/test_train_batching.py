"""``AdaptationService.adapt_many`` with ``train_batching``.

The knob must be a pure throughput lever: any stacking factor — including
one that exceeds the target count, and stacking layered on the process
executor — produces the exact reports and model bytes of the serial run.
Incompatible combinations (nonsensical factors, schemes or models without
a stacked path) are rejected up front with a clear error.
"""

import copy

import numpy as np
import pytest
from engine.scheme_oracle_fixture import build_fixture, fast_config

from repro.nn import parameter_bytes
from repro.nn.module import Module
from repro.runtime.service import AdaptationService

REPORT_FIELDS = ("target_id", "seed", "losses", "n_confident", "n_uncertain", "stopped_epoch")


@pytest.fixture(scope="module")
def fixture():
    return build_fixture()


@pytest.fixture(scope="module")
def targets():
    rng = np.random.default_rng(31)
    data = {f"t{k}": rng.normal(loc=0.3, size=(60, 4)) for k in range(5)}
    # A ragged sixth target: its length differs, so it lands in its own
    # (singleton) group and exercises the serial fallback inside a batch.
    data["t5"] = rng.normal(loc=0.3, size=(45, 4))
    return data


def run_service(fixture, targets, train_batching=1, executor=None, jobs=1):
    service = AdaptationService(fixture["model"], fixture["calibration"], config=fast_config())
    try:
        reports = service.adapt_many(
            targets, jobs=jobs, executor=executor, train_batching=train_batching
        )
        models = {tid: parameter_bytes(service.model_for(tid)) for tid in targets}
    finally:
        service.close()
    keyed = {
        tid: {field: report.to_dict().get(field) for field in REPORT_FIELDS}
        for tid, report in reports.items()
    }
    return keyed, models


@pytest.fixture(scope="module")
def serial(fixture, targets):
    return run_service(fixture, targets)


@pytest.mark.parametrize("train_batching", [2, 3, 6])
def test_adapt_many_stacked_identical_to_serial(fixture, targets, serial, train_batching):
    reports, models = run_service(fixture, targets, train_batching=train_batching)
    assert reports == serial[0]
    assert models == serial[1]


def test_adapt_many_stacked_on_process_pool_identical(fixture, targets, serial):
    reports, models = run_service(
        fixture, targets, train_batching=3, executor="process", jobs=2
    )
    assert reports == serial[0]
    assert models == serial[1]


def test_adapt_many_rejects_nonpositive_train_batching(fixture, targets):
    service = AdaptationService(fixture["model"], fixture["calibration"], config=fast_config())
    try:
        with pytest.raises(ValueError, match="train_batching"):
            service.adapt_many(targets, train_batching=0)
    finally:
        service.close()


def test_unstackable_scheme_rejected(fixture):
    class NoStack:
        name = "nostack"

        def adapt(self, *args, **kwargs):  # pragma: no cover - never reached
            raise NotImplementedError

    service = AdaptationService(fixture["model"], fixture["calibration"], strategy=NoStack())
    try:
        with pytest.raises(ValueError, match="nostack"):
            service.check_train_batching(4)
    finally:
        service.close()


def test_unstackable_model_rejected(fixture):
    class Weird(Module):
        def forward(self, x):
            return x

        def backward(self, g):
            return g

    weird_model = copy.deepcopy(fixture["model"])
    weird_model.encoder.layers.append(Weird())
    service = AdaptationService(weird_model, fixture["calibration"], config=fast_config())
    try:
        with pytest.raises(ValueError, match="stacked"):
            service.check_train_batching(4)
    finally:
        service.close()
