"""Tiered adapted-model state: spill-on-evict, warm-resume, corruption fallback.

The warm tier's core claim is an *equivalence oracle*: a target that was
evicted and then resumed from its ``repro.snapshot/v1`` file must serve the
very same bits — parameter bytes, report, predictions — as a target that was
never evicted at all, for every scheme in the registry, under the thread and
process executors, and with stacked training.  The remaining tests pin the
degradation contract: corrupt or truncated snapshots are detected, counted,
discarded, and fall back to a clean cold adaptation, never a crash.
"""

import numpy as np
import pytest

from repro.engine import strategy_names
from repro.nn import parameter_bytes
from repro.obs import scrub_wall_clock
from repro.runtime import AdaptationService, SnapshotStore
from repro.runtime.snapshots import SNAPSHOT_SCHEMA
from repro.streaming import StreamingAdaptationService

from test_process_workers import prepared_strategy
from test_service import build_service, fast_config, make_source, make_targets


@pytest.fixture(scope="module")
def source():
    return make_source()


def counter_total(service, name: str) -> float:
    """Sum of one counter across all label sets in the service registry."""
    return sum(
        entry["value"]
        for entry in service.metrics.snapshot()["counters"]
        if entry["name"] == name
    )


def report_dict(service, target_id: str) -> dict:
    """A target's report as a wall-clock-scrubbed comparable dictionary."""
    return scrub_wall_clock(service.report_for(target_id).to_dict())


class TestSpillOnEvict:
    def test_explicit_evict_spills_every_target(self, source, tmp_path):
        store = SnapshotStore(tmp_path)
        service = build_service(source, snapshot_store=store)
        targets = make_targets(n_targets=3)
        service.adapt_many(targets)
        assert store.files() == []  # nothing spills while cached
        evicted = service.evict()
        assert sorted(evicted) == sorted(targets)
        assert store.targets() == sorted(targets)
        assert counter_total(service, "snapshots.spilled") == 3

    def test_single_target_evict_spills_just_that_target(self, source, tmp_path):
        store = SnapshotStore(tmp_path)
        service = build_service(source, snapshot_store=store)
        targets = make_targets(n_targets=2)
        service.adapt_many(targets)
        names = list(targets)
        assert service.evict(names[0]) == [names[0]]
        assert store.targets() == [names[0]]

    def test_capacity_eviction_spills_the_lru_victims(self, source, tmp_path):
        store = SnapshotStore(tmp_path)
        service = build_service(source, snapshot_store=store, max_cached_models=1)
        targets = make_targets(n_targets=3)
        for name, data in targets.items():
            service.adapt(name, data)
        names = list(targets)
        # The two oldest were pushed out by capacity; the newest is still hot.
        assert store.targets() == sorted(names[:2])
        assert counter_total(service, "snapshots.spilled") == 2

    def test_snapshot_carries_schema_and_exact_target_id(self, source, tmp_path):
        store = SnapshotStore(tmp_path)
        service = build_service(source, snapshot_store=store)
        data = make_targets(n_targets=1)["user_00"]
        service.adapt("user_00", data)
        service.evict("user_00")
        payload = store.load("user_00")
        assert payload["schema"] == SNAPSHOT_SCHEMA
        assert payload["target_id"] == "user_00"
        assert payload["stream"] is None  # batch service has no drift state
        assert payload["report"]["target_id"] == "user_00"

    def test_without_a_store_evict_discards_as_before(self, source, tmp_path):
        service = build_service(source)
        data = make_targets(n_targets=1)["user_00"]
        service.adapt("user_00", data)
        assert service.evict() == ["user_00"]
        assert service.model_for("user_00") is None
        assert counter_total(service, "snapshots.spilled") == 0


class TestWarmResume:
    def test_resume_restores_bits_report_and_predictions(self, source, tmp_path):
        store = SnapshotStore(tmp_path)
        service = build_service(source, snapshot_store=store)
        data = make_targets(n_targets=1)["user_00"]
        service.adapt("user_00", data)
        probe = np.random.default_rng(7).normal(size=(16, 4))
        before_bytes = parameter_bytes(service.model_for("user_00"))
        before_report = report_dict(service, "user_00")
        before_prediction = service.predict("user_00", probe)

        service.evict("user_00")
        resumed = service.model_for("user_00")
        assert resumed is not None
        assert parameter_bytes(resumed) == before_bytes
        assert report_dict(service, "user_00") == before_report
        np.testing.assert_array_equal(service.predict("user_00", probe), before_prediction)
        assert counter_total(service, "snapshots.resumed") == 1

    def test_resume_observes_timing_histogram(self, source, tmp_path):
        store = SnapshotStore(tmp_path)
        service = build_service(source, snapshot_store=store)
        data = make_targets(n_targets=1)["user_00"]
        service.adapt("user_00", data)
        service.evict("user_00")
        assert service.model_for("user_00") is not None
        names = {
            entry["name"] for entry in service.metrics.snapshot()["histograms"]
        }
        assert "snapshots.resume_seconds" in names

    def test_resume_survives_a_service_restart(self, source, tmp_path):
        """A new service over the same store (a restarted process) resumes too."""
        store = SnapshotStore(tmp_path)
        first = build_service(source, snapshot_store=store)
        data = make_targets(n_targets=1)["user_00"]
        first.adapt("user_00", data)
        bits = parameter_bytes(first.model_for("user_00"))
        report = report_dict(first, "user_00")
        first.evict()

        second = build_service(source, snapshot_store=SnapshotStore(tmp_path))
        assert second.n_adapted == 0
        resumed = second.model_for("user_00")
        assert resumed is not None
        assert parameter_bytes(resumed) == bits
        assert report_dict(second, "user_00") == report

    def test_miss_without_snapshot_is_still_a_miss(self, source, tmp_path):
        service = build_service(source, snapshot_store=SnapshotStore(tmp_path))
        assert service.model_for("never_adapted") is None
        assert counter_total(service, "snapshots.resumed") == 0


@pytest.mark.parametrize("scheme", sorted(strategy_names()))
class TestSixSchemeEquivalence:
    """Evict→resume == never-evicted, byte for byte, for every scheme."""

    def test_resume_matches_never_evicted_bitwise(self, scheme, source, tmp_path):
        model, calibration = source
        targets = make_targets(n_targets=3)
        baseline = AdaptationService(
            model, calibration, fast_config(), strategy=prepared_strategy(scheme, source)
        )
        baseline.adapt_many(targets)

        tiered = AdaptationService(
            model,
            calibration,
            fast_config(),
            strategy=prepared_strategy(scheme, source),
            snapshot_store=SnapshotStore(tmp_path / scheme),
        )
        tiered.adapt_many(targets)
        assert sorted(tiered.evict()) == sorted(targets)

        probe = np.random.default_rng(0).normal(size=(16, 4))
        for name in targets:
            resumed = tiered.model_for(name)
            assert resumed is not None, f"{scheme}: {name} did not resume"
            assert parameter_bytes(resumed) == parameter_bytes(baseline.model_for(name))
            assert report_dict(tiered, name) == report_dict(baseline, name)
            np.testing.assert_array_equal(
                tiered.predict(name, probe), baseline.predict(name, probe)
            )


class TestExecutorAndBatchingEquivalence:
    def test_process_executor_spill_resume_matches_serial(self, source, tmp_path):
        targets = make_targets(n_targets=3)
        serial = build_service(source)
        serial.adapt_many(targets, jobs=1)

        tiered = build_service(source, snapshot_store=SnapshotStore(tmp_path))
        try:
            tiered.adapt_many(targets, jobs=2, executor="process")
        finally:
            tiered.close()
        tiered.evict()
        for name in targets:
            assert parameter_bytes(tiered.model_for(name)) == parameter_bytes(
                serial.model_for(name)
            )
            assert report_dict(tiered, name) == report_dict(serial, name)

    def test_train_batching_spill_resume_matches_serial(self, source, tmp_path):
        # Same-length targets so stacked training actually groups them.
        rng = np.random.default_rng(31)
        targets = {f"t{k}": rng.normal(loc=0.2 * k, size=(40, 4)) for k in range(3)}
        serial = build_service(source)
        serial.adapt_many(targets, jobs=1)

        tiered = build_service(source, snapshot_store=SnapshotStore(tmp_path))
        tiered.adapt_many(targets, train_batching=3)
        tiered.evict()
        for name in targets:
            assert parameter_bytes(tiered.model_for(name)) == parameter_bytes(
                serial.model_for(name)
            )
            assert report_dict(tiered, name) == report_dict(serial, name)


class TestCorruptionFallback:
    def adapted_and_evicted(self, source, tmp_path):
        store = SnapshotStore(tmp_path)
        service = build_service(source, snapshot_store=store)
        data = make_targets(n_targets=1)["user_00"]
        service.adapt("user_00", data)
        service.evict("user_00")
        return store, service, data

    def test_corrupt_file_degrades_to_cold_adapt(self, source, tmp_path):
        store, service, data = self.adapted_and_evicted(source, tmp_path)
        path = store.path_for("user_00")
        path.write_bytes(b'{"schema": "repro.snapshot/v1", "rotted": tru')
        assert service.model_for("user_00") is None  # clean miss, not a crash
        assert counter_total(service, "snapshots.corrupt") == 1
        assert store.files() == []  # detected once, then discarded
        # The target can be adapted again from scratch.
        report = service.adapt("user_00", data)
        assert report.target_id == "user_00"
        assert service.model_for("user_00") is not None

    def test_truncated_file_detected_by_checksum(self, source, tmp_path):
        store, service, _ = self.adapted_and_evicted(source, tmp_path)
        path = store.path_for("user_00")
        text = path.read_text()
        # Keep it valid JSON but drop payload bytes: only the checksum can
        # tell, and it must.
        path.write_text(text.replace('"stream": null', '"stream": {}'))
        assert service.model_for("user_00") is None
        assert counter_total(service, "snapshots.corrupt") == 1

    def test_unknown_schema_version_rejected(self, source, tmp_path):
        store, service, _ = self.adapted_and_evicted(source, tmp_path)
        path = store.path_for("user_00")
        path.write_text(path.read_text().replace(SNAPSHOT_SCHEMA, "repro.snapshot/v9"))
        assert service.model_for("user_00") is None
        assert counter_total(service, "snapshots.corrupt") == 1

    def test_corruption_detected_exactly_once(self, source, tmp_path):
        store, service, _ = self.adapted_and_evicted(source, tmp_path)
        store.path_for("user_00").write_bytes(b"garbage")
        assert service.model_for("user_00") is None
        assert service.model_for("user_00") is None  # second touch: plain miss
        assert counter_total(service, "snapshots.corrupt") == 1


class TestTempFileGC:
    def test_orphaned_temp_files_collected_on_open(self, source, tmp_path):
        store = SnapshotStore(tmp_path)
        service = build_service(source, snapshot_store=store)
        data = make_targets(n_targets=1)["user_00"]
        service.adapt("user_00", data)
        service.evict("user_00")
        # Fake two writers that died mid-spill.
        (tmp_path / ".user_00-999-deadbeef.json.tmp").write_text("torn")
        (tmp_path / ".user_01-999-cafef00d.json.tmp").write_text("torn")
        reopened = SnapshotStore(tmp_path)
        assert reopened.collected_temp_files == 2
        assert list(tmp_path.glob(".*.tmp")) == []
        # The real snapshot survived the sweep.
        assert reopened.targets() == ["user_00"]

    def test_fresh_directory_collects_nothing(self, tmp_path):
        assert SnapshotStore(tmp_path / "fresh").collected_temp_files == 0


class TestStreamingSpillResume:
    def build_streaming(self, source, **kwargs):
        model, calibration = source
        kwargs.setdefault("config", fast_config())
        kwargs.setdefault("min_adapt_events", 32)
        kwargs.setdefault("readapt_budget", 200)
        kwargs.setdefault("warm_epochs", 2)
        return StreamingAdaptationService(model, calibration, **kwargs)

    def batches(self, loc, n_batches, batch_size=16, seed=100):
        rng = np.random.default_rng(seed)
        return [rng.normal(loc=loc, size=(batch_size, 4)) for _ in range(n_batches)]

    def test_spill_carries_drift_state_and_restart_restores_it(self, source, tmp_path):
        store = SnapshotStore(tmp_path)
        service = self.build_streaming(source, snapshot_store=store)
        for batch in self.batches(0.3, 3):  # 48 events: past min_adapt_events
            service.ingest("rider", batch)
        stats = service.stream_stats("rider")
        assert stats["cold_adaptations"] == 1
        bits = parameter_bytes(service.model_for("rider"))
        service.evict("rider")

        payload = store.load("rider")
        stream = payload["stream"]
        assert stream["n_cold"] == 1
        assert stream["step"] == stats["steps"]
        assert stream["total_events"] == stats["total_events"]
        assert isinstance(stream["monitor"], dict)

        # A new service over the same store — a restarted process — picks up
        # both the model (lazily, through the cache-miss chokepoint) and the
        # stream counters/drift monitor (on first touch of the stream).
        restarted = self.build_streaming(source, snapshot_store=SnapshotStore(tmp_path))
        assert parameter_bytes(restarted.model_for("rider")) == bits
        event = restarted.ingest("rider", self.batches(0.3, 1, batch_size=4, seed=9)[0])
        restored = restarted.stream_stats("rider")
        assert restored["cold_adaptations"] == 1  # not cold-adapting again
        assert restored["total_events"] == stream["total_events"] + 4
        assert restored["steps"] == stream["step"] + 1
        assert event.action in ("buffered", "warm_adapt", "cold_adapt")

    def test_restored_monitor_round_trips_bit_identically(self, source, tmp_path):
        store = SnapshotStore(tmp_path)
        service = self.build_streaming(source, snapshot_store=store)
        for batch in self.batches(0.3, 3):
            service.ingest("rider", batch)
        service.evict("rider")
        spilled = store.load("rider")["stream"]["monitor"]

        restarted = self.build_streaming(source, snapshot_store=SnapshotStore(tmp_path))
        # Force the lazy restore without ingesting (an ingest would advance
        # the monitor past the spilled state before we could compare it).
        state = restarted._stream_state("rider")
        from repro.runtime.snapshots import encode_drift_state

        assert encode_drift_state(state.monitor) == spilled

    def test_corrupt_stream_section_restarts_clean(self, source, tmp_path):
        store = SnapshotStore(tmp_path)
        service = self.build_streaming(source, snapshot_store=store)
        for batch in self.batches(0.3, 3):
            service.ingest("rider", batch)
        service.evict("rider")
        store.path_for("rider").write_bytes(b"rotted")

        restarted = self.build_streaming(source, snapshot_store=SnapshotStore(tmp_path))
        stats_before = restarted.stream_stats("rider")
        assert stats_before["total_events"] == 0
        event = restarted.ingest("rider", self.batches(0.3, 1, batch_size=4, seed=9)[0])
        assert event.action == "buffered"  # fresh stream, counting from zero
