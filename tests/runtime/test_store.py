"""Tests for the disk-backed experiment ResultStore and resume semantics."""

import json

import numpy as np
import pytest

from repro.experiments import ExperimentResult
from repro.runtime import ResultStore
from repro.runtime.serialization import to_jsonable


def make_result(experiment_id="fig0_demo"):
    return ExperimentResult(
        experiment_id=experiment_id,
        description="demo result",
        columns=["name", "value", "count"],
        rows=[
            ["alpha", np.float64(1.25), np.int64(3)],
            ["beta", 2.5, 4],
        ],
        paper_expectation="values stay finite",
        notes={"mean": np.float64(1.875), "tags": ("a", "b"), "array": np.arange(3)},
    )


class TestRoundTrip:
    def test_save_load_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(make_result(), "small", 0)
        loaded = store.load("fig0_demo", "small", 0)
        assert loaded.experiment_id == "fig0_demo"
        assert loaded.description == "demo result"
        assert loaded.columns == ["name", "value", "count"]
        assert loaded.rows == [["alpha", 1.25, 3], ["beta", 2.5, 4]]
        assert loaded.paper_expectation == "values stay finite"
        assert loaded.notes["mean"] == 1.875
        assert loaded.notes["array"] == [0, 1, 2]

    def test_summary_of_loaded_result_renders(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(make_result(), "small", 0)
        summary = store.load("fig0_demo", "small", 0).summary()
        assert "fig0_demo" in summary and "alpha" in summary

    def test_unserializable_notes_degrade_to_repr(self, tmp_path):
        result = make_result()
        result.notes["opaque"] = object()
        store = ResultStore(tmp_path)
        store.save(result, "small", 0)
        loaded = store.load("fig0_demo", "small", 0)
        assert isinstance(loaded.notes["opaque"], str)


class TestKeying:
    def test_keys_are_independent(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(make_result(), "small", 0)
        assert store.has("fig0_demo", "small", 0)
        assert not store.has("fig0_demo", "small", 1)
        assert not store.has("fig0_demo", "tiny", 0)
        assert not store.has("fig1_other", "small", 0)

    def test_completed_lists_stored_ids(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.completed("small", 0) == []
        store.save(make_result("fig2_b"), "small", 0)
        store.save(make_result("fig1_a"), "small", 0)
        assert store.completed("small", 0) == ["fig1_a", "fig2_b"]

    def test_discard(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(make_result(), "small", 0)
        assert store.discard("fig0_demo", "small", 0)
        assert not store.has("fig0_demo", "small", 0)
        assert not store.discard("fig0_demo", "small", 0)


class TestResumeRobustness:
    def test_corrupt_file_reports_missing(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.path_for("fig0_demo", "small", 0)
        path.parent.mkdir(parents=True)
        path.write_text("{not json", encoding="utf-8")
        assert not store.has("fig0_demo", "small", 0)

    def test_schema_mismatch_reports_missing(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(make_result(), "small", 0)
        path = store.path_for("fig0_demo", "small", 0)
        payload = json.loads(path.read_text())
        payload["schema_version"] = -1
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert not store.has("fig0_demo", "small", 0)

    def test_save_replaces_previous_result(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(make_result(), "small", 0)
        updated = make_result()
        updated.rows = [["gamma", 9.0, 1]]
        store.save(updated, "small", 0)
        assert store.load("fig0_demo", "small", 0).rows == [["gamma", 9.0, 1]]

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(make_result(), "small", 0)
        assert not list(tmp_path.rglob("*.tmp"))

    def test_saved_files_honor_the_umask(self, tmp_path):
        """mkstemp's private 0600 mode must not leak into stored results."""
        import os
        import stat

        old_umask = os.umask(0o022)
        try:
            store = ResultStore(tmp_path)
            store.save(make_result(), "small", 0)
            mode = stat.S_IMODE(os.stat(store.path_for("fig0_demo", "small", 0)).st_mode)
            assert mode == 0o644
        finally:
            os.umask(old_umask)

    def test_completed_ignores_temp_files(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(make_result(), "small", 0)
        directory = store.path_for("fig0_demo", "small", 0).parent
        (directory / ".fig0_demo-abc123.json.tmp").write_text("{", encoding="utf-8")
        assert store.completed("small", 0) == ["fig0_demo"]


class TestConcurrentWrites:
    def test_concurrent_same_key_saves_never_tear(self, tmp_path):
        """Racing writers on one key always leave one complete JSON result.

        Every worker writes its own uniquely named temp file and promotes it
        with an atomic rename, so whichever save lands last, the stored file
        is a complete document from exactly one writer.
        """
        from concurrent.futures import ThreadPoolExecutor

        store = ResultStore(tmp_path)
        n_writers = 16

        def save(worker):
            result = make_result()
            result.rows = [[f"worker_{worker}", float(worker)] * 50]
            store.save(result, "small", 0)
            return worker

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(save, range(n_writers)))

        assert store.has("fig0_demo", "small", 0)
        loaded = store.load("fig0_demo", "small", 0)
        assert len(loaded.rows) == 1
        (winner,) = set(loaded.rows[0][::2])  # every name cell is one writer's
        assert winner.startswith("worker_")
        assert not list(tmp_path.rglob("*.tmp"))

    def test_concurrent_distinct_key_saves_all_land(self, tmp_path):
        from concurrent.futures import ThreadPoolExecutor

        store = ResultStore(tmp_path)
        ids = [f"fig{index}_x" for index in range(12)]
        with ThreadPoolExecutor(max_workers=6) as pool:
            list(pool.map(lambda eid: store.save(make_result(eid), "small", 0), ids))
        assert store.completed("small", 0) == sorted(ids)


class TestToJsonable:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (np.float64(1.5), 1.5),
            (np.int32(7), 7),
            (np.bool_(True), True),
            ((1, 2), [1, 2]),
            ({"k": np.arange(2)}, {"k": [0, 1]}),
            ({1: "v"}, {"1": "v"}),
            (None, None),
        ],
    )
    def test_conversions(self, value, expected):
        assert to_jsonable(value) == expected

    def test_result_is_json_dumpable(self):
        payload = to_jsonable(make_result().notes)
        json.dumps(payload)
