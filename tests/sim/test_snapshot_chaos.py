"""The ``snapshot_chaos`` fault plan and its corruption oracle.

Three claims, each checked from both sides so no oracle can rot silently:

* a chaos run with the warm tier on stays green *and* actually exercises
  the tier — spills, warm resumes, and at least one detected corruption
  all show up in the fleet counters and the fault log;
* the snapshot counters reconcile (``resumed + corrupt <= spilled``; all
  zero without a store), and the ``metrics_accounting`` invariant fires
  when the books are doctored either way;
* the whole thing is deterministic: ``verify_replay`` with snapshots and
  chaos enabled is byte-identical across two runs from scratch.
"""

import json

from repro.serve import ReportRequest
from repro.sim import (
    InvariantSuite,
    RequestRecord,
    Simulator,
    fault_plan_names,
    run_simulation,
    verify_replay,
)
from repro.sim.spec import TraceEvent

from sim_fixtures import make_spec


def counter_total(metrics: dict, name: str) -> float:
    """Sum one counter across every label set in a merged snapshot."""
    return sum(
        entry["value"] for entry in metrics.get("counters", []) if entry["name"] == name
    )


def source_fallbacks(result) -> int:
    """How many ok predictions in the transcript fell back to the source model."""
    count = 0
    for line in result.transcript_lines:
        envelope = json.loads(line)["envelope"]
        if envelope["kind"] == "predict" and envelope["ok"]:
            count += envelope["payload"]["model"] == "source"
    return count


def one_report_record(gateway) -> list[RequestRecord]:
    """One real served request, wrapped the way the simulator hands records in."""
    request = ReportRequest("fleet-00")
    envelope = gateway.submit(request)
    event = TraceEvent(0, 0, request.kind, request.target_id, "{}")
    return [RequestRecord(event, request, envelope)]


class TestSnapshotChaosRun:
    def test_plan_is_registered(self):
        assert "snapshot_chaos" in fault_plan_names()

    def test_chaos_run_green_spills_resumes_and_detects_rot(self):
        spec = make_spec(
            snapshots=True,
            fault_plan="snapshot_chaos",
            fault_options={"every": 2, "corrupt_every": 4},
        )
        result = run_simulation(spec)
        assert result.ok, result.invariant_report
        assert any(f["fault"] == "snapshot_evict" and f["evicted"] for f in result.faults)
        rot = [f for f in result.faults if f["fault"] == "snapshot_corrupt"]
        assert rot and any(f["applied"] for f in rot)
        spilled = counter_total(result.metrics, "snapshots.spilled")
        resumed = counter_total(result.metrics, "snapshots.resumed")
        corrupt = counter_total(result.metrics, "snapshots.corrupt")
        assert spilled > 0
        assert resumed > 0, "evicted targets must warm-resume, not just cold-adapt"
        assert corrupt >= 1, "the rotted file must be detected, not served"
        # The reconciliation identity the invariant suite enforces each tick.
        assert resumed + corrupt <= spilled

    def test_warm_resumes_eliminate_eviction_fallbacks(self):
        # Same eviction cadence, with and without the warm tier.  The calm
        # run's source fallbacks are pre-adaptation probes (users probed
        # while their events are still buffering); cache_thrash adds
        # eviction-induced ones on top.  With snapshots on, every touch of
        # an evicted target resumes it first, so the count drops back to
        # exactly the calm baseline.
        calm = run_simulation(make_spec())
        thrash = run_simulation(
            make_spec(fault_plan="cache_thrash", fault_options={"every": 2})
        )
        warm = run_simulation(
            make_spec(
                snapshots=True,
                fault_plan="snapshot_chaos",
                fault_options={"every": 2, "corrupt_every": 0},
            )
        )
        assert calm.ok and thrash.ok and warm.ok
        assert source_fallbacks(thrash) > source_fallbacks(calm)
        assert source_fallbacks(warm) == source_fallbacks(calm)
        assert counter_total(warm.metrics, "snapshots.resumed") > 0

    def test_verify_replay_with_snapshots_is_byte_identical(self):
        ok, detail, result = verify_replay(
            make_spec(snapshots=True, fault_plan="snapshot_chaos")
        )
        assert ok, detail
        # The determinism claim is only interesting if the tier really ran.
        assert counter_total(result.metrics, "snapshots.spilled") > 0


class TestCorruptionOracleFiresBothWays:
    def test_counters_stay_zero_without_a_store(self):
        # snapshots defaults off: evictions degrade to plain cache_thrash,
        # corruption finds no files, and the tier's counters must not move.
        result = run_simulation(make_spec(fault_plan="snapshot_chaos"))
        assert result.ok, result.invariant_report
        for name in ("snapshots.spilled", "snapshots.resumed", "snapshots.corrupt"):
            assert counter_total(result.metrics, name) == 0
        rot = [f for f in result.faults if f["fault"] == "snapshot_corrupt"]
        assert rot and all(not f["applied"] for f in rot)

    def test_doctored_resume_books_caught(self):
        # A resume with no spill behind it breaks resumed + corrupt <= spilled.
        with Simulator(make_spec(snapshots=True, n_ticks=2)) as sim:
            suite = InvariantSuite(sim.gateway)
            sim.gateway.shards[0].metrics.counter("snapshots.resumed")
            suite.observe_tick(0, one_report_record(sim.gateway))
            assert any(
                v.invariant == "metrics_accounting" and "snapshots.resumed" in v.detail
                for v in suite.violations
            )

    def test_doctored_spill_without_store_caught(self):
        # With no store attached the tier cannot legally count anything.
        with Simulator(make_spec(n_ticks=2)) as sim:
            suite = InvariantSuite(sim.gateway)
            sim.gateway.shards[0].metrics.counter("snapshots.spilled")
            suite.observe_tick(0, one_report_record(sim.gateway))
            assert any(
                v.invariant == "metrics_accounting" and "snapshots.spilled" in v.detail
                for v in suite.violations
            )
