"""Fixtures for the workload-simulator suite (helpers in sim_fixtures.py)."""

import pytest

from sim_fixtures import make_spec


@pytest.fixture(scope="session")
def base_spec():
    return make_spec()
