"""Tests for the invariant suite itself: a broken stack must be caught.

The scenario matrix proves the invariants *hold*; these tests prove they
would *fail* if the stack misbehaved — an oracle that cannot fire is no
oracle.  Violations are injected by doctoring envelopes and counters, not by
breaking the real services.
"""

import pytest

from repro.serve import Envelope
from repro.sim import InvariantSuite, RequestRecord, Simulator, scrub_wall_clock
from repro.sim.spec import TraceEvent

from sim_fixtures import make_spec


def record_for(envelope, kind="report", user="u"):
    return RequestRecord(TraceEvent(0, 0, kind, user, "{}"), None, envelope)


@pytest.fixture(scope="module")
def simulator():
    with Simulator(make_spec(n_ticks=2)) as sim:
        yield sim


def fabricating_suite(simulator):
    """A suite fed hand-built envelopes: metrics can't reconcile traffic
    that never flowed through the gateway, so that check stays off."""
    return InvariantSuite(simulator.gateway, verify_metrics=False)


class TestEnvelopeSchema:
    def test_good_envelope_passes(self, simulator):
        suite = fabricating_suite(simulator)
        suite.observe_tick(0, [record_for(Envelope.success("report", "u", {"report": None}))])
        assert suite.ok

    def test_wrong_schema_version_caught(self, simulator):
        suite = fabricating_suite(simulator)
        envelope = Envelope.success("report", "u", {})
        envelope.schema = "repro.serve/v0"
        suite.observe_tick(0, [record_for(envelope)])
        assert not suite.ok
        assert suite.violations[0].invariant == "envelope_schema"

    def test_ok_without_payload_caught(self, simulator):
        suite = fabricating_suite(simulator)
        envelope = Envelope(ok=True, kind="report", payload=None)
        suite.observe_tick(0, [record_for(envelope)])
        assert any(v.invariant == "envelope_schema" for v in suite.violations)

    def test_error_without_body_caught(self, simulator):
        suite = fabricating_suite(simulator)
        envelope = Envelope(ok=False, kind="report", error={"type": "X"})
        suite.observe_tick(0, [record_for(envelope)])
        assert any("type/message" in v.detail for v in suite.violations)


class TestShardPlacement:
    def test_wrong_shard_caught(self, simulator):
        suite = fabricating_suite(simulator)
        target = "fleet-00"
        wrong = (simulator.gateway.shard_for(target) + 1) % simulator.gateway.n_shards
        envelope = Envelope.success("report", target, {"report": None, "shard": wrong})
        suite.observe_tick(0, [record_for(envelope)])
        assert any(v.invariant == "shard_placement" for v in suite.violations)

    def test_migration_mid_run_caught(self, simulator):
        suite = fabricating_suite(simulator)
        target = "fleet-00"
        home = simulator.gateway.shard_for(target)
        suite._placements[target] = (home + 1) % simulator.gateway.n_shards
        envelope = Envelope.success("report", target, {"report": None, "shard": home})
        suite.observe_tick(0, [record_for(envelope)])
        assert any("moved from shard" in v.detail for v in suite.violations)


class TestMonotoneAccounting:
    def test_fabricated_counter_regression_caught(self, simulator):
        suite = InvariantSuite(simulator.gateway, verify_coalescing=False)
        target = next(iter(simulator.trace.users))
        shard = simulator.gateway.service_for(target)
        # Pretend an earlier tick saw more events than the service now reports.
        suite._last_stats[target] = {
            "steps": 999, "total_events": 999,
            "cold_adaptations": 0, "warm_adaptations": 0, "buffered": 0,
        }
        shard.ingest(target, [[0.0] * 8, [0.0] * 8])
        suite._check_accounting(tick=1)
        assert any(v.invariant == "monotone_accounting" for v in suite.violations)


class TestScrubbing:
    def test_scrub_zeroes_every_duration_at_any_depth(self):
        payload = {
            "duration_seconds": 1.25,
            "payload": {
                "report": {"duration_seconds": 9.0, "losses": [0.1]},
                "events": [{"duration_seconds": 3.5, "step": 1}],
            },
        }
        scrubbed = scrub_wall_clock(payload)
        assert scrubbed["duration_seconds"] == 0.0
        assert scrubbed["payload"]["report"]["duration_seconds"] == 0.0
        assert scrubbed["payload"]["events"][0]["duration_seconds"] == 0.0
        assert scrubbed["payload"]["report"]["losses"] == [0.1]
        # The original is untouched (scrubbing copies).
        assert payload["duration_seconds"] == 1.25

    def test_report_shape(self, simulator):
        suite = InvariantSuite(simulator.gateway)
        report = suite.report()
        assert report["ok"] is True
        assert set(report["invariants"]) == {
            "envelope_schema",
            "shard_placement",
            "coalesced_bit_identity",
            "monotone_accounting",
            "metrics_accounting",
        }
