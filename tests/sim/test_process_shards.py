"""Simulator determinism with process-backed shards.

The workload simulator's replay oracle (`verify_replay`) is the acceptance
rig for the process executor: the same spec must produce a byte-identical
transcript when adaptations run in worker processes, including under fault
plans that kill those processes mid-run.  A thread-run and a process-run of
the same spec must also match each other byte for byte — the executor is an
implementation detail the transcript cannot see.
"""

import pytest

from repro.sim import WorkloadSpec, run_simulation, verify_replay

from sim_fixtures import make_spec


class TestSpecExecutorField:
    def test_default_is_thread(self, base_spec):
        assert base_spec.executor == "thread"

    def test_round_trips_through_dict(self):
        spec = make_spec(executor="process")
        assert WorkloadSpec.from_dict(spec.to_dict()).executor == "process"

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            make_spec(executor="fiber")


class TestProcessShardReplay:
    def test_verify_replay_with_process_shards(self):
        ok, detail, result = verify_replay(make_spec(executor="process"))
        assert ok, detail
        assert result.ok, result.summary()

    @pytest.mark.parametrize("fault_plan", ["shard_crash", "cache_thrash"])
    def test_verify_replay_with_process_shards_under_faults(self, fault_plan):
        ok, detail, result = verify_replay(
            make_spec(executor="process", fault_plan=fault_plan)
        )
        assert ok, detail
        assert result.ok, result.summary()

    def test_thread_and_process_transcripts_are_byte_identical(self):
        thread_run = run_simulation(make_spec(executor="thread"))
        process_run = run_simulation(make_spec(executor="process"))
        assert thread_run.transcript_text == process_run.transcript_text

    def test_shard_crash_transcript_matches_faultless_run(self):
        # The crash plan fires between ticks (nothing in flight), so killing
        # and respawning real worker processes must not leave a trace.
        faultless = run_simulation(make_spec(executor="process"))
        crashed = run_simulation(
            make_spec(executor="process", fault_plan="shard_crash")
        )
        assert faultless.transcript_text == crashed.transcript_text
