"""Shared spec helpers for the workload-simulator suite.

Specs here always pin short adaptation schedules through
``config_overrides`` so a scenario run costs tens of milliseconds per
adaptation; the registry bundle behind each (task, scale, seed) triple is
built once and cached process-wide, so the whole matrix shares it.
"""

from repro.sim import WorkloadSpec

#: Short, deterministic adaptation schedule for every simulated gateway.
FAST_CONFIG = {
    "adaptation_epochs": 3,
    "min_adaptation_epochs": 1,
    "n_mc_samples": 8,
    "n_segments": 5,
    "early_stop": False,
}


def make_spec(**overrides) -> WorkloadSpec:
    """A small housing/tiny workload; keyword arguments override any field."""
    payload = {
        "task": "housing",
        "scale": "tiny",
        "scheme": "tasfar",
        "seed": 5,
        "n_ticks": 6,
        "n_shards": 2,
        "shard_workers": 2,
        "min_adapt_events": 24,
        "readapt_budget": 48,
        "config_overrides": dict(FAST_CONFIG),
        "fleets": [
            {
                "name": "fleet",
                "n_users": 2,
                "drift": "gradual",
                "batch_size": 12,
                "arrival": {"kind": "bursty", "rate": 0.5, "burst_every": 3, "burst_size": 2},
                "predict_every": 2,
                "predict_rows": 3,
                "predict_duplicates": 1,
                "report_every": 3,
            }
        ],
    }
    payload.update(overrides)
    return WorkloadSpec.from_dict(payload)
