"""Regression: shard restarts must never strand a ``submit_async`` caller.

``Gateway.restart_shard_workers`` used to swap the shard pool and abandon
whatever was still queued on the old one — a caller blocked on
``future.result()`` then hung forever, which is exactly what the
``shard_crash`` fault plan does to a live serving stack.  These tests pin the
fixed contract: every future handed out by ``submit_async`` settles, with a
success envelope or a typed error envelope, under both executors.

Every ``future.result`` call here carries a timeout, so a regression shows up
as a loud ``TimeoutError`` instead of a wedged test suite.
"""

import importlib.util
import threading
import time
from pathlib import Path

import pytest

from repro.core import TasfarConfig
from repro.serve import AdaptRequest, Gateway, ShardRestartedError

_path = Path(__file__).resolve().parent.parent / "runtime" / "test_service.py"
_spec = importlib.util.spec_from_file_location("_runtime_service_fixtures", _path)
_module = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_module)

fast_config = _module.fast_config
make_source = _module.make_source
make_targets = _module.make_targets

RESULT_TIMEOUT = 60.0


@pytest.fixture(scope="module")
def source():
    return make_source()


def make_gateway(source, **kwargs):
    model, calibration = source
    kwargs.setdefault("config", fast_config())
    kwargs.setdefault("n_shards", 1)
    kwargs.setdefault("shard_workers", 1)
    return Gateway(model, calibration, **kwargs)


@pytest.mark.parametrize("executor", ["thread", "process"])
class TestQueuedRequestsResolveOnRestart:
    def test_queued_futures_get_shard_restarted_envelopes(self, source, executor):
        gateway = make_gateway(source, executor=executor)
        targets = make_targets(n_targets=3)
        blocker = threading.Event()
        try:
            # Occupy the shard's single dispatch thread so every subsequent
            # request is deterministically *queued* when the restart lands.
            gateway._dispatch[0]._pool.submit(blocker.wait)
            futures = [
                gateway.submit_async(AdaptRequest(name, data))
                for name, data in targets.items()
            ]
            gateway.restart_shard_workers(0)
            for future, name in zip(futures, targets):
                envelope = future.result(timeout=RESULT_TIMEOUT)
                assert not envelope.ok
                assert envelope.error["type"] == "ShardRestartedError"
                assert envelope.target_id == name
                assert "resubmit" in envelope.error["message"]
        finally:
            blocker.set()
            gateway.close()

    def test_resubmitted_requests_succeed_after_restart(self, source, executor):
        gateway = make_gateway(source, executor=executor)
        name, data = next(iter(make_targets(n_targets=1).items()))
        blocker = threading.Event()
        try:
            baseline = gateway.submit(AdaptRequest(name, data))
            assert baseline.ok, baseline.error
            gateway._dispatch[0]._pool.submit(blocker.wait)
            orphan = gateway.submit_async(AdaptRequest(name, data))
            gateway.restart_shard_workers(0)
            assert not orphan.result(timeout=RESULT_TIMEOUT).ok
            blocker.set()
            # The respawned pool serves the same request to the same bits.
            retry = gateway.submit(AdaptRequest(name, data))
            assert retry.ok, retry.error
            assert (
                retry.payload["report"]["losses"]
                == baseline.payload["report"]["losses"]
            )
        finally:
            blocker.set()
            gateway.close()


class TestRunningRequests:
    def test_thread_executor_lets_running_work_finish(self, source):
        # Threads cannot be killed: a request already *running* at restart
        # time completes and settles its future with a success envelope.
        gateway = make_gateway(source, executor="thread")
        name, data = next(iter(make_targets(n_targets=1).items()))
        try:
            future = gateway.submit_async(AdaptRequest(name, data))
            gateway.restart_shard_workers(0)
            envelope = future.result(timeout=RESULT_TIMEOUT)
            assert envelope.ok or envelope.error["type"] == "ShardRestartedError"
        finally:
            gateway.close()

    def test_process_executor_kills_running_work_promptly(self, source):
        # A long adaptation runs inside a worker process; killing the shard
        # must break it promptly — error envelope, not a partial result and
        # never a hang.
        slow_config = TasfarConfig(
            n_mc_samples=8,
            n_segments=5,
            adaptation_epochs=50_000,
            min_adaptation_epochs=1,
            early_stop=False,
            seed=0,
        )
        gateway = make_gateway(source, executor="process", config=slow_config)
        name, data = next(iter(make_targets(n_targets=1, n_samples=60).items()))
        try:
            start = time.perf_counter()
            future = gateway.submit_async(AdaptRequest(name, data))
            time.sleep(0.5)  # well past worker spawn, far before 50k epochs
            killed = gateway.restart_shard_workers(0)
            assert killed, "process executor should report killed worker PIDs"
            envelope = future.result(timeout=RESULT_TIMEOUT)
            assert not envelope.ok
            assert envelope.error["type"] in ("WorkerCrashError", "ShardRestartedError")
            # Prompt, not after the 50k-epoch schedule ran to completion.
            assert time.perf_counter() - start < RESULT_TIMEOUT / 2
        finally:
            gateway.close()


def test_shard_restarted_error_is_exported():
    assert issubclass(ShardRestartedError, RuntimeError)
