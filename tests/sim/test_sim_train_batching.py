"""Simulator determinism with batched training (``train_batching``).

The transcript is the oracle: enabling stacking must change *nothing* the
transcript can see — same requests, same envelopes, same reports, byte
for byte — because stacked training is bit-identical to serial and the
simulator's wave scheduling preserves per-target request order.  Replay
determinism must also survive stacking combined with the process executor
and a shard-crash fault plan.
"""

import pytest

from repro.sim import WorkloadSpec, run_simulation, verify_replay

from sim_fixtures import make_spec


def stacking_spec(**overrides):
    """A fleet busy enough that same-tick adaptations actually stack."""
    payload = dict(
        seed=3,
        n_ticks=6,
        fleets=[
            {
                "name": "fleet",
                "n_users": 3,
                "drift": "gradual",
                "batch_size": 12,
                "arrival": {"kind": "bursty", "rate": 0.5, "burst_every": 3, "burst_size": 2},
                "adapt_at": 0,
                "predict_every": 2,
                "predict_rows": 3,
                "report_every": 3,
            }
        ],
    )
    payload.update(overrides)
    return make_spec(**payload)


class TestSpecTrainBatchingField:
    def test_default_is_one(self):
        assert make_spec().train_batching == 1

    def test_round_trips_through_dict(self):
        spec = make_spec(train_batching=3)
        assert WorkloadSpec.from_dict(spec.to_dict()).train_batching == 3

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError, match="train_batching"):
            make_spec(train_batching=0).validate()


class TestTranscriptIdentity:
    @pytest.fixture(scope="class")
    def serial(self):
        result = run_simulation(stacking_spec())
        assert result.n_requests > 0 and result.n_ok > 0
        return result

    @pytest.mark.parametrize("train_batching", [2, 4])
    def test_stacked_transcript_matches_serial(self, serial, train_batching):
        stacked = run_simulation(stacking_spec(train_batching=train_batching))
        assert stacked.transcript_text == serial.transcript_text

    def test_stacking_actually_happened(self):
        # The identity above would be vacuous if no stack ever formed:
        # confirm the shard-side stack counters moved.
        result = run_simulation(stacking_spec(train_batching=3))
        counters: dict[str, float] = {}
        for entry in result.metrics["counters"]:
            counters[entry["name"]] = counters.get(entry["name"], 0) + entry["value"]
        assert counters.get("engine.stacks", 0) > 0
        assert counters.get("engine.stack_replicas", 0) >= 2 * counters["engine.stacks"]


def test_replay_determinism_with_stacking_process_and_faults():
    ok, detail, _ = verify_replay(
        stacking_spec(train_batching=3, executor="process", fault_plan="shard_crash")
    )
    assert ok, detail
