"""The metrics_accounting invariant: books that balance, and an oracle
that fires when they don't.

The scenario matrix proves the counters reconcile on healthy runs; the
tests here doctor the registry (phantom increments, lost counts, stuck
queue gauges) and assert the suite notices — an oracle that cannot fire
is no oracle.
"""

import numpy as np
import pytest

from repro.serve import PredictRequest, ReportRequest
from repro.sim import InvariantSuite, RequestRecord, Simulator
from repro.sim.spec import TraceEvent

from sim_fixtures import make_spec


@pytest.fixture(scope="module")
def simulator():
    with Simulator(make_spec(n_ticks=2)) as sim:
        yield sim


def live_records(gateway, requests, tick=0):
    """Submit real requests and wrap the answers the way the simulator does."""
    records = []
    for index, request in enumerate(requests):
        envelope = gateway.submit(request)
        event = TraceEvent(tick, index, request.kind, request.target_id, "{}")
        records.append(RequestRecord(event, request, envelope))
    return records


def probe(rows=3):
    return np.random.default_rng(9).normal(size=(rows, 8))


class TestReconciliation:
    def test_clean_traffic_balances(self, simulator):
        suite = InvariantSuite(simulator.gateway)
        records = live_records(
            simulator.gateway,
            [PredictRequest("fleet-00", probe()), ReportRequest("fleet-00")],
        )
        suite.observe_tick(0, records)
        assert suite.ok
        assert suite.checks["metrics_accounting"] == 1

    def test_requests_in_flight_before_the_suite_are_subtracted(self, simulator):
        # Traffic served *before* the suite attached must not unbalance it:
        # the baseline is captured at construction.
        simulator.gateway.submit(ReportRequest("fleet-00"))
        suite = InvariantSuite(simulator.gateway)
        suite.observe_tick(0, live_records(simulator.gateway, [ReportRequest("fleet-00")]))
        assert suite.ok


class TestOracleFires:
    def test_phantom_request_count_caught(self, simulator):
        suite = InvariantSuite(simulator.gateway)
        records = live_records(simulator.gateway, [ReportRequest("fleet-00")])
        # Doctor: a count with no envelope behind it.
        simulator.gateway.metrics.counter("serve.requests", kind="report")
        suite.observe_tick(0, records)
        violations = [v for v in suite.violations if v.invariant == "metrics_accounting"]
        assert violations
        assert "serve.requests" in violations[0].detail

    def test_lost_error_count_caught(self, simulator):
        suite = InvariantSuite(simulator.gateway)
        records = live_records(
            simulator.gateway,
            [PredictRequest("never-adapted-user", probe(), strict=True)],
        )
        assert not records[0].envelope.ok
        # Doctor: un-count the error the gateway just recorded.
        simulator.gateway.metrics.counter("serve.errors", -1, kind="predict")
        suite.observe_tick(0, records)
        assert any(
            v.invariant == "metrics_accounting" and "serve.errors" in v.detail
            for v in suite.violations
        )

    def test_phantom_adaptation_caught(self, simulator):
        suite = InvariantSuite(simulator.gateway)
        records = live_records(simulator.gateway, [ReportRequest("fleet-00")])
        shard = simulator.gateway.shards[0]
        shard.metrics.counter("service.adaptations", mode="cold")
        suite.observe_tick(0, records)
        assert any(
            v.invariant == "metrics_accounting" and "service.adaptations" in v.detail
            for v in suite.violations
        )

    def test_stuck_queue_depth_gauge_caught(self, simulator):
        suite = InvariantSuite(simulator.gateway)
        simulator.gateway.metrics.gauge_add("serve.queue_depth", 1, shard="0")
        try:
            suite.observe_tick(0, live_records(simulator.gateway, [ReportRequest(None)]))
            assert any(
                v.invariant == "metrics_accounting" and "serve.queue_depth" in v.detail
                for v in suite.violations
            )
        finally:  # undo the doctoring for the other module-scoped tests
            simulator.gateway.metrics.gauge_add("serve.queue_depth", -1, shard="0")

    def test_misattributed_cache_hit_caught(self, simulator):
        suite = InvariantSuite(simulator.gateway)
        records = live_records(
            simulator.gateway,
            # never adapted -> source fallback, counted as a miss
            [PredictRequest("some-stranger-user", probe())],
        )
        assert records[0].envelope.payload["model"] == "source"
        shard_index = simulator.gateway.shard_for("some-stranger-user")
        shard = simulator.gateway.shards[shard_index]
        # Doctor: pretend the miss was a hit.
        shard.metrics.counter("service.cache.misses", -1)
        shard.metrics.counter("service.cache.hits", 1)
        suite.observe_tick(0, records)
        details = [
            v.detail for v in suite.violations if v.invariant == "metrics_accounting"
        ]
        assert any("service.cache.hits" in d for d in details)
        assert any("service.cache.misses" in d for d in details)


class TestDisabledRegistry:
    def test_reconciliation_skipped_when_metrics_off(self, simulator):
        simulator.gateway.set_metrics_enabled(False)
        try:
            suite = InvariantSuite(simulator.gateway)
            suite.observe_tick(
                0, live_records(simulator.gateway, [ReportRequest("fleet-00")])
            )
            assert suite.ok
            assert suite.checks["metrics_accounting"] == 0
        finally:
            simulator.gateway.set_metrics_enabled(True)
