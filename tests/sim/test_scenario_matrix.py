"""The standing integration matrix: tasks × schemes × fault plans.

Every cell replays a seeded workload through a real gateway and requires all
invariants green; selected cells additionally assert replay determinism
(two fresh runs, byte-identical transcripts).  This file is the pytest face
of `repro simulate` — the CI ``sim-matrix`` job runs the same grid through
the CLI.
"""

import pytest

from repro.sim import fault_plan_names, run_simulation, verify_replay

from sim_fixtures import make_spec


def small_spec(task, scheme, fault_plan, **overrides):
    overrides.setdefault("n_ticks", 4)
    return make_spec(
        task=task,
        scheme=scheme,
        fault_plan=fault_plan,
        fleets=[
            {
                "name": "mix",
                "n_users": 2,
                "drift": "gradual",
                "batch_size": 12,
                "arrival": {"kind": "bursty", "rate": 0.5, "burst_every": 2, "burst_size": 1},
                "predict_every": 2,
                "predict_rows": 3,
                "predict_duplicates": 1,
                "report_every": 2,
            }
        ],
        **overrides,
    )


class TestScenarioMatrix:
    @pytest.mark.parametrize("task", ["housing", "taxi"])
    @pytest.mark.parametrize("scheme", ["tasfar", "mmd"])
    def test_tasks_by_schemes_all_invariants_green(self, task, scheme):
        result = run_simulation(small_spec(task, scheme, "none"))
        assert result.ok, result.invariant_report
        assert result.n_requests > 0
        assert result.kind_counts.get("stream", 0) > 0
        assert result.kind_counts.get("predict", 0) > 0

    @pytest.mark.parametrize("fault_plan", sorted(fault_plan_names()))
    def test_every_shipped_fault_plan_keeps_invariants(self, fault_plan):
        result = run_simulation(small_spec("housing", "tasfar", fault_plan))
        assert result.ok, result.invariant_report
        if fault_plan != "none":
            assert result.faults, f"{fault_plan} injected nothing"

    @pytest.mark.parametrize(
        "task, scheme, fault_plan",
        [
            ("housing", "tasfar", "none"),
            ("housing", "tasfar", "wire_chaos"),
            ("taxi", "mmd", "cache_thrash"),
        ],
    )
    def test_replay_determinism(self, task, scheme, fault_plan):
        ok, detail, result = verify_replay(small_spec(task, scheme, fault_plan))
        assert ok, detail
        assert result.n_requests == len(result.transcript_lines)

    def test_adaptations_actually_happen(self):
        """The matrix must exercise the training hot path, not just routing."""
        result = run_simulation(small_spec("housing", "tasfar", "none", n_ticks=6))
        import json

        adapted = [
            json.loads(line)["envelope"]
            for line in result.transcript_lines
            if json.loads(line)["envelope"]["kind"] == "stream"
            and json.loads(line)["envelope"]["ok"]
            and json.loads(line)["envelope"]["payload"]["event"]["action"]
            in ("cold_adapt", "warm_adapt")
        ]
        assert adapted, "no stream batch ever triggered an adaptation"

    def test_strict_predicts_error_before_adaptation(self):
        spec = make_spec(
            n_ticks=2,
            min_adapt_events=10_000,  # nothing ever adapts
            fleets=[
                {
                    "name": "s",
                    "n_users": 1,
                    "arrival": {"kind": "every", "every": 1},
                    "predict_every": 1,
                    "strict_predict": True,
                }
            ],
        )
        result = run_simulation(spec)
        assert result.ok, result.invariant_report
        import json

        predict_envelopes = [
            json.loads(line)["envelope"]
            for line in result.transcript_lines
            if json.loads(line)["envelope"]["kind"] == "predict"
        ]
        assert predict_envelopes
        assert all(not e["ok"] for e in predict_envelopes)
        assert all(e["error"]["type"] == "KeyError" for e in predict_envelopes)
