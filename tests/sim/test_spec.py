"""Tests for WorkloadSpec parsing, validation, and trace compilation."""

import json

import pytest

from repro.sim import ArrivalSpec, WorkloadSpec, compile_trace, load_spec

from sim_fixtures import make_spec


class TestSpecValidation:
    def test_round_trips_through_dict_form(self):
        spec = make_spec()
        clone = WorkloadSpec.from_dict(spec.to_dict())
        assert clone == spec

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(ValueError, match="unknown spec field"):
            WorkloadSpec.from_dict({"task": "housing", "warp_speed": 9})

    def test_unknown_fleet_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fleet field"):
            make_spec(fleets=[{"name": "f", "n_userz": 3}])

    def test_unknown_task_scheme_and_fault_plan_rejected(self):
        with pytest.raises(ValueError, match="unknown task"):
            make_spec(task="not_a_task")
        with pytest.raises(ValueError, match="unknown scheme"):
            make_spec(scheme="not_a_scheme")
        with pytest.raises(ValueError, match="unknown fault plan"):
            make_spec(fault_plan="not_a_plan")
        with pytest.raises(ValueError, match="unknown scale"):
            make_spec(scale="hueg")

    def test_typoed_config_override_rejected(self):
        with pytest.raises(ValueError, match="unknown config_overrides"):
            make_spec(config_overrides={"adaptaton_epochs": 3})

    def test_bad_arrival_and_drift_rejected(self):
        with pytest.raises(ValueError, match="arrival kind"):
            ArrivalSpec(kind="warp").validate()
        with pytest.raises(ValueError, match="fleet drift"):
            make_spec(fleets=[{"name": "f", "drift": "sideways"}])

    def test_duplicate_fleet_names_rejected(self):
        with pytest.raises(ValueError, match="fleet names must be unique"):
            make_spec(fleets=[{"name": "a"}, {"name": "a"}])

    def test_cache_capacity_defaults_to_fleet_size(self):
        spec = make_spec(fleets=[{"name": "a", "n_users": 3}, {"name": "b", "n_users": 4}])
        assert spec.n_users == 7
        assert spec.cache_capacity() == 7
        assert make_spec(max_cached_models=2).cache_capacity() == 2

    def test_load_spec_rejects_bad_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_spec(str(path))

    def test_load_spec_round_trip(self, tmp_path):
        spec = make_spec()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
        assert load_spec(str(path)) == spec

    def test_shipped_example_spec_loads(self):
        spec = load_spec("examples/specs/bursty_drift.json")
        assert spec.task == "housing"
        assert spec.fleets[0].arrival.kind == "bursty"


class TestTraceCompilation:
    def test_compilation_is_deterministic(self, base_spec):
        first = compile_trace(base_spec)
        second = compile_trace(base_spec)
        assert [e.line for tick in first.ticks for e in tick] == [
            e.line for tick in second.ticks for e in tick
        ]
        assert first.users == second.users

    def test_seed_changes_the_trace(self, base_spec):
        changed = base_spec.replace(seed=base_spec.seed + 1)
        assert [e.line for tick in compile_trace(base_spec).ticks for e in tick] != [
            e.line for tick in compile_trace(changed).ticks for e in tick
        ]

    def test_every_line_is_a_decodable_wire_request(self, base_spec):
        from repro.serve import decode_request

        trace = compile_trace(base_spec)
        assert trace.n_events > 0
        for events in trace.ticks:
            for event in events:
                request = decode_request(json.loads(event.line))
                assert request.kind == event.kind

    def test_users_cycle_through_scenarios(self):
        spec = make_spec(fleets=[{"name": "f", "n_users": 5}])
        trace = compile_trace(spec)
        assert len(trace.users) == 5
        assert set(trace.users) == {f"f-{i:02d}" for i in range(5)}

    def test_unknown_scenario_name_rejected(self):
        spec = make_spec(fleets=[{"name": "f", "scenarios": ["no_such_segment"]}])
        with pytest.raises(ValueError, match="unknown scenario"):
            compile_trace(spec)

    def test_final_report_lands_on_last_tick(self, base_spec):
        trace = compile_trace(base_spec)
        fleet_wide = [
            e for e in trace.ticks[-1] if e.kind == "report" and e.user is None
        ]
        assert len(fleet_wide) == 1

    def test_bursty_arrival_synchronizes_the_fleet(self):
        spec = make_spec(
            n_ticks=6,
            fleets=[
                {
                    "name": "f",
                    "n_users": 3,
                    "arrival": {"kind": "bursty", "rate": 0.0, "burst_every": 3, "burst_size": 2},
                    "predict_every": 0,
                    "report_every": 0,
                }
            ],
            final_report=False,
        )
        trace = compile_trace(spec)
        counts = [len(events) for events in trace.ticks]
        # Bursts land on ticks 2 and 5 (every third tick); nothing else flows.
        assert counts == [0, 0, 6, 0, 0, 6]

    def test_every_arrival_staggers_users(self):
        spec = make_spec(
            n_ticks=4,
            fleets=[
                {
                    "name": "f",
                    "n_users": 2,
                    "arrival": {"kind": "every", "every": 2},
                    "predict_every": 0,
                }
            ],
            final_report=False,
        )
        trace = compile_trace(spec)
        by_tick = [[e.user for e in events] for events in trace.ticks]
        assert by_tick == [["f-00"], ["f-01"], ["f-00"], ["f-01"]]
