"""Tests for the fault-plan registry and the shipped fault plans."""

import json

import numpy as np
import pytest

from repro.sim import (
    Simulator,
    compile_trace,
    create_fault_plan,
    fault_plan_names,
    register_fault_plan,
    run_simulation,
)
from repro.sim.faults import FAULT_PLANS, FaultPlan

from sim_fixtures import make_spec


class TestRegistry:
    def test_shipped_plans_registered(self):
        assert set(fault_plan_names()) >= {"none", "wire_chaos", "shard_crash", "cache_thrash"}

    def test_unknown_plan_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan"):
            create_fault_plan("gremlins")

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown option"):
            create_fault_plan("shard_crash", cadence=2)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_fault_plan("none", FaultPlan)

    def test_third_party_plan(self):
        class QuietPlan(FaultPlan):
            name = "quiet"

        register_fault_plan("quiet", QuietPlan)
        try:
            assert isinstance(create_fault_plan("quiet"), QuietPlan)
        finally:
            FAULT_PLANS.pop("quiet")


class TestWireChaos:
    def test_mutations_are_deterministic_and_visible(self, base_spec):
        plan_a = create_fault_plan("wire_chaos")
        plan_b = create_fault_plan("wire_chaos")
        rng = lambda: np.random.default_rng(3)  # noqa: E731
        trace_a = plan_a.mutate_trace(compile_trace(base_spec), rng())
        trace_b = plan_b.mutate_trace(compile_trace(base_spec), rng())
        assert [e.line for t in trace_a.ticks for e in t] == [
            e.line for t in trace_b.ticks for e in t
        ]
        notes = {e.note for t in trace_a.ticks for e in t if e.note}
        assert notes >= {"duplicate", "junk", "corrupt"}
        assert plan_a.log == plan_b.log

    def test_corrupt_lines_fail_the_codec_not_the_stack(self, base_spec):
        from repro.serve import decode_request

        plan = create_fault_plan("wire_chaos", corrupt_rate=1.0, junk_rate=0.0,
                                 duplicate_rate=0.0, shuffle=False)
        trace = plan.mutate_trace(compile_trace(base_spec), np.random.default_rng(0))
        corrupted = [e for t in trace.ticks for e in t if e.note == "corrupt"]
        assert corrupted
        for event in corrupted:
            with pytest.raises(ValueError):
                decode_request(json.loads(event.line))

    def test_chaos_run_answers_every_line_and_keeps_invariants(self):
        spec = make_spec(fault_plan="wire_chaos", n_ticks=4)
        result = run_simulation(spec)
        assert result.ok, result.invariant_report
        assert result.n_errors > 0  # junk + corruption produced error envelopes
        assert result.n_requests == len(result.transcript_lines)
        assert any(f["fault"] == "junk" for f in result.faults)


class TestShardCrash:
    def test_crash_and_respawn_leaves_the_transcript_unchanged(self):
        calm = run_simulation(make_spec(n_ticks=4))
        crashed = run_simulation(make_spec(n_ticks=4, fault_plan="shard_crash",
                                           fault_options={"every": 2}))
        assert crashed.ok, crashed.invariant_report
        assert any(f["fault"] == "shard_crash" for f in crashed.faults)
        # Worker crashes must be invisible in the answers: state survives,
        # placement is stable, and the envelope stream is byte-identical.
        assert crashed.transcript_text == calm.transcript_text

    def test_restart_validates_shard_index(self, base_spec):
        with Simulator(base_spec) as simulator:
            with pytest.raises(ValueError, match="shard must be in"):
                simulator.gateway.restart_shard_workers(99)


class TestCacheThrash:
    def test_evictions_force_cold_readapts_and_source_fallbacks(self):
        spec = make_spec(n_ticks=6, fault_plan="cache_thrash", fault_options={"every": 2})
        result = run_simulation(spec)
        assert result.ok, result.invariant_report
        assert any(f["fault"] == "cache_thrash" and f["evicted"] for f in result.faults)
        # After a mid-run eviction at least one probe must have fallen back
        # to the source model (the adapted model was gone at predict time).
        models = [
            json.loads(line)["envelope"]["payload"]["model"]
            for line in result.transcript_lines
            if json.loads(line)["envelope"]["kind"] == "predict"
            and json.loads(line)["envelope"]["ok"]
        ]
        assert "source" in models

    def test_service_evict_api(self):
        """The seam the plan uses: evict() drops models, keeps reports."""
        import importlib.util
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "runtime" / "test_service.py"
        spec = importlib.util.spec_from_file_location("_svc_fixtures", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        from repro.runtime import AdaptationService

        model, calibration = module.make_source()
        service = AdaptationService(model, calibration, config=module.fast_config())
        targets = module.make_targets(n_targets=2)
        service.adapt_many(targets)
        names = list(targets)
        assert service.evict(names[0]) == [names[0]]
        assert service.model_for(names[0]) is None
        assert service.report_for(names[0]) is not None
        assert service.evict("unknown") == []
        assert sorted(service.evict()) == sorted(names[1:])
        assert service.cached_targets == []
        assert service.n_adapted == 2
