"""Tests for the Page-Hinkley drift detector and the density drift monitor."""

import numpy as np
import pytest

from repro.core import LabelDensityMap
from repro.streaming import DensityDriftMonitor, DriftDetector


class TestDriftDetector:
    def test_stationary_series_never_fires(self):
        detector = DriftDetector(threshold=0.5, delta=0.02, min_samples=3)
        rng = np.random.default_rng(0)
        for _ in range(200):
            assert not detector.update(0.2 + 0.01 * rng.standard_normal())

    def test_mean_jump_fires(self):
        detector = DriftDetector(threshold=0.5, delta=0.02, min_samples=3)
        for _ in range(20):
            assert not detector.update(0.2)
        fired_at = None
        for step in range(20):
            if detector.update(0.6):
                fired_at = step
                break
        assert fired_at is not None and fired_at < 10

    def test_min_samples_gates_early_alarms(self):
        detector = DriftDetector(threshold=0.01, delta=0.0, min_samples=5)
        values = [0.0, 1.0, 1.0, 1.0]
        assert not any(detector.update(value) for value in values)

    def test_reset_forgets_history(self):
        detector = DriftDetector(threshold=0.3, delta=0.0, min_samples=2)
        for _ in range(10):
            detector.update(0.1)
        for _ in range(10):
            detector.update(0.9)
        assert detector.drifted
        detector.reset()
        assert not detector.drifted
        assert detector.statistic == 0.0
        assert detector.n_observations == 0

    def test_shifts_below_delta_are_tolerated(self):
        detector = DriftDetector(threshold=0.5, delta=0.1, min_samples=3)
        for _ in range(50):
            assert not detector.update(0.2)
        for _ in range(100):
            fired = detector.update(0.25)  # +0.05 shift, below delta
        assert not fired

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DriftDetector(threshold=0.0)
        with pytest.raises(ValueError):
            DriftDetector(delta=-0.1)
        with pytest.raises(ValueError):
            DriftDetector(min_samples=0)
        detector = DriftDetector()
        with pytest.raises(ValueError):
            detector.update(float("nan"))


def reference_map(center):
    edges = [np.linspace(-4.0, 4.0, 17)]
    labels = np.full((60, 1), center) + 0.2 * np.random.default_rng(0).standard_normal((60, 1))
    return LabelDensityMap.from_labels(labels, edges)


class TestDensityDriftMonitor:
    def make_monitor(self):
        return DensityDriftMonitor(
            reference_map(-1.5),
            DriftDetector(threshold=0.3, delta=0.05, min_samples=2),
            window_decay=0.3,
        )

    def observe_regime(self, monitor, center, n_batches, seed=1):
        rng = np.random.default_rng(seed)
        last = None
        for _ in range(n_batches):
            centers = center + 0.2 * rng.standard_normal((12, 1))
            last = monitor.observe(centers, np.full((12, 1), 0.3))
            if last.drifted:
                break
        return last

    def test_stationary_stream_stays_quiet(self):
        monitor = self.make_monitor()
        last = self.observe_regime(monitor, -1.5, n_batches=25)
        assert not last.drifted

    def test_regime_change_fires(self):
        monitor = self.make_monitor()
        self.observe_regime(monitor, -1.5, n_batches=8)
        last = self.observe_regime(monitor, 1.5, n_batches=15, seed=2)
        assert last.drifted
        assert last.distance > 0.5

    def test_rebase_silences_the_alarm(self):
        monitor = self.make_monitor()
        self.observe_regime(monitor, -1.5, n_batches=8)
        self.observe_regime(monitor, 1.5, n_batches=15, seed=2)
        assert monitor.last_observation.drifted
        monitor.rebase(reference_map(1.5))
        assert monitor.last_observation is None
        last = self.observe_regime(monitor, 1.5, n_batches=10, seed=3)
        assert not last.drifted
