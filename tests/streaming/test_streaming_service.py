"""Tests for the StreamingAdaptationService."""

import numpy as np
import pytest

import repro.nn as nn
from repro.core import Tasfar, TasfarConfig
from repro.streaming import StreamingAdaptationService


def fast_config():
    return TasfarConfig(
        n_mc_samples=8,
        n_segments=5,
        adaptation_epochs=4,
        min_adaptation_epochs=1,
        early_stop=False,
        seed=0,
    )


@pytest.fixture(scope="module")
def source():
    rng = np.random.default_rng(0)
    weights = np.array([1.0, -0.5, 0.25, 2.0])
    inputs = rng.normal(size=(160, 4))
    targets = inputs @ weights + 0.1 * rng.normal(size=160)
    model = nn.build_mlp(4, 1, hidden_dims=(16, 8), dropout=0.2, seed=0)
    nn.Trainer(model, lr=3e-3).fit(
        nn.ArrayDataset(inputs, targets), epochs=15, batch_size=32, rng=rng
    )
    calibration = Tasfar(fast_config()).calibrate_on_source(model, inputs, targets)
    return model, calibration


def build_service(source, **kwargs):
    model, calibration = source
    kwargs.setdefault("config", fast_config())
    kwargs.setdefault("min_adapt_events", 32)
    kwargs.setdefault("readapt_budget", 200)
    kwargs.setdefault("warm_epochs", 2)
    kwargs.setdefault("drift_min_batches", 2)
    return StreamingAdaptationService(model, calibration, **kwargs)


def batches(loc, n_batches, batch_size=16, seed=100):
    rng = np.random.default_rng(seed)
    return [rng.normal(loc=loc, size=(batch_size, 4)) for _ in range(n_batches)]


def stripped(events):
    """Event dicts without the wall-clock field (not comparable across runs)."""
    rows = [event.to_dict() for event in events]
    for row in rows:
        row.pop("duration_seconds")
    return rows


class TestBufferingAndColdAdapt:
    def test_small_batches_only_buffer(self, source):
        service = build_service(source, min_adapt_events=64)
        event = service.ingest("user", batches(0.0, 1)[0])
        assert event.action == "buffered"
        assert event.trigger is None
        assert event.buffered == 16
        assert service.report_for("user") is None
        assert service.model_for("user") is None

    def test_warmup_threshold_triggers_cold_adapt(self, source):
        service = build_service(source, min_adapt_events=32)
        events = [service.ingest("user", batch) for batch in batches(0.0, 2)]
        assert [event.action for event in events] == ["buffered", "cold_adapt"]
        assert events[-1].trigger == "warmup"
        assert events[-1].buffered == 0
        report = service.report_for("user")
        assert report is not None
        assert report.n_samples == 32
        assert report.extra["mode"] == "cold"
        assert service.model_for("user") is not None

    def test_all_uncertain_buffer_defers_adaptation_instead_of_crashing(self, source):
        """A window with zero confident samples must not kill the stream."""
        service = build_service(source, min_adapt_events=32)
        wild = np.random.default_rng(70).normal(scale=60.0, size=(32, 4))
        service.ingest("user", wild[:16])
        event = service.ingest("user", wild[16:])
        assert event.action == "adapt_failed"
        assert event.trigger == "warmup"
        assert event.buffered == 32  # the buffer is kept for a retry
        assert service.report_for("user") is None
        # Once confident data arrives, the retry succeeds.
        recovered = service.ingest("user", batches(0.0, 1, seed=71)[0])
        assert recovered.action == "cold_adapt"
        assert service.report_for("user") is not None

    def test_invalid_batches_rejected(self, source):
        service = build_service(source)
        with pytest.raises(ValueError):
            service.ingest("user", np.zeros((0, 4)))
        with pytest.raises(ValueError):
            service.ingest("user", np.zeros(4))

    def test_invalid_parameters_rejected(self, source):
        with pytest.raises(ValueError):
            build_service(source, min_adapt_events=0)
        with pytest.raises(ValueError):
            build_service(source, readapt_budget=0)
        with pytest.raises(ValueError):
            build_service(source, warm_epochs=0)
        with pytest.raises(ValueError):
            build_service(source, readapt_budget=100, max_buffer_events=50)

    def test_buffer_is_capped_by_dropping_oldest_batches(self, source):
        """A target that can never adapt must not hoard the whole stream."""
        service = build_service(
            source, min_adapt_events=10_000, readapt_budget=10_000, max_buffer_events=10_000
        )
        # Override after construction to keep the floor check simple: cap at
        # 4 batches' worth of events.
        service.max_buffer_events = 64
        events = [service.ingest("user", batch) for batch in batches(0.0, 10)]
        assert events[-1].buffered == 64
        assert events[-1].total_events == 160  # dropping doesn't rewrite history


class TestReadaptation:
    def test_budget_triggers_warm_readapt(self, source):
        service = build_service(source, min_adapt_events=32, readapt_budget=48)
        all_events = [service.ingest("user", batch) for batch in batches(0.0, 6)]
        actions = [event.action for event in all_events]
        assert actions[1] == "cold_adapt"
        assert "warm_adapt" in actions[2:]
        warm = next(event for event in all_events if event.action == "warm_adapt")
        assert warm.trigger == "budget"
        report = service.report_for("user")
        assert report.extra["mode"] == "warm"
        assert len(report.losses) <= 2  # the warm schedule, not the cold one
        stats = service.stream_stats("user")
        assert stats["cold_adaptations"] == 1
        assert stats["warm_adaptations"] >= 1

    def test_drift_triggers_warm_readapt_before_budget(self, source):
        service = build_service(
            source,
            min_adapt_events=32,
            readapt_budget=10_000,
            drift_threshold=0.4,
            drift_delta=0.05,
        )
        for batch in batches(0.0, 4, seed=10):
            service.ingest("user", batch)
        assert service.stream_stats("user")["cold_adaptations"] == 1
        drift_events = []
        for batch in batches(2.5, 20, seed=11):  # strong covariate shift
            event = service.ingest("user", batch)
            drift_events.append(event)
            if event.action != "buffered":
                break
        assert drift_events[-1].action == "warm_adapt"
        assert drift_events[-1].trigger == "drift"
        assert drift_events[-1].drifted

    def test_monitor_rebases_after_readapt(self, source):
        """After re-adapting to the new regime, the detector goes quiet again."""
        service = build_service(
            source, min_adapt_events=32, readapt_budget=10_000, drift_threshold=0.4
        )
        for batch in batches(0.0, 4, seed=20):
            service.ingest("user", batch)
        for batch in batches(2.5, 20, seed=21):
            if service.ingest("user", batch).action != "buffered":
                break
        post = [service.ingest("user", batch) for batch in batches(2.5, 6, seed=22)]
        assert all(event.action == "buffered" for event in post)

    def test_evicted_model_falls_back_to_cold_readapt(self, source):
        service = build_service(source, min_adapt_events=32, readapt_budget=48, max_cached_models=1)
        for batch in batches(0.0, 2, seed=30):
            service.ingest("user_a", batch)
        for batch in batches(0.3, 2, seed=31):
            service.ingest("user_b", batch)  # evicts user_a's model
        assert service.model_for("user_a") is None
        events = [service.ingest("user_a", batch) for batch in batches(0.0, 4, seed=32)]
        readapt = next(event for event in events if event.action != "buffered")
        assert readapt.action == "cold_adapt"
        assert readapt.trigger in ("budget", "drift")
        assert service.report_for("user_a").extra["mode"] == "cold"


class TestDeterminism:
    def test_replaying_a_stream_reproduces_events_and_models(self, source):
        stream = batches(0.0, 3, seed=40) + batches(2.0, 6, seed=41)
        one = build_service(source, readapt_budget=64)
        two = build_service(source, readapt_budget=64)
        for batch in stream:
            one.ingest("user", batch)
        for batch in stream:
            two.ingest("user", batch)
        assert stripped(one.events_for("user")) == stripped(two.events_for("user"))
        assert one.report_for("user").losses == two.report_for("user").losses
        probe = np.random.default_rng(0).normal(size=(8, 4))
        np.testing.assert_array_equal(one.predict("user", probe), two.predict("user", probe))

    def test_parallel_ingest_matches_serial_per_target(self, source):
        fleet_stream = {
            f"user_{index}": batches(0.2 * index, 5, seed=50 + index) for index in range(3)
        }
        serial = build_service(source, readapt_budget=48)
        for step in range(5):
            for name, stream in fleet_stream.items():
                serial.ingest(name, stream[step])
        parallel = build_service(source, readapt_budget=48)
        for step in range(5):
            parallel.ingest_many(
                {name: stream[step] for name, stream in fleet_stream.items()}, jobs=3
            )
        for name in fleet_stream:
            assert stripped(serial.events_for(name)) == stripped(parallel.events_for(name))
            assert serial.report_for(name).losses == parallel.report_for(name).losses

    def test_invalid_jobs_rejected(self, source):
        service = build_service(source)
        with pytest.raises(ValueError):
            service.ingest_many({"user": batches(0.0, 1)[0]}, jobs=0)


class TestIntrospection:
    def test_event_table_covers_all_targets(self, source):
        service = build_service(source)
        service.ingest("a", batches(0.0, 1, seed=60)[0])
        service.ingest("b", batches(0.0, 1, seed=61)[0])
        table = service.event_table()
        assert {row["target_id"] for row in table} == {"a", "b"}
        assert all(isinstance(row, dict) for row in table)
        assert service.stream_ids() == ["a", "b"]

    def test_event_is_json_safe(self, source):
        import json

        service = build_service(source)
        event = service.ingest("user", batches(0.0, 1)[0])
        json.dumps(event.to_dict())

    def test_queries_for_unknown_ids_do_not_register_streams(self, source):
        service = build_service(source)
        stats = service.stream_stats("ghost")
        assert stats["total_events"] == 0
        assert stats["steps"] == 0
        assert service.events_for("ghost") == []
        assert service.stream_ids() == []  # asking about an id must not create it
