"""Equivalence and decay properties of the OnlineDensityMap."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LabelDensityMap
from repro.streaming import OnlineDensityMap


def edges_for(n_dims):
    """A modest fixed grid per dimensionality (7 and 5 cells)."""
    if n_dims == 1:
        return [np.linspace(-3.0, 3.0, 8)]
    return [np.linspace(-3.0, 3.0, 8), np.linspace(-2.0, 2.0, 6)]


def chunk(array, boundaries):
    """Split ``array`` at the given sorted interior boundaries."""
    return [part for part in np.split(array, boundaries) if len(part)]


@st.composite
def label_streams(draw):
    """A random label stream with random chunk boundaries, 1-D or 2-D."""
    n_dims = draw(st.integers(min_value=1, max_value=2))
    n = draw(st.integers(min_value=1, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    labels = rng.normal(scale=1.5, size=(n, n_dims))
    n_cuts = draw(st.integers(min_value=0, max_value=min(5, n - 1)))
    boundaries = sorted(rng.choice(np.arange(1, n), size=n_cuts, replace=False)) if n_cuts else []
    return n_dims, labels, list(boundaries)


class TestLabelEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(label_streams())
    def test_chunked_ingest_matches_from_labels_bitwise(self, stream):
        """decay=0 chunked label ingest == batch from_labels, bit for bit."""
        n_dims, labels, boundaries = stream
        edges = edges_for(n_dims)
        online = OnlineDensityMap([edge.copy() for edge in edges])
        for part in chunk(labels, boundaries):
            online.update_labels(part)
        batch = LabelDensityMap.from_labels(labels, [edge.copy() for edge in edges])
        np.testing.assert_array_equal(online.snapshot().densities, batch.densities)

    @settings(max_examples=40, deadline=None)
    @given(label_streams())
    def test_chunk_order_does_not_change_final_map(self, stream):
        """Reordering the ingest chunks leaves the final map bitwise unchanged."""
        n_dims, labels, boundaries = stream
        edges = edges_for(n_dims)
        parts = chunk(labels, boundaries)
        forward = OnlineDensityMap([edge.copy() for edge in edges])
        for part in parts:
            forward.update_labels(part)
        backward = OnlineDensityMap([edge.copy() for edge in edges])
        for part in reversed(parts):
            backward.update_labels(part)
        np.testing.assert_array_equal(
            forward.snapshot().densities, backward.snapshot().densities
        )
        assert forward.n_events == backward.n_events == len(labels)


class TestSoftEquivalence:
    @pytest.mark.parametrize("n_dims", [1, 2])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_chunked_soft_ingest_matches_batch_add_instances(self, n_dims, seed):
        """decay=0 chunked soft updates match one batch accumulation."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 50))
        centers = rng.normal(size=(n, n_dims))
        sigmas = rng.uniform(0.1, 0.8, size=(n, n_dims))
        edges = edges_for(n_dims)

        online = OnlineDensityMap([edge.copy() for edge in edges])
        boundaries = sorted(rng.choice(np.arange(1, n), size=min(3, n - 1), replace=False))
        for center_part, sigma_part in zip(chunk(centers, boundaries), chunk(sigmas, boundaries)):
            online.update(center_part, sigma_part)

        batch = LabelDensityMap([edge.copy() for edge in edges])
        batch.add_instances(centers, sigmas)
        batch.normalize()
        np.testing.assert_allclose(
            online.snapshot().densities, batch.densities, rtol=1e-12, atol=1e-15
        )

    def test_chunk_order_invariance_soft(self):
        rng = np.random.default_rng(3)
        centers = rng.normal(size=(24, 1))
        sigmas = rng.uniform(0.1, 0.5, size=(24, 1))
        parts = np.split(np.arange(24), [7, 13, 20])
        forward = OnlineDensityMap(edges_for(1))
        for part in parts:
            forward.update(centers[part], sigmas[part])
        backward = OnlineDensityMap(edges_for(1))
        for part in reversed(parts):
            backward.update(centers[part], sigmas[part])
        np.testing.assert_allclose(
            forward.snapshot().densities, backward.snapshot().densities, rtol=1e-12
        )


class TestDecay:
    def test_decay_forgets_old_regime(self):
        """With decay, the map tracks the recent regime instead of averaging."""
        edges = [np.linspace(-4.0, 4.0, 17)]
        old = np.full((40, 1), -2.0)
        new = np.full((40, 1), 2.0)
        sigma = np.full((40, 1), 0.3)

        decayed = OnlineDensityMap([edges[0].copy()], decay=0.5)
        plain = OnlineDensityMap([edges[0].copy()], decay=0.0)
        for online in (decayed, plain):
            for start in range(0, 40, 8):
                online.update(old[start : start + 8], sigma[:8])
            for start in range(0, 40, 8):
                online.update(new[start : start + 8], sigma[:8])

        new_map = LabelDensityMap([edges[0].copy()])
        new_map.add_instances(new, sigma)
        new_map.normalize()
        assert decayed.total_variation(new_map) < plain.total_variation(new_map)
        assert decayed.total_variation(new_map) < 0.1

    def test_invalid_decay_rejected(self):
        with pytest.raises(ValueError):
            OnlineDensityMap(edges_for(1), decay=1.0)
        with pytest.raises(ValueError):
            OnlineDensityMap(edges_for(1), decay=-0.1)


class TestApi:
    def test_from_map_shares_grid_but_not_mass(self):
        reference = LabelDensityMap.from_labels(
            np.random.default_rng(0).normal(size=(30, 1)), edges_for(1)
        )
        online = OnlineDensityMap.from_map(reference)
        assert online.shape == reference.shape
        assert online.total_mass == 0.0
        np.testing.assert_array_equal(online.edges[0], reference.edges[0])
        online.edges[0][0] -= 1.0  # the copy must not alias the reference grid
        assert reference.edges[0][0] != online.edges[0][0]

    def test_total_variation_bounds_and_shape_check(self):
        online = OnlineDensityMap(edges_for(1))
        online.update_labels(np.full((10, 1), -2.5))
        far = LabelDensityMap.from_labels(np.full((10, 1), 2.5), edges_for(1))
        assert online.total_variation(far) == pytest.approx(1.0)
        near = LabelDensityMap.from_labels(np.full((10, 1), -2.5), edges_for(1))
        assert online.total_variation(near) == pytest.approx(0.0)
        other_grid = LabelDensityMap([np.linspace(0, 1, 4)])
        with pytest.raises(ValueError):
            online.total_variation(other_grid)

    def test_reset_clears_counters_and_mass(self):
        online = OnlineDensityMap(edges_for(1))
        online.update_labels(np.zeros((5, 1)))
        online.reset()
        assert online.n_events == 0
        assert online.total_mass == 0.0

    def test_label_dim_mismatch_rejected(self):
        online = OnlineDensityMap(edges_for(1))
        with pytest.raises(ValueError):
            online.update_labels(np.zeros((5, 2)))
