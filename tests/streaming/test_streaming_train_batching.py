"""``StreamingAdaptationService.ingest_many`` with ``train_batching``.

A streamed fleet is where stacking pays off: many targets cross their
adaptation thresholds on the same round.  The contract is unchanged from
the one-shot service — any stacking factor, on the thread or process
pool, reproduces the serial run exactly: same decision events, stream
stats, reports and model bytes, across both cold and warm adaptations.
"""

import numpy as np
import pytest
from engine.scheme_oracle_fixture import SCHEME_KWARGS, build_fixture, fast_config

from repro.engine.strategy import BaselineStrategy, SourceResources
from repro.nn import parameter_bytes
from repro.streaming.service import StreamingAdaptationService

N_TARGETS = 5
ROUNDS = 6


@pytest.fixture(scope="module")
def fixture():
    return build_fixture()


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(17)
    return [
        {f"t{k}": rng.normal(loc=0.3 + 0.2 * r, size=(12, 4)) for k in range(N_TARGETS)}
        for r in range(ROUNDS)
    ]


def event_key(event):
    payload = event.to_dict()
    payload.pop("duration_seconds")
    return payload


def build_service(fixture, scheme):
    kwargs = dict(
        config=fast_config(),
        min_adapt_events=24,
        readapt_budget=24,
        max_cached_models=8,
    )
    if scheme != "tasfar":
        kwargs["strategy"] = BaselineStrategy(scheme, **SCHEME_KWARGS[scheme]).prepare(
            fixture["model"],
            SourceResources(
                source_data=fixture["source_data"], calibration=fixture["calibration"]
            ),
        )
    return StreamingAdaptationService(fixture["model"], fixture["calibration"], **kwargs)


def run_stream(fixture, stream, scheme, train_batching=1, process=False):
    service = build_service(fixture, scheme)
    if process:
        service.use_process_workers(2)
    try:
        for batches in stream:
            service.ingest_many(batches, train_batching=train_batching)
        target_ids = sorted(stream[0])
        events = {tid: [event_key(e) for e in service.events_for(tid)] for tid in target_ids}
        stats = {tid: service.stream_stats(tid) for tid in target_ids}
        reports = {
            tid: {k: v for k, v in report.to_dict().items() if k != "duration_seconds"}
            for tid, report in service.reports().items()
        }
        models = {tid: parameter_bytes(service.model_for(tid)) for tid in target_ids}
    finally:
        service.close()
    return {"events": events, "stats": stats, "reports": reports, "models": models}


@pytest.fixture(scope="module", params=["tasfar", "mmd"])
def scheme(request):
    return request.param


@pytest.fixture(scope="module")
def serial(fixture, stream, scheme):
    result = run_stream(fixture, stream, scheme)
    # The scenario is only meaningful if it drives both cold and warm
    # adaptations for every target; a tamer stream would leave the
    # warm-start stacking path untested.
    actions = [e["action"] for events in result["events"].values() for e in events]
    assert sum(a == "cold_adapt" for a in actions) >= N_TARGETS
    assert sum(a == "warm_adapt" for a in actions) >= N_TARGETS
    return result


@pytest.mark.parametrize("train_batching", [2, 5])
def test_ingest_many_stacked_identical_to_serial(fixture, stream, scheme, serial, train_batching):
    stacked = run_stream(fixture, stream, scheme, train_batching=train_batching)
    for name in ("events", "stats", "reports", "models"):
        assert stacked[name] == serial[name], (scheme, train_batching, name)


def test_ingest_many_stacked_on_process_pool_identical(fixture, stream, scheme, serial):
    stacked = run_stream(fixture, stream, scheme, train_batching=3, process=True)
    for name in ("events", "stats", "reports", "models"):
        assert stacked[name] == serial[name], (scheme, "process", name)
