"""Tests for the loss-drop early-stopping rule."""

import pytest

from repro.core import LossDropEarlyStopper


class TestLossDropEarlyStopper:
    def test_stops_on_plateau(self):
        stopper = LossDropEarlyStopper(drop_fraction=0.1, patience=2, min_epochs=3, window=2)
        losses = [10.0, 5.0, 2.5] + [2.4999] * 10
        stopped_at = None
        for epoch, loss in enumerate(losses):
            if stopper.update(loss):
                stopped_at = epoch + 1
                break
        assert stopped_at is not None
        assert stopper.stopped_epoch == stopped_at

    def test_does_not_stop_while_dropping(self):
        stopper = LossDropEarlyStopper(drop_fraction=0.1, patience=2, min_epochs=3, window=2)
        loss = 100.0
        for _ in range(20):
            loss -= 4.0  # a steady drop keeps the drop rate at its initial level
            assert not stopper.update(loss)

    def test_min_epochs_respected(self):
        stopper = LossDropEarlyStopper(drop_fraction=0.5, patience=1, min_epochs=8, window=2)
        for epoch in range(7):
            assert not stopper.update(1.0)

    def test_flat_from_start_eventually_stops(self):
        stopper = LossDropEarlyStopper(drop_fraction=0.1, patience=2, min_epochs=3, window=2)
        stopped = False
        for _ in range(30):
            if stopper.update(1.0):
                stopped = True
                break
        assert stopped

    def test_update_after_stop_stays_stopped(self):
        stopper = LossDropEarlyStopper(min_epochs=1, patience=1, window=1)
        for _ in range(10):
            stopper.update(1.0)
        assert stopper.update(0.0) is True

    def test_losses_recorded(self):
        stopper = LossDropEarlyStopper()
        stopper.update(3.0)
        stopper.update(2.0)
        assert stopper.losses == [3.0, 2.0]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            LossDropEarlyStopper(drop_fraction=0.0)
        with pytest.raises(ValueError):
            LossDropEarlyStopper(patience=0)
