"""Tests for the label distribution estimator (Algorithm 2)."""

import numpy as np
import pytest

from repro.core import LabelDensityMap, LabelDistributionEstimator
from repro.uncertainty import UncertaintyCalibrator


def make_estimator(n_dims=1, **kwargs):
    calibrators = [UncertaintyCalibrator(intercept=0.1, slope=1.0) for _ in range(n_dims)]
    return LabelDistributionEstimator(calibrators, **kwargs)


class TestLabelDistributionEstimator:
    def test_requires_calibrators(self):
        with pytest.raises(ValueError):
            LabelDistributionEstimator([])

    def test_sigma_for_shape(self):
        estimator = make_estimator(n_dims=2)
        sigmas = estimator.sigma_for(np.array([0.1, 0.5, 1.0]))
        assert sigmas.shape == (3, 2)
        np.testing.assert_allclose(sigmas[:, 0], [0.2, 0.6, 1.1])

    def test_estimate_returns_normalized_map(self):
        estimator = make_estimator()
        rng = np.random.default_rng(0)
        predictions = rng.normal(1.0, 0.3, size=(50, 1))
        uncertainties = rng.uniform(0.05, 0.2, size=50)
        density_map = estimator.estimate(predictions, uncertainties)
        assert density_map.total_mass == pytest.approx(1.0, abs=1e-6)

    def test_estimate_peaks_near_prediction_mode(self):
        estimator = make_estimator(auto_grid_bins=40)
        predictions = np.full((100, 1), 2.0) + np.random.default_rng(0).normal(0, 0.05, size=(100, 1))
        uncertainties = np.full(100, 0.05)
        density_map = estimator.estimate(predictions, uncertainties)
        peak = density_map.cell_centers[0][np.argmax(density_map.densities)]
        assert abs(peak - 2.0) < 0.3

    def test_estimate_on_prebuilt_grid(self):
        estimator = make_estimator()
        grid = LabelDensityMap.from_range(np.array([-5.0]), np.array([5.0]), 0.5)
        density_map = estimator.estimate(np.array([[0.0], [1.0]]), np.array([0.1, 0.1]), grid=grid)
        assert density_map is grid
        assert density_map.total_mass == pytest.approx(1.0, abs=1e-6)

    def test_estimate_wrong_dimension_raises(self):
        estimator = make_estimator(n_dims=2)
        with pytest.raises(ValueError):
            estimator.estimate(np.zeros((5, 1)), np.zeros(5))

    def test_estimate_empty_raises(self):
        estimator = make_estimator()
        with pytest.raises(ValueError):
            estimator.estimate(np.zeros((0, 1)), np.zeros(0))

    def test_explicit_grid_size_controls_resolution(self):
        estimator_fine = make_estimator(grid_size=0.05)
        estimator_coarse = make_estimator(grid_size=1.0)
        predictions = np.random.default_rng(0).normal(size=(30, 1))
        uncertainties = np.full(30, 0.1)
        fine = estimator_fine.estimate(predictions, uncertainties)
        coarse = estimator_coarse.estimate(predictions, uncertainties)
        assert fine.shape[0] > coarse.shape[0]

    def test_degenerate_identical_predictions(self):
        estimator = make_estimator()
        density_map = estimator.estimate(np.full((10, 1), 3.0), np.full(10, 0.0))
        assert np.isfinite(density_map.densities).all()
        assert density_map.total_mass == pytest.approx(1.0, abs=1e-6)

    def test_2d_estimation(self):
        estimator = make_estimator(n_dims=2, auto_grid_bins=15)
        rng = np.random.default_rng(1)
        angles = rng.uniform(0, 2 * np.pi, size=200)
        predictions = np.column_stack([0.7 * np.cos(angles), 0.7 * np.sin(angles)])
        uncertainties = np.full(200, 0.05)
        density_map = estimator.estimate(predictions, uncertainties)
        assert density_map.n_dims == 2
        # the centre of the ring should be near-empty relative to the ring itself
        center_density = density_map.local_mean_density(np.array([0.0, 0.0]), np.array([0.1, 0.1]))
        ring_density = density_map.local_mean_density(np.array([0.7, 0.0]), np.array([0.1, 0.1]))
        assert ring_density > center_density
