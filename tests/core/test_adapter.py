"""End-to-end tests for the TASFAR adapter on a small synthetic problem."""

import numpy as np
import pytest

import repro.nn as nn
from repro.core import Tasfar, TasfarConfig
from repro.core.adapter import SourceCalibration
from repro.uncertainty import UncertaintyCalibrator


def make_problem(seed=0, n_source=300, n_target=150):
    """A 1-D regression problem with a subset of corrupted target inputs.

    The target labels concentrate in a narrow band, and one third of the
    target inputs are replaced with large noise so the source model is both
    wrong and uncertain on them — the structure TASFAR expects.
    """
    rng = np.random.default_rng(seed)
    source_inputs = rng.normal(size=(n_source, 4))
    weights = np.array([1.0, -1.0, 0.5, 2.0])
    source_labels = source_inputs @ weights + 0.05 * rng.normal(size=n_source)

    target_inputs = rng.normal(size=(n_target, 4)) * 0.4 + 0.5
    target_labels = target_inputs @ weights + 0.05 * rng.normal(size=n_target)
    corrupted = rng.random(n_target) < 0.3
    target_inputs[corrupted] = rng.normal(scale=4.0, size=(corrupted.sum(), 4))
    return source_inputs, source_labels, target_inputs, target_labels, corrupted


@pytest.fixture(scope="module")
def trained_setup():
    source_inputs, source_labels, target_inputs, target_labels, corrupted = make_problem()
    model = nn.build_mlp(4, 1, hidden_dims=(32, 16), dropout=0.2, seed=0)
    trainer = nn.Trainer(model, lr=3e-3)
    trainer.fit(nn.ArrayDataset(source_inputs, source_labels), epochs=40, batch_size=32,
                rng=np.random.default_rng(0))
    tasfar = Tasfar(TasfarConfig(adaptation_epochs=20, seed=0))
    calibration = tasfar.calibrate_on_source(model, source_inputs, source_labels)
    return {
        "model": model,
        "trainer": trainer,
        "tasfar": tasfar,
        "calibration": calibration,
        "target_inputs": target_inputs,
        "target_labels": target_labels,
        "corrupted": corrupted,
    }


class TestCalibration:
    def test_calibration_contents(self, trained_setup):
        calibration = trained_setup["calibration"]
        assert calibration.threshold > 0
        assert calibration.label_dim == 1
        assert all(isinstance(c, UncertaintyCalibrator) for c in calibration.calibrators)

    def test_calibration_length_mismatch_raises(self, trained_setup):
        tasfar = trained_setup["tasfar"]
        with pytest.raises(ValueError):
            tasfar.calibrate_on_source(trained_setup["model"], np.zeros((5, 4)), np.zeros(4))


class TestAdaptation:
    def test_adapt_returns_new_model_and_diagnostics(self, trained_setup):
        tasfar = trained_setup["tasfar"]
        result = tasfar.adapt(
            trained_setup["model"], trained_setup["target_inputs"], trained_setup["calibration"]
        )
        assert result.target_model is not trained_setup["model"]
        assert result.split.n_confident + result.split.n_uncertain == len(trained_setup["target_inputs"])
        assert result.density_map.total_mass == pytest.approx(1.0, abs=1e-6)
        assert len(result.pseudo_labels) == result.split.n_uncertain
        assert len(result.losses) >= 1

    def test_source_model_unchanged_by_adaptation(self, trained_setup):
        model = trained_setup["model"]
        before = [param.data.copy() for param in model.parameters()]
        trained_setup["tasfar"].adapt(
            model, trained_setup["target_inputs"], trained_setup["calibration"]
        )
        after = model.parameters()
        for old, new in zip(before, after):
            np.testing.assert_array_equal(old, new.data)

    def test_adaptation_does_not_degrade_clean_subset_substantially(self, trained_setup):
        trainer = trained_setup["trainer"]
        tasfar = trained_setup["tasfar"]
        result = tasfar.adapt(
            trained_setup["model"], trained_setup["target_inputs"], trained_setup["calibration"]
        )
        adapted_trainer = nn.Trainer(result.target_model)
        clean = ~trained_setup["corrupted"]
        inputs = trained_setup["target_inputs"][clean]
        labels = trained_setup["target_labels"][clean][:, None]
        base_error = np.abs(trainer.predict(inputs) - labels).mean()
        adapted_error = np.abs(adapted_trainer.predict(inputs) - labels).mean()
        assert adapted_error < base_error * 1.5

    def test_uncertain_set_flags_corrupted_inputs(self, trained_setup):
        result = trained_setup["tasfar"].adapt(
            trained_setup["model"], trained_setup["target_inputs"], trained_setup["calibration"]
        )
        corrupted = trained_setup["corrupted"]
        uncertain_mask = np.zeros(len(corrupted), dtype=bool)
        uncertain_mask[result.split.uncertain_indices] = True
        # corrupted inputs should be over-represented among the uncertain set
        assert uncertain_mask[corrupted].mean() > uncertain_mask[~corrupted].mean()

    def test_error_when_every_sample_is_uncertain(self, trained_setup):
        calibration = SourceCalibration(
            threshold=1e-9,
            calibrators=trained_setup["calibration"].calibrators,
        )
        with pytest.raises(ValueError, match="confident"):
            trained_setup["tasfar"].adapt(
                trained_setup["model"], trained_setup["target_inputs"], calibration
            )

    def test_all_confident_target_skips_pseudo_labels(self, trained_setup):
        calibration = SourceCalibration(
            threshold=1e9,
            calibrators=trained_setup["calibration"].calibrators,
        )
        result = trained_setup["tasfar"].adapt(
            trained_setup["model"], trained_setup["target_inputs"], calibration
        )
        assert result.split.n_uncertain == 0
        assert len(result.pseudo_labels) == 0

    def test_config_switches(self, trained_setup):
        config = TasfarConfig(
            adaptation_epochs=5,
            include_confident_data=False,
            use_credibility=False,
            early_stop=False,
            pseudo_label_mode="argmax",
            seed=1,
        )
        tasfar = Tasfar(config)
        result = tasfar.adapt(
            trained_setup["model"], trained_setup["target_inputs"], trained_setup["calibration"]
        )
        assert len(result.losses) == 5
        dataset = tasfar.build_adaptation_dataset(
            trained_setup["target_inputs"],
            result.target_prediction,
            result.split,
            result.pseudo_labels,
        )
        # without confident data the training set only holds uncertain samples
        assert len(dataset) == result.split.n_uncertain

    def test_dropout_rates_restored_after_adaptation(self, trained_setup):
        result = trained_setup["tasfar"].adapt(
            trained_setup["model"], trained_setup["target_inputs"], trained_setup["calibration"]
        )
        for layer in result.target_model.dropout_layers():
            assert layer.rate == pytest.approx(0.2)
