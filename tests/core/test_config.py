"""Tests for TasfarConfig validation."""

import pytest

from repro.core import TasfarConfig


class TestTasfarConfig:
    def test_defaults_match_paper(self):
        config = TasfarConfig()
        assert config.confidence_ratio == 0.9
        assert config.n_mc_samples == 20
        assert config.n_segments == 40
        assert config.error_model == "gaussian"
        assert config.locality_sigmas == 3.0
        assert config.use_credibility is True
        assert config.include_confident_data is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"confidence_ratio": 0.0},
            {"confidence_ratio": 1.0},
            {"n_mc_samples": 1},
            {"n_segments": 0},
            {"auto_grid_bins": 1},
            {"locality_sigmas": 0.0},
            {"pseudo_label_mode": "nearest"},
            {"adaptation_epochs": 0},
            {"min_adaptation_epochs": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TasfarConfig(**kwargs)

    def test_extra_dict_available(self):
        config = TasfarConfig(extra={"note": "ablation"})
        assert config.extra["note"] == "ablation"
