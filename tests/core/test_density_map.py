"""Tests for the label density map."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LabelDensityMap
from repro.uncertainty import GaussianErrorModel, UniformErrorModel


class TestConstruction:
    def test_from_range_1d(self):
        density_map = LabelDensityMap.from_range(np.array([0.0]), np.array([1.0]), np.array([0.25]))
        assert density_map.shape == (4,)
        assert density_map.n_dims == 1

    def test_from_range_2d(self):
        density_map = LabelDensityMap.from_range(np.array([0.0, -1.0]), np.array([1.0, 1.0]), 0.5)
        assert density_map.shape == (2, 4)
        assert density_map.n_dims == 2

    def test_from_range_validation(self):
        with pytest.raises(ValueError):
            LabelDensityMap.from_range(np.array([1.0]), np.array([0.0]), 0.1)
        with pytest.raises(ValueError):
            LabelDensityMap.from_range(np.array([0.0]), np.array([1.0]), 0.0)

    def test_edges_must_increase(self):
        with pytest.raises(ValueError):
            LabelDensityMap([np.array([0.0, 0.0, 1.0])])

    def test_from_labels_is_normalized_histogram(self):
        labels = np.array([[0.1], [0.1], [0.9]])
        density_map = LabelDensityMap.from_labels(labels, [np.array([0.0, 0.5, 1.0])])
        np.testing.assert_allclose(density_map.densities, [2 / 3, 1 / 3])


class TestAccumulation:
    def test_single_gaussian_mass_sums_to_one_inside_range(self):
        density_map = LabelDensityMap.from_range(np.array([-10.0]), np.array([10.0]), 0.1)
        density_map.add_instance(np.array([0.0]), np.array([0.5]))
        assert density_map.total_mass == pytest.approx(1.0, abs=1e-6)

    def test_add_instances_batch(self):
        density_map = LabelDensityMap.from_range(np.array([-5.0]), np.array([5.0]), 0.1)
        density_map.add_instances(np.array([[0.0], [1.0], [-1.0]]), np.full((3, 1), 0.3))
        assert density_map.total_mass == pytest.approx(3.0, abs=1e-4)

    def test_normalize(self):
        density_map = LabelDensityMap.from_range(np.array([-5.0]), np.array([5.0]), 0.1)
        density_map.add_instances(np.array([[0.0], [1.0]]), np.full((2, 1), 0.3))
        density_map.normalize()
        assert density_map.total_mass == pytest.approx(1.0)

    def test_mass_concentrates_near_center(self):
        density_map = LabelDensityMap.from_range(np.array([-5.0]), np.array([5.0]), 0.5)
        density_map.add_instance(np.array([2.0]), np.array([0.3]))
        centers = density_map.cell_centers[0]
        peak_center = centers[np.argmax(density_map.densities)]
        assert abs(peak_center - 2.0) < 0.5

    def test_2d_accumulation_is_separable_product(self):
        density_map = LabelDensityMap.from_range(np.array([-3.0, -3.0]), np.array([3.0, 3.0]), 0.5)
        density_map.add_instance(np.array([0.0, 1.0]), np.array([0.4, 0.4]))
        assert density_map.densities.shape == (12, 12)
        assert density_map.total_mass == pytest.approx(1.0, abs=1e-4)

    def test_wrong_dimension_raises(self):
        density_map = LabelDensityMap.from_range(np.array([0.0, 0.0]), np.array([1.0, 1.0]), 0.5)
        with pytest.raises(ValueError):
            density_map.add_instance(np.array([0.5]), np.array([0.1]))

    def test_uniform_error_model_accepted(self):
        density_map = LabelDensityMap.from_range(np.array([-3.0]), np.array([3.0]), 0.25)
        density_map.add_instance(np.array([0.0]), np.array([0.5]), UniformErrorModel())
        assert density_map.total_mass == pytest.approx(1.0, abs=1e-6)


class TestQueries:
    def build_map(self):
        density_map = LabelDensityMap.from_range(np.array([-2.0]), np.array([2.0]), 0.5)
        density_map.add_instance(np.array([0.0]), np.array([0.3]), GaussianErrorModel())
        return density_map.normalize()

    def test_global_and_local_density(self):
        density_map = self.build_map()
        local = density_map.local_mean_density(np.array([0.0]), np.array([0.5]))
        assert local > density_map.global_mean_density

    def test_locality_mask_size(self):
        density_map = self.build_map()
        mask = density_map.locality_mask(np.array([0.0]), np.array([0.6]))
        assert mask.sum() >= 2
        empty = density_map.locality_mask(np.array([100.0]), np.array([0.5]))
        assert not empty.any()

    def test_local_density_outside_map_is_zero(self):
        density_map = self.build_map()
        assert density_map.local_mean_density(np.array([100.0]), np.array([0.5])) == 0.0

    def test_marginal_sums(self):
        density_map = LabelDensityMap.from_range(np.array([-2.0, -2.0]), np.array([2.0, 2.0]), 0.5)
        density_map.add_instance(np.array([0.0, 0.0]), np.array([0.4, 0.4]))
        density_map.normalize()
        marginal = density_map.marginal(0)
        assert marginal.shape == (8,)
        assert marginal.sum() == pytest.approx(1.0, abs=1e-6)
        with pytest.raises(ValueError):
            density_map.marginal(5)

    def test_mean_absolute_error_requires_same_shape(self):
        a = LabelDensityMap.from_range(np.array([0.0]), np.array([1.0]), 0.5)
        b = LabelDensityMap.from_range(np.array([0.0]), np.array([1.0]), 0.25)
        with pytest.raises(ValueError):
            a.mean_absolute_error(b)

    def test_mean_absolute_error_zero_for_identical(self):
        a = self.build_map()
        assert a.mean_absolute_error(a.copy()) == 0.0

    def test_density_per_unit_and_cell_volumes(self):
        density_map = self.build_map()
        volumes = density_map.cell_volumes()
        np.testing.assert_allclose(volumes, 0.5)
        per_unit = density_map.density_per_unit()
        np.testing.assert_allclose(per_unit * 0.5, density_map.densities)

    def test_copy_is_independent(self):
        density_map = self.build_map()
        clone = density_map.copy()
        clone.densities[:] = 0.0
        assert density_map.total_mass > 0


class TestDensityMapProperties:
    @given(
        st.floats(min_value=-3.0, max_value=3.0),
        st.floats(min_value=0.05, max_value=1.0),
        st.floats(min_value=0.05, max_value=0.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_accumulated_mass_bounded_by_one(self, center, sigma, grid):
        density_map = LabelDensityMap.from_range(np.array([-10.0]), np.array([10.0]), grid)
        density_map.add_instance(np.array([center]), np.array([sigma]))
        assert 0.0 <= density_map.total_mass <= 1.0 + 1e-6

    @given(st.lists(st.floats(min_value=-5.0, max_value=5.0), min_size=2, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_true_histogram_mass_is_one(self, values):
        labels = np.array(values)[:, None]
        density_map = LabelDensityMap.from_labels(labels, [np.linspace(-5.5, 5.5, 23)])
        assert density_map.total_mass == pytest.approx(1.0, abs=1e-9)
