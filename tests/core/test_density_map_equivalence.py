"""Equivalence regression tests: vectorized vs. loop density-map accumulation.

``LabelDensityMap.add_instances`` evaluates all per-axis interval masses in
one broadcasted call per axis and reduces the per-instance outer products
with a single sum over the instance axis.  The oracle below is the old
implementation — one ``interval_probability``/outer-product/accumulate step
per sample — kept here verbatim so the vectorized path is pinned to it
**bit-for-bit**: elementwise ufuncs are shape-independent, and numpy's
``sum(axis=0)`` adds rows in index order, exactly like the old loop.
"""

import numpy as np
import pytest

from repro.core import LabelDensityMap
from repro.uncertainty.error_models import (
    ErrorModel,
    GaussianErrorModel,
    LaplaceErrorModel,
    UniformErrorModel,
)


def accumulate_loop_oracle(density_map, centers, sigmas, error_model):
    """Old per-sample accumulation (pre-vectorization ``add_instance`` loop)."""
    for center, sigma in zip(centers, sigmas):
        axis_masses = []
        for axis in range(density_map.n_dims):
            edge = density_map.edges[axis]
            mass = error_model.interval_probability(
                float(center[axis]), float(sigma[axis]), edge[:-1], edge[1:]
            )
            axis_masses.append(np.clip(mass, 0.0, None))
        outer = axis_masses[0]
        for masses in axis_masses[1:]:
            outer = np.multiply.outer(outer, masses)
        density_map.densities += outer
        density_map._accumulated += 1


def make_instances(n_dims, n_instances=40, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=1.5, size=(n_instances, n_dims))
    sigmas = np.abs(rng.normal(size=(n_instances, n_dims))) + 0.05
    return centers, sigmas


def make_edges(n_dims):
    return [np.linspace(-4.0, 4.0, 13 + axis) for axis in range(n_dims)]


ERROR_MODELS = {
    "gaussian": GaussianErrorModel,
    "laplace": LaplaceErrorModel,
    "uniform": UniformErrorModel,
}


class TestVectorizedAccumulationMatchesLoop:
    @pytest.mark.parametrize("model_name", sorted(ERROR_MODELS))
    @pytest.mark.parametrize("n_dims", [1, 2, 3])
    def test_bitwise_identical_to_loop_oracle(self, model_name, n_dims):
        error_model = ERROR_MODELS[model_name]()
        centers, sigmas = make_instances(n_dims)

        vectorized = LabelDensityMap(make_edges(n_dims))
        vectorized.add_instances(centers, sigmas, error_model)

        oracle = LabelDensityMap(make_edges(n_dims))
        accumulate_loop_oracle(oracle, centers, sigmas, error_model)

        np.testing.assert_array_equal(vectorized.densities, oracle.densities)
        assert vectorized._accumulated == oracle._accumulated

    def test_scalar_sigma_broadcast_matches_loop(self):
        centers, _ = make_instances(2)
        vectorized = LabelDensityMap(make_edges(2))
        vectorized.add_instances(centers, 0.3)
        oracle = LabelDensityMap(make_edges(2))
        accumulate_loop_oracle(
            oracle, centers, np.full_like(centers, 0.3), GaussianErrorModel()
        )
        np.testing.assert_array_equal(vectorized.densities, oracle.densities)

    def test_add_instance_matches_single_row_batch(self):
        one = LabelDensityMap(make_edges(2))
        one.add_instance(np.array([0.4, -0.2]), np.array([0.3, 0.5]))
        batch = LabelDensityMap(make_edges(2))
        batch.add_instances(np.array([[0.4, -0.2]]), np.array([[0.3, 0.5]]))
        np.testing.assert_array_equal(one.densities, batch.densities)
        assert one._accumulated == batch._accumulated == 1

    def test_empty_batch_is_a_no_op(self):
        density_map = LabelDensityMap(make_edges(1))
        density_map.add_instances(np.empty((0, 1)), np.empty((0, 1)))
        assert density_map.total_mass == 0.0
        assert density_map._accumulated == 0

    def test_custom_scalar_error_model_uses_generic_fallback(self):
        """A subclass overriding only the scalar API must still match the loop."""

        class TriangleErrorModel(ErrorModel):
            name = "triangle"

            def interval_probability(self, center, sigma, lower, upper):
                width = max(sigma, 1e-12) * 2.0
                distance = np.abs((lower + upper) / 2.0 - center)
                return np.clip(1.0 - distance / width, 0.0, None)

        error_model = TriangleErrorModel()
        centers, sigmas = make_instances(2, n_instances=15, seed=3)
        vectorized = LabelDensityMap(make_edges(2))
        vectorized.add_instances(centers, sigmas, error_model)
        oracle = LabelDensityMap(make_edges(2))
        accumulate_loop_oracle(oracle, centers, sigmas, error_model)
        np.testing.assert_array_equal(vectorized.densities, oracle.densities)


class TestBatchIntervalProbability:
    @pytest.mark.parametrize("model_name", sorted(ERROR_MODELS))
    def test_batch_rows_equal_scalar_calls(self, model_name):
        error_model = ERROR_MODELS[model_name]()
        edges = np.linspace(-3.0, 3.0, 15)
        centers = np.array([-1.2, 0.0, 0.7, 2.5])
        sigmas = np.array([0.2, 0.5, 1.0, 0.05])
        batch = error_model.batch_interval_probability(centers, sigmas, edges[:-1], edges[1:])
        assert batch.shape == (4, 14)
        for row, (center, sigma) in enumerate(zip(centers, sigmas)):
            scalar = error_model.interval_probability(
                float(center), float(sigma), edges[:-1], edges[1:]
            )
            np.testing.assert_array_equal(batch[row], scalar)

    def test_batch_masses_are_valid_probabilities(self):
        edges = np.linspace(-10.0, 10.0, 400)
        centers = np.array([0.0, 1.0, -2.0])
        sigmas = np.array([0.3, 0.8, 0.1])
        for error_model in (GaussianErrorModel(), LaplaceErrorModel(), UniformErrorModel()):
            batch = error_model.batch_interval_probability(centers, sigmas, edges[:-1], edges[1:])
            assert np.all(batch >= -1e-12)
            np.testing.assert_allclose(batch.sum(axis=1), 1.0, atol=1e-6)
