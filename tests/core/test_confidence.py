"""Tests for the confidence classifier (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import ConfidenceClassifier


class TestConfidenceClassifier:
    def test_threshold_is_eta_quantile(self):
        classifier = ConfidenceClassifier(confidence_ratio=0.9)
        uncertainties = np.linspace(0, 1, 1001)
        classifier.fit(uncertainties)
        assert classifier.threshold == pytest.approx(0.9, abs=1e-3)

    def test_split_partitions_all_samples(self):
        classifier = ConfidenceClassifier(0.8)
        classifier.fit(np.random.default_rng(0).uniform(size=500))
        target = np.random.default_rng(1).uniform(size=100)
        split = classifier.split(target)
        assert split.n_confident + split.n_uncertain == 100
        assert set(split.confident_indices).isdisjoint(split.uncertain_indices)

    def test_confident_below_threshold(self):
        classifier = ConfidenceClassifier(0.5)
        classifier.threshold = 0.5
        split = classifier.split(np.array([0.1, 0.5, 0.9]))
        np.testing.assert_array_equal(split.confident_indices, [0, 1])
        np.testing.assert_array_equal(split.uncertain_indices, [2])

    def test_uncertain_ratio(self):
        classifier = ConfidenceClassifier(0.5)
        classifier.threshold = 0.5
        split = classifier.split(np.array([0.1, 0.9, 0.9, 0.9]))
        assert split.uncertain_ratio == pytest.approx(0.75)

    def test_split_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            ConfidenceClassifier().split(np.array([0.1]))

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            ConfidenceClassifier().fit(np.array([]))

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            ConfidenceClassifier(confidence_ratio=1.0)

    def test_source_like_target_has_expected_uncertain_ratio(self):
        """On data from the source distribution, ~(1 - eta) is uncertain."""
        rng = np.random.default_rng(2)
        source = rng.exponential(size=5000)
        classifier = ConfidenceClassifier(0.9)
        classifier.fit(source)
        split = classifier.split(rng.exponential(size=5000))
        assert split.uncertain_ratio == pytest.approx(0.1, abs=0.02)
