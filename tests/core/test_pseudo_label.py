"""Tests for the pseudo-label generator (Algorithm 3)."""

import numpy as np
import pytest

from repro.core import LabelDensityMap, LabelDistributionEstimator, PseudoLabelGenerator
from repro.uncertainty import UncertaintyCalibrator


def make_generator(n_dims=1, threshold=0.2, **kwargs):
    calibrators = [UncertaintyCalibrator(intercept=0.05, slope=1.0) for _ in range(n_dims)]
    estimator = LabelDistributionEstimator(calibrators, auto_grid_bins=40)
    return PseudoLabelGenerator(estimator, threshold=threshold, **kwargs), estimator


def dense_map_around(value, n_dims=1, spread=0.1, n_samples=200, seed=0):
    """A density map whose mass concentrates around ``value``."""
    rng = np.random.default_rng(seed)
    calibrators = [UncertaintyCalibrator(intercept=0.05, slope=1.0) for _ in range(n_dims)]
    estimator = LabelDistributionEstimator(calibrators, auto_grid_bins=40)
    predictions = value + rng.normal(0.0, spread, size=(n_samples, n_dims))
    uncertainties = np.full(n_samples, 0.05)
    return estimator.estimate(predictions, uncertainties), estimator


class TestPseudoLabelGenerator:
    def test_pseudo_label_moves_toward_dense_region(self):
        density_map, estimator = dense_map_around(np.array([1.0]))
        generator = PseudoLabelGenerator(estimator, threshold=0.2)
        prediction = np.array([1.6])
        pseudo, credibility = generator.pseudo_label_one(
            density_map, prediction, sigma=np.array([0.4]), uncertainty=0.5
        )
        assert pseudo[0] < prediction[0]
        assert pseudo[0] > 1.0 - 0.2
        assert credibility > 0

    def test_fallback_to_prediction_when_no_local_density(self):
        density_map, estimator = dense_map_around(np.array([0.0]))
        generator = PseudoLabelGenerator(estimator, threshold=0.2)
        prediction = np.array([100.0])
        pseudo, credibility = generator.pseudo_label_one(
            density_map, prediction, sigma=np.array([0.3]), uncertainty=0.5
        )
        np.testing.assert_allclose(pseudo, prediction)
        assert credibility == 0.0

    def test_credibility_grows_with_uncertainty(self):
        density_map, estimator = dense_map_around(np.array([0.0]))
        generator = PseudoLabelGenerator(estimator, threshold=0.2)
        _, low = generator.pseudo_label_one(density_map, np.array([0.1]), np.array([0.3]), uncertainty=0.25)
        _, high = generator.pseudo_label_one(density_map, np.array([0.1]), np.array([0.3]), uncertainty=1.0)
        assert high > low

    def test_argmax_mode_returns_cell_center(self):
        density_map, estimator = dense_map_around(np.array([2.0]), spread=0.05)
        generator = PseudoLabelGenerator(estimator, threshold=0.2, mode="argmax")
        pseudo, _ = generator.pseudo_label_one(density_map, np.array([2.3]), np.array([0.4]), uncertainty=0.5)
        centers = density_map.cell_centers[0]
        assert np.min(np.abs(centers - pseudo[0])) < 1e-9

    def test_batch_interface_shapes(self):
        density_map, estimator = dense_map_around(np.array([0.5]))
        generator = PseudoLabelGenerator(estimator, threshold=0.2)
        predictions = np.array([[0.4], [0.9], [0.1]])
        uncertainties = np.array([0.3, 0.5, 0.8])
        batch = generator.pseudo_label(density_map, predictions, uncertainties)
        assert len(batch) == 3
        assert batch.pseudo_labels.shape == (3, 1)
        assert batch.credibilities.shape == (3,)
        assert batch.sigmas.shape == (3, 1)

    def test_batch_length_mismatch_raises(self):
        density_map, estimator = dense_map_around(np.array([0.5]))
        generator = PseudoLabelGenerator(estimator, threshold=0.2)
        with pytest.raises(ValueError):
            generator.pseudo_label(density_map, np.zeros((2, 1)), np.zeros(3))

    def test_invalid_construction_args(self):
        _, estimator = dense_map_around(np.array([0.0]))
        with pytest.raises(ValueError):
            PseudoLabelGenerator(estimator, threshold=0.0)
        with pytest.raises(ValueError):
            PseudoLabelGenerator(estimator, threshold=0.1, locality_sigmas=0.0)
        with pytest.raises(ValueError):
            PseudoLabelGenerator(estimator, threshold=0.1, mode="median")

    def test_uninformative_flat_map_keeps_prediction(self):
        """With a (near) uniform prior, the pseudo-label stays close to the prediction."""
        flat = LabelDensityMap.from_range(np.array([-2.0]), np.array([2.0]), 0.1)
        flat.densities[:] = 1.0
        flat.normalize()
        _, estimator = dense_map_around(np.array([0.0]))
        generator = PseudoLabelGenerator(estimator, threshold=0.2)
        prediction = np.array([0.7])
        pseudo, _ = generator.pseudo_label_one(flat, prediction, np.array([0.3]), uncertainty=0.5)
        assert abs(pseudo[0] - prediction[0]) < 0.05

    def test_2d_pseudo_label_moves_toward_ring(self):
        rng = np.random.default_rng(0)
        angles = rng.uniform(0, 2 * np.pi, size=300)
        ring = np.column_stack([0.7 * np.cos(angles), 0.7 * np.sin(angles)])
        calibrators = [UncertaintyCalibrator(0.05, 1.0), UncertaintyCalibrator(0.05, 1.0)]
        estimator = LabelDistributionEstimator(calibrators, auto_grid_bins=30)
        density_map = estimator.estimate(ring, np.full(300, 0.05))
        generator = PseudoLabelGenerator(estimator, threshold=0.2)
        # a prediction with the right direction but too-small magnitude
        prediction = np.array([0.3, 0.0])
        pseudo, _ = generator.pseudo_label_one(density_map, prediction, np.array([0.25, 0.25]), uncertainty=0.5)
        assert np.linalg.norm(pseudo) > np.linalg.norm(prediction)
