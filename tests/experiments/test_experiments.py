"""Integration tests for the experiment harness (run at the tiny scale)."""

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    SCALES,
    get_bundle,
    get_comparison,
    list_experiments,
    run_experiment,
)
from repro.experiments.base import ExperimentResult

EXPECTED_IDS = {
    "fig2_label_distributions",
    "fig3_uncertainty_error",
    "fig6_density_maps",
    "fig7_grid_size_map_error",
    "fig8_grid_size_pseudo_error",
    "fig9_segment_count",
    "fig10_confidence_ratio",
    "fig11_credibility_correlation",
    "fig12_credibility_ablation",
    "fig13_learning_curves",
    "fig14_ste_reduction_seen",
    "fig15_adaptation_vs_test",
    "fig16_uncertain_ratio",
    "fig17_rte_reduction_seen",
    "fig18_rte_reduction_unseen",
    "table1_crowd_counting",
    "fig19_counting_scenes",
    "fig20_partitioning",
    "fig21_prediction_tasks",
    "fig22_failure_case",
}


class TestRegistry:
    def test_every_paper_artifact_is_registered(self):
        assert EXPECTED_IDS == set(list_experiments())

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            run_experiment("fig99_not_a_thing")

    def test_scales_defined(self):
        assert {"tiny", "small", "full"} <= set(SCALES)


class TestBundles:
    def test_bundle_cached_and_reused(self):
        first = get_bundle("housing", "tiny", seed=0)
        second = get_bundle("housing", "tiny", seed=0)
        assert first is second

    def test_unknown_task_raises(self):
        with pytest.raises(ValueError):
            get_bundle("speech", "tiny")

    def test_bundle_has_trained_model_and_calibration(self):
        bundle = get_bundle("housing", "tiny", seed=0)
        assert bundle.calibration.threshold > 0
        assert bundle.training_history.losses[-1] < bundle.training_history.losses[0]
        predictions = bundle.predict(bundle.task.scenarios[0].adaptation.inputs[:5])
        assert predictions.shape == (5, 1)


class TestExperimentResults:
    def test_result_summary_and_rows(self):
        result = ExperimentResult(
            experiment_id="demo",
            description="demo result",
            columns=["a", "b"],
            rows=[[1, 2.0]],
            paper_expectation="demo expectation",
        )
        text = result.summary()
        assert "demo result" in text and "demo expectation" in text
        assert result.row_dicts() == [{"a": 1, "b": 2.0}]

    @pytest.mark.parametrize(
        "experiment_id",
        ["fig2_label_distributions", "fig3_uncertainty_error", "fig6_density_maps",
         "fig7_grid_size_map_error", "fig9_segment_count"],
    )
    def test_pdr_parameter_studies_run_at_tiny_scale(self, experiment_id):
        result = run_experiment(experiment_id, scale="tiny")
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == experiment_id
        assert len(result.rows) >= 1
        assert all(len(row) == len(result.columns) for row in result.rows)

    def test_fig7_error_falls_with_larger_grid(self):
        result = run_experiment("fig7_grid_size_map_error", scale="tiny")
        per_unit_errors = [row[1] for row in result.rows]
        assert per_unit_errors[-1] <= per_unit_errors[0]

    def test_fig2_reports_every_user(self):
        result = run_experiment("fig2_label_distributions", scale="tiny")
        bundle = get_bundle("pdr", "tiny")
        assert len(result.rows) == bundle.task.n_scenarios


class TestComparisonHarness:
    def test_comparison_on_housing_with_subset_of_schemes(self):
        comparison = get_comparison("housing", scale="tiny", schemes=("baseline", "tasfar"))
        assert comparison.schemes == ("baseline", "tasfar")
        evaluation = comparison.evaluations[0]
        assert "baseline" in evaluation.metrics and "tasfar" in evaluation.metrics
        for split in ("adaptation", "adaptation_uncertain", "test"):
            assert "mse" in evaluation.metrics["tasfar"][split]
        reduction = comparison.mean_reduction("tasfar", "adaptation", "mse")
        assert np.isfinite(reduction)

    def test_mean_metric_group_filter_raises_for_unknown_group(self):
        comparison = get_comparison("housing", scale="tiny", schemes=("baseline", "tasfar"))
        with pytest.raises(ValueError):
            comparison.mean_metric("baseline", "test", "mse", group="seen")

    def test_scenario_lookup(self):
        comparison = get_comparison("housing", scale="tiny", schemes=("baseline", "tasfar"))
        assert comparison.scenario("coastal").scenario == "coastal"
        with pytest.raises(KeyError):
            comparison.scenario("nowhere")
