"""Tests for the pluggable TaskSpec registry and the thread-safe bundle cache."""

import threading

import numpy as np
import pytest

import repro.nn as nn
from repro.cli import build_parser
from repro.data import (
    AdaptationTask,
    TargetScenario,
    TaskSpec,
    get_task_spec,
    register_task,
    task_names,
    unregister_task,
)
from repro.experiments import clear_bundle_cache, get_bundle


def _toy_task(profile, seed):
    """A deliberately tiny task so registry tests stay fast."""
    rng = np.random.default_rng(seed)
    weights = np.array([1.5, -0.5])

    def dataset(n, loc):
        inputs = rng.normal(loc=loc, size=(n, 2))
        return nn.ArrayDataset(inputs, inputs @ weights + 0.05 * rng.normal(size=n))

    adaptation, test = dataset(40, 0.4), dataset(16, 0.4)
    return AdaptationTask(
        name="toy",
        source_train=dataset(80, 0.0),
        source_calibration=dataset(40, 0.0),
        scenarios=[TargetScenario(name="shifted", adaptation=adaptation, test=test)],
    )


def _toy_model(task, profile, seed):
    return nn.build_mlp(2, 1, hidden_dims=(8,), dropout=0.2, seed=seed)


def toy_spec(name="toy"):
    return TaskSpec(
        name=name,
        build_task=_toy_task,
        build_model=_toy_model,
        epochs=lambda profile: 3,
        lr=3e-3,
        batch_size=16,
        metrics=("mse",),
        description="throwaway registry test task",
    )


@pytest.fixture
def registered_toy():
    spec = register_task(toy_spec())
    try:
        yield spec
    finally:
        unregister_task("toy")
        clear_bundle_cache()


class TestTaskRegistry:
    def test_paper_tasks_registered(self):
        assert set(task_names()) >= {"pdr", "crowd", "housing", "taxi"}

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError, match="unknown task"):
            get_task_spec("nonsense")
        with pytest.raises(ValueError, match="unknown task"):
            get_bundle("nonsense", "tiny")

    def test_duplicate_registration_rejected_unless_replace(self, registered_toy):
        with pytest.raises(ValueError, match="already registered"):
            register_task(toy_spec())
        register_task(toy_spec(), replace=True)  # explicit replace is fine

    def test_one_registration_makes_a_task_bundleable(self, registered_toy):
        bundle = get_bundle("toy", "tiny", seed=0)
        assert bundle.spec is registered_toy
        assert bundle.task.scenario_names() == ["shifted"]
        assert bundle.calibration.threshold > 0
        # and usable end to end through the strategy engine:
        from repro.engine import create_strategy

        strategy = create_strategy("tasfar").prepare(
            bundle.source_model, bundle.resources()
        )
        outcome = strategy.adapt(
            bundle.source_model, bundle.task.scenarios[0].adaptation.inputs, seed=0
        )
        assert outcome.target_model is not None

    def test_one_registration_reaches_the_cli_parser(self, registered_toy):
        args = build_parser().parse_args(["adapt-many", "--task", "toy", "--scale", "tiny"])
        assert args.task == "toy"
        args = build_parser().parse_args(["stream", "--task", "toy", "--scale", "tiny"])
        assert args.task == "toy"

    def test_streams_derive_from_registered_task(self, registered_toy):
        from repro.data import make_drift_streams

        bundle = get_bundle("toy", "tiny", seed=0)
        streams = make_drift_streams(bundle.task, kind="sudden", n_steps=4, batch_size=8)
        assert set(streams) == {"shifted"}
        assert streams["shifted"].n_events == 32


class TestCustomMetrics:
    def test_registered_task_can_bring_its_own_metric(self):
        """register_task + register_metric complete the 'one registration'
        contract for the comparison harness."""
        from repro.experiments import compare_task, register_metric
        from repro.experiments.comparison import METRIC_FNS

        spec = TaskSpec(
            name="toy_metric",
            build_task=_toy_task,
            build_model=_toy_model,
            epochs=lambda profile: 3,
            batch_size=16,
            metrics=("rmse",),
        )
        register_task(spec)
        register_metric(
            "rmse", lambda p, t: float(np.sqrt(np.mean((np.asarray(p) - np.asarray(t)) ** 2)))
        )
        try:
            bundle = get_bundle("toy_metric", "tiny", seed=0)
            comparison = compare_task(bundle, schemes=("baseline",))
            evaluation = comparison.evaluations[0]
            assert "rmse" in evaluation.metrics["baseline"]["test"]
            assert evaluation.metrics["baseline"]["test"]["rmse"] >= 0
        finally:
            unregister_task("toy_metric")
            METRIC_FNS.pop("rmse", None)
            clear_bundle_cache()

    def test_unknown_metric_name_rejected(self):
        from repro.experiments import compare_task

        spec = TaskSpec(
            name="toy_badmetric",
            build_task=_toy_task,
            build_model=_toy_model,
            epochs=lambda profile: 3,
            metrics=("wishful",),
        )
        register_task(spec)
        try:
            bundle = get_bundle("toy_badmetric", "tiny", seed=0)
            with pytest.raises(ValueError, match="unknown metric"):
                compare_task(bundle, schemes=("baseline",))
        finally:
            unregister_task("toy_badmetric")
            clear_bundle_cache()


class TestBundleCacheThreadSafety:
    def test_concurrent_get_bundle_builds_once(self):
        """The cache is shared by adapt_many/run-all workers: racing first
        requests for one key must build exactly one bundle."""
        builds = []

        def counting_build(profile, seed):
            builds.append(threading.get_ident())
            return _toy_task(profile, seed)

        spec = TaskSpec(
            name="toy_threaded",
            build_task=counting_build,
            build_model=_toy_model,
            epochs=lambda profile: 3,
            batch_size=16,
        )
        register_task(spec)
        clear_bundle_cache()
        try:
            results = [None] * 8
            barrier = threading.Barrier(8)

            def worker(index):
                barrier.wait()
                results[index] = get_bundle("toy_threaded", "tiny", seed=0)

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert len(builds) == 1
            assert all(result is results[0] for result in results)
        finally:
            unregister_task("toy_threaded")
            clear_bundle_cache()

    def test_replacing_a_spec_evicts_its_cached_bundles(self, registered_toy):
        stale = get_bundle("toy", "tiny", seed=0)
        register_task(toy_spec(), replace=True)
        fresh = get_bundle("toy", "tiny", seed=0)
        assert fresh is not stale  # the replaced spec's bundle was evicted
        assert fresh is get_bundle("toy", "tiny", seed=0)

    def test_replacing_a_spec_evicts_its_cached_comparisons(self, registered_toy):
        from repro.experiments import clear_comparison_cache, get_comparison

        clear_comparison_cache()
        try:
            stale = get_comparison("toy", "tiny", schemes=("baseline",))
            register_task(toy_spec(), replace=True)
            fresh = get_comparison("toy", "tiny", schemes=("baseline",))
            assert fresh is not stale
        finally:
            clear_comparison_cache()

    def test_unregistering_evicts_cached_bundles(self):
        register_task(toy_spec("toy_evict"))
        try:
            get_bundle("toy_evict", "tiny", seed=0)
        finally:
            unregister_task("toy_evict")
        with pytest.raises(ValueError, match="unknown task"):
            get_bundle("toy_evict", "tiny", seed=0)

    def test_distinct_keys_build_independently(self, registered_toy):
        clear_bundle_cache()
        one = get_bundle("toy", "tiny", seed=0)
        two = get_bundle("toy", "tiny", seed=1)
        assert one is not two
        assert one is get_bundle("toy", "tiny", seed=0)
