"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import list_experiments


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in list_experiments():
            assert experiment_id in output

    def test_run_command_executes_experiment(self, capsys):
        assert main(["run", "fig2_label_distributions", "--scale", "tiny"]) == 0
        output = capsys.readouterr().out
        assert "fig2_label_distributions" in output
        assert "stride_mean" in output

    def test_run_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            main(["run", "fig99_unknown", "--scale", "tiny"])

    def test_parser_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_parser_rejects_unknown_scale(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "fig2_label_distributions", "--scale", "huge"])
