"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import list_experiments


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in list_experiments():
            assert experiment_id in output

    def test_run_command_executes_experiment(self, capsys):
        assert main(["run", "fig2_label_distributions", "--scale", "tiny"]) == 0
        output = capsys.readouterr().out
        assert "fig2_label_distributions" in output
        assert "stride_mean" in output

    def test_run_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            main(["run", "fig99_unknown", "--scale", "tiny"])

    def test_parser_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_parser_rejects_unknown_scale(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "fig2_label_distributions", "--scale", "huge"])


class TestRunAllParsing:
    def test_defaults(self):
        args = build_parser().parse_args(["run-all"])
        assert args.jobs == 1
        assert args.results_dir is None
        assert not args.resume
        assert args.only is None

    def test_flags_parse(self):
        args = build_parser().parse_args(
            [
                "run-all",
                "--scale",
                "tiny",
                "--jobs",
                "4",
                "--results-dir",
                "results",
                "--resume",
                "--only",
                "fig2_label_distributions",
                "fig3_uncertainty_error",
            ]
        )
        assert args.jobs == 4
        assert args.results_dir == "results"
        assert args.resume
        assert args.only == ["fig2_label_distributions", "fig3_uncertainty_error"]

    def test_resume_requires_results_dir(self):
        with pytest.raises(SystemExit):
            main(["run-all", "--resume", "--scale", "tiny"])

    def test_unknown_only_id_rejected(self):
        with pytest.raises(SystemExit):
            main(["run-all", "--scale", "tiny", "--only", "fig99_unknown"])

    def test_invalid_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["run-all", "--scale", "tiny", "--jobs", "0"])


class TestRunAllExecution:
    def test_run_subset_writes_store_and_output(self, tmp_path, capsys):
        results_dir = tmp_path / "results"
        output = tmp_path / "report.txt"
        assert (
            main(
                [
                    "run-all",
                    "--scale",
                    "tiny",
                    "--only",
                    "fig2_label_distributions",
                    "--results-dir",
                    str(results_dir),
                    "--output",
                    str(output),
                ]
            )
            == 0
        )
        assert "fig2_label_distributions" in capsys.readouterr().out
        assert (results_dir / "tiny" / "seed0" / "fig2_label_distributions.json").is_file()
        assert "fig2_label_distributions" in output.read_text()

    def test_resume_skips_stored_experiments(self, tmp_path, capsys):
        results_dir = tmp_path / "results"
        args = [
            "run-all",
            "--scale",
            "tiny",
            "--only",
            "fig2_label_distributions",
            "--results-dir",
            str(results_dir),
        ]
        assert main(args) == 0
        capsys.readouterr()
        stored = results_dir / "tiny" / "seed0" / "fig2_label_distributions.json"
        before = stored.stat().st_mtime_ns
        assert main(args + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "[resumed] fig2_label_distributions" in resumed
        assert "stride_mean" in resumed  # the stored rows are still reported
        assert stored.stat().st_mtime_ns == before  # resumed results are not re-saved

    def test_parallel_jobs_produce_all_results(self, tmp_path, capsys):
        results_dir = tmp_path / "results"
        assert (
            main(
                [
                    "run-all",
                    "--scale",
                    "tiny",
                    "--jobs",
                    "2",
                    "--only",
                    "fig2_label_distributions",
                    "fig3_uncertainty_error",
                    "--results-dir",
                    str(results_dir),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fig2_label_distributions" in out
        assert "fig3_uncertainty_error" in out
        stored = sorted(path.stem for path in (results_dir / "tiny" / "seed0").glob("*.json"))
        assert stored == ["fig2_label_distributions", "fig3_uncertainty_error"]


class TestAdaptManyParsing:
    def test_defaults(self):
        args = build_parser().parse_args(["adapt-many"])
        assert args.task == "pdr"
        assert args.jobs == 1
        assert args.targets is None
        assert args.max_cached is None  # resolved to the fleet size at runtime
        assert args.report is None

    def test_flags_parse(self):
        args = build_parser().parse_args(
            [
                "adapt-many",
                "--task",
                "housing",
                "--scale",
                "tiny",
                "--jobs",
                "3",
                "--targets",
                "coastal",
                "--max-cached",
                "2",
                "--report",
                "out.json",
            ]
        )
        assert args.task == "housing"
        assert args.jobs == 3
        assert args.targets == ["coastal"]
        assert args.max_cached == 2
        assert args.report == "out.json"

    def test_unknown_task_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["adapt-many", "--task", "nonsense"])

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["adapt-many", "--task", "housing", "--scale", "tiny", "--targets", "nowhere"])


class TestAdaptManyExecution:
    def test_end_to_end_parallel_with_report(self, tmp_path, capsys):
        report_path = tmp_path / "reports.json"
        assert (
            main(
                [
                    "adapt-many",
                    "--task",
                    "housing",
                    "--scale",
                    "tiny",
                    "--jobs",
                    "2",
                    "--report",
                    str(report_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "mse_before" in out and "mse_after" in out
        payload = json.loads(report_path.read_text())
        assert payload  # one entry per scenario
        for report in payload.values():
            assert report["n_confident"] + report["n_uncertain"] == report["n_samples"]
            assert "mse_before" in report["extra"] and "mse_after" in report["extra"]
            assert report["extra"]["mse_after"] is not None  # default cache covers the fleet

    def test_evicted_targets_are_labelled_not_misreported(self, tmp_path, capsys):
        """A small --max-cached must not pass off source-model numbers as adapted."""
        report_path = tmp_path / "reports.json"
        assert (
            main(
                [
                    "adapt-many",
                    "--task",
                    "pdr",
                    "--scale",
                    "tiny",
                    "--max-cached",
                    "1",
                    "--report",
                    str(report_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "evicted" in out
        payload = json.loads(report_path.read_text())
        after_values = [report["extra"]["mse_after"] for report in payload.values()]
        assert after_values.count(None) == len(after_values) - 1  # only the cached one scored


class TestAdaptManyScheme:
    def test_scheme_defaults_to_tasfar(self):
        args = build_parser().parse_args(["adapt-many"])
        assert args.scheme == "tasfar"

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["adapt-many", "--scheme", "wishful"])

    @pytest.mark.parametrize("scheme", ["baseline", "augfree", "datafree"])
    def test_source_free_schemes_serve_end_to_end(self, tmp_path, capsys, scheme):
        report_path = tmp_path / "reports.json"
        assert (
            main(
                [
                    "adapt-many",
                    "--task",
                    "housing",
                    "--scale",
                    "tiny",
                    "--scheme",
                    scheme,
                    "--seed",
                    "5",
                    "--report",
                    str(report_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"scheme={scheme}" in out
        payload = json.loads(report_path.read_text())
        for report in payload.values():
            assert report["scheme"] == scheme
            assert report["extra"]["run_seed"] == 5
            assert report["extra"]["mse_after"] is not None

    def test_source_based_scheme_serves_end_to_end(self, tmp_path):
        report_path = tmp_path / "reports.json"
        assert (
            main(
                [
                    "adapt-many",
                    "--task",
                    "housing",
                    "--scale",
                    "tiny",
                    "--scheme",
                    "mmd",
                    "--report",
                    str(report_path),
                ]
            )
            == 0
        )
        payload = json.loads(report_path.read_text())
        for report in payload.values():
            assert report["scheme"] == "mmd"
            assert len(report["losses"]) > 0

    def test_run_seed_recorded_for_default_scheme(self, tmp_path):
        report_path = tmp_path / "reports.json"
        assert (
            main(
                [
                    "adapt-many",
                    "--task",
                    "housing",
                    "--scale",
                    "tiny",
                    "--seed",
                    "7",
                    "--report",
                    str(report_path),
                ]
            )
            == 0
        )
        payload = json.loads(report_path.read_text())
        for report in payload.values():
            assert report["scheme"] == "tasfar"
            assert report["extra"]["run_seed"] == 7


class TestStreamParsing:
    def test_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.task == "pdr"
        assert args.drift == "sudden"
        assert args.steps == 12
        assert args.batch_size == 16
        assert args.min_adapt == 32
        assert args.budget == 96
        assert args.warm_epochs is None
        assert args.jobs == 1
        assert args.events is None

    def test_flags_parse(self):
        args = build_parser().parse_args(
            [
                "stream",
                "--task",
                "taxi",
                "--scale",
                "tiny",
                "--drift",
                "recurring",
                "--steps",
                "8",
                "--batch-size",
                "4",
                "--budget",
                "24",
                "--warm-epochs",
                "2",
                "--jobs",
                "2",
                "--events",
                "events.json",
            ]
        )
        assert args.task == "taxi"
        assert args.drift == "recurring"
        assert args.steps == 8
        assert args.batch_size == 4
        assert args.budget == 24
        assert args.warm_epochs == 2
        assert args.events == "events.json"

    def test_unknown_drift_kind_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--drift", "wobbly"])

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["stream", "--task", "housing", "--scale", "tiny", "--targets", "nowhere"])

    @pytest.mark.parametrize(
        "flag", ["--jobs", "--steps", "--batch-size", "--min-adapt", "--budget", "--warm-epochs"]
    )
    def test_non_positive_sizes_rejected_with_usage_error(self, flag):
        with pytest.raises(SystemExit):
            main(["stream", "--task", "housing", "--scale", "tiny", flag, "0"])


class TestStreamScheme:
    def test_scheme_defaults_to_tasfar(self):
        args = build_parser().parse_args(["stream"])
        assert args.scheme == "tasfar"

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--scheme", "wishful"])

    def test_stream_serves_baseline_scheme_end_to_end(self, tmp_path, capsys):
        events_path = tmp_path / "events.json"
        assert (
            main(
                [
                    "stream",
                    "--task",
                    "housing",
                    "--scale",
                    "tiny",
                    "--scheme",
                    "augfree",
                    "--steps",
                    "6",
                    "--batch-size",
                    "8",
                    "--min-adapt",
                    "16",
                    "--budget",
                    "24",
                    "--events",
                    str(events_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "scheme=augfree" in out
        payload = json.loads(events_path.read_text())
        for events in payload.values():
            actions = [event["action"] for event in events]
            assert "cold_adapt" in actions


class TestStreamExecution:
    def test_end_to_end_with_event_table(self, tmp_path, capsys):
        events_path = tmp_path / "events.json"
        assert (
            main(
                [
                    "stream",
                    "--task",
                    "housing",
                    "--scale",
                    "tiny",
                    "--drift",
                    "sudden",
                    "--steps",
                    "8",
                    "--batch-size",
                    "8",
                    "--min-adapt",
                    "16",
                    "--budget",
                    "32",
                    "--jobs",
                    "2",
                    "--events",
                    str(events_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "mse_source" in out and "mse_stream" in out
        assert "cold" in out and "warm" in out
        payload = json.loads(events_path.read_text())
        assert payload  # one event table per scenario
        for events in payload.values():
            assert len(events) == 8
            actions = [event["action"] for event in events]
            assert "cold_adapt" in actions  # every stream reaches first adaptation
            assert all(event["target_id"] for event in events)
