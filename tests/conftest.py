"""Shared pytest fixtures for the TASFAR reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_regression_data(rng) -> tuple[np.ndarray, np.ndarray]:
    """A small noisy linear regression problem (inputs, targets)."""
    inputs = rng.normal(size=(64, 5))
    weights = np.array([1.0, -2.0, 0.5, 0.0, 3.0])
    targets = inputs @ weights + 0.1 * rng.normal(size=64)
    return inputs, targets[:, None]
