"""Tests for the uncertainty-to-sigma calibration (Q_s)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uncertainty import UncertaintyCalibrator, fit_sigma_curve


class TestUncertaintyCalibrator:
    def test_linear_evaluation(self):
        calibrator = UncertaintyCalibrator(intercept=0.1, slope=2.0)
        assert calibrator(0.5) == pytest.approx(1.1)
        np.testing.assert_allclose(calibrator(np.array([0.0, 1.0])), [0.1, 2.1])

    def test_minimum_sigma_enforced(self):
        calibrator = UncertaintyCalibrator(intercept=-1.0, slope=0.0, min_sigma=0.05)
        assert calibrator(0.3) == pytest.approx(0.05)

    def test_as_tuple(self):
        assert UncertaintyCalibrator(1.0, 2.0).as_tuple() == (1.0, 2.0)


class TestFitSigmaCurve:
    def test_recovers_linear_relationship(self):
        rng = np.random.default_rng(0)
        uncertainties = rng.uniform(0.0, 1.0, size=5000)
        # errors drawn with std = 0.1 + 2 * u
        errors = np.abs(rng.normal(0.0, 0.1 + 2.0 * uncertainties))
        calibrator = fit_sigma_curve(uncertainties, errors, n_segments=40)
        assert calibrator.slope == pytest.approx(2.0, rel=0.25)
        assert calibrator.intercept == pytest.approx(0.1, abs=0.15)

    def test_negative_slope_falls_back_to_constant(self):
        rng = np.random.default_rng(1)
        uncertainties = rng.uniform(0.0, 1.0, size=500)
        errors = np.abs(rng.normal(0.0, 1.0 - 0.8 * uncertainties))
        calibrator = fit_sigma_curve(uncertainties, errors)
        assert calibrator.slope == 0.0
        assert calibrator.intercept > 0.0

    def test_constant_uncertainty_falls_back(self):
        calibrator = fit_sigma_curve(np.full(100, 0.5), np.abs(np.random.default_rng(0).normal(size=100)))
        assert calibrator.slope == 0.0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fit_sigma_curve(np.zeros(3), np.zeros(2))
        with pytest.raises(ValueError):
            fit_sigma_curve(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            fit_sigma_curve(np.zeros(3), np.zeros(3), coverage=1.5)
        with pytest.raises(ValueError):
            fit_sigma_curve(np.zeros(3), np.zeros(3), n_segments=0)

    def test_more_segments_than_samples_is_handled(self):
        calibrator = fit_sigma_curve(np.array([0.1, 0.2, 0.3]), np.array([0.1, 0.2, 0.3]), n_segments=50)
        assert np.isfinite(calibrator.intercept)

    @given(
        st.integers(min_value=10, max_value=300),
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_sigma_is_always_positive(self, n, n_segments, seed):
        rng = np.random.default_rng(seed)
        uncertainties = rng.uniform(0.0, 2.0, size=n)
        errors = np.abs(rng.normal(0.0, 1.0, size=n))
        calibrator = fit_sigma_curve(uncertainties, errors, n_segments=n_segments)
        values = calibrator(rng.uniform(0.0, 2.0, size=50))
        assert np.all(values >= calibrator.min_sigma)
