"""Equivalence regression tests: vectorized vs. loop MC dropout.

The vectorized predictor stacks all MC replicas of an input chunk into one
forward pass.  These tests pin down its contract against the sequential-loop
reference (kept here as an oracle, independent of the library's own loop
strategy):

* dropout masks are **bit-for-bit identical** between the strategies for the
  same seed (proved on a matmul-free model, where the network output *is*
  the masked input);
* full-model outputs are bit-for-bit identical when every chunk is full
  (MLP, TCN and MCNN);
* ragged trailing chunks stay within a couple of ULPs — BLAS picks
  differently-blocked GEMM kernels for different row counts, which is a
  rounding-order difference, not an algorithmic one.
"""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import Dropout, RegressionModel, Sequential
from repro.uncertainty import MCDropoutPredictor


class _Identity(nn.Module):
    """Pass-through head so the model output equals the dropout-masked input."""

    def forward(self, inputs):
        return inputs

    def backward(self, grad_output):
        return grad_output


def loop_oracle(build_model, inputs, n_samples, seed, chunk_rows):
    """Reference implementation: ``n_samples`` sequential stochastic passes.

    Mirrors the pre-vectorization protocol — one Python-level forward per MC
    sample — with each dropout layer reading its own seeded stream, iterating
    chunk-major over the input.
    """
    model = build_model()
    model.eval()
    layers = model.dropout_layers()
    children = np.random.SeedSequence(seed).spawn(len(layers))
    for layer, child in zip(layers, children):
        layer.set_mc_rng(np.random.default_rng(child))
    model.set_mc_dropout(True)
    try:
        chunks = []
        for start in range(0, len(inputs), chunk_rows):
            chunk = inputs[start : start + chunk_rows]
            passes = [model.forward(chunk) for _ in range(n_samples)]
            chunks.append(np.stack(passes, axis=0))
        return np.concatenate(chunks, axis=1)
    finally:
        for layer in layers:
            layer.set_mc_rng(None)
        model.set_mc_dropout(False)


MODEL_CASES = {
    "mlp": (
        lambda: nn.build_mlp(6, 2, hidden_dims=(32, 16), dropout=0.3, seed=3),
        (48, 6),
    ),
    "tcn": (
        lambda: nn.build_tcn_regressor(4, 20, output_dim=2, channel_sizes=(8, 8), dropout=0.2, seed=1),
        (48, 4, 20),
    ),
    "mcnn": (
        lambda: nn.build_mcnn_counter(
            image_size=8, column_channels=(3, 4), column_kernels=(3, 5), dropout=0.2, seed=2
        ),
        (24, 1, 8, 8),
    ),
}


class TestMaskEquivalence:
    def test_masks_bitwise_identical(self):
        """On a matmul-free model the outputs are exactly the masked inputs,

        so equality here proves the two strategies draw bit-identical
        dropout masks — for every input size, ragged chunks included.
        """

        def build():
            rng = np.random.default_rng(5)
            encoder = Sequential(Dropout(0.4, rng=rng), Dropout(0.2, rng=rng))
            return RegressionModel(encoder, _Identity())

        inputs = np.random.default_rng(0).normal(size=(53, 3))
        for chunk_rows in (7, 16, 53):
            vectorized = MCDropoutPredictor(
                build(), n_samples=9, seed=77, vectorized=True, mc_batch_rows=chunk_rows
            ).predict(inputs, keep_samples=True)
            looped = MCDropoutPredictor(
                build(), n_samples=9, seed=77, vectorized=False, mc_batch_rows=chunk_rows
            ).predict(inputs, keep_samples=True)
            np.testing.assert_array_equal(vectorized.samples, looped.samples)

    def test_different_seeds_give_different_masks(self):
        build, shape = MODEL_CASES["mlp"]
        inputs = np.random.default_rng(0).normal(size=shape)
        one = MCDropoutPredictor(build(), n_samples=5, seed=1).predict(inputs, keep_samples=True)
        two = MCDropoutPredictor(build(), n_samples=5, seed=2).predict(inputs, keep_samples=True)
        assert not np.array_equal(one.samples, two.samples)


class TestOutputEquivalence:
    @pytest.mark.parametrize("case", sorted(MODEL_CASES))
    def test_bitwise_against_loop_oracle_on_full_chunks(self, case):
        build, shape = MODEL_CASES[case]
        inputs = np.random.default_rng(7).normal(size=shape)
        chunk_rows = 8  # divides every case's input length: no ragged chunk
        vectorized = MCDropoutPredictor(
            build(), n_samples=7, seed=123, vectorized=True, mc_batch_rows=chunk_rows
        ).predict(inputs, keep_samples=True)
        oracle = loop_oracle(build, inputs, n_samples=7, seed=123, chunk_rows=chunk_rows)
        np.testing.assert_array_equal(vectorized.samples, oracle)

    @pytest.mark.parametrize("case", sorted(MODEL_CASES))
    def test_library_loop_strategy_matches_oracle_bitwise(self, case):
        build, shape = MODEL_CASES[case]
        inputs = np.random.default_rng(7).normal(size=shape)
        looped = MCDropoutPredictor(
            build(), n_samples=7, seed=123, vectorized=False, mc_batch_rows=10
        ).predict(inputs, keep_samples=True)
        oracle = loop_oracle(build, inputs, n_samples=7, seed=123, chunk_rows=10)
        np.testing.assert_array_equal(looped.samples, oracle)

    @pytest.mark.parametrize("case", sorted(MODEL_CASES))
    def test_ragged_chunks_match_within_ulps(self, case):
        """Ragged tails hit differently-shaped GEMMs; allow rounding only."""
        build, shape = MODEL_CASES[case]
        inputs = np.random.default_rng(7).normal(size=shape)
        chunk_rows = 9  # leaves a ragged final chunk for every case
        vectorized = MCDropoutPredictor(
            build(), n_samples=7, seed=123, vectorized=True, mc_batch_rows=chunk_rows
        ).predict(inputs, keep_samples=True)
        oracle = loop_oracle(build, inputs, n_samples=7, seed=123, chunk_rows=chunk_rows)
        np.testing.assert_allclose(vectorized.samples, oracle, rtol=1e-12, atol=1e-12)

    def test_uncertainty_statistics_agree(self):
        build, shape = MODEL_CASES["mlp"]
        inputs = np.random.default_rng(3).normal(size=shape)
        vectorized = MCDropoutPredictor(build(), n_samples=20, seed=9, vectorized=True).predict(inputs)
        looped = MCDropoutPredictor(build(), n_samples=20, seed=9, vectorized=False).predict(inputs)
        np.testing.assert_allclose(vectorized.uncertainty, looped.uncertainty, rtol=1e-12, atol=1e-14)
        np.testing.assert_allclose(vectorized.mean, looped.mean, rtol=1e-12, atol=1e-14)

    def test_seeded_predictions_reproducible(self):
        build, shape = MODEL_CASES["tcn"]
        inputs = np.random.default_rng(1).normal(size=shape)
        one = MCDropoutPredictor(build(), n_samples=6, seed=42).predict(inputs, keep_samples=True)
        two = MCDropoutPredictor(build(), n_samples=6, seed=42).predict(inputs, keep_samples=True)
        np.testing.assert_array_equal(one.samples, two.samples)
