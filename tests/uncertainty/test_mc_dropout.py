"""Tests for MC-dropout uncertainty estimation."""

import numpy as np
import pytest

import repro.nn as nn
from repro.uncertainty import MCDropoutPredictor


class TestMCDropoutPredictor:
    def test_shapes(self):
        model = nn.build_mlp(4, 2, hidden_dims=(8,), dropout=0.2, seed=0)
        predictor = MCDropoutPredictor(model, n_samples=5)
        result = predictor.predict(np.random.default_rng(0).normal(size=(10, 4)))
        assert result.mean.shape == (10, 2)
        assert result.std.shape == (10, 2)
        assert result.uncertainty.shape == (10,)
        assert len(result) == 10

    def test_uncertainty_positive_with_dropout(self):
        model = nn.build_mlp(4, 1, hidden_dims=(16,), dropout=0.3, seed=0)
        predictor = MCDropoutPredictor(model, n_samples=10)
        result = predictor.predict(np.random.default_rng(0).normal(size=(20, 4)))
        assert np.all(result.uncertainty >= 0)
        assert result.uncertainty.mean() > 0

    def test_no_dropout_model_gives_zero_uncertainty(self):
        model = nn.build_mlp(4, 1, hidden_dims=(8,), dropout=0.0, seed=0)
        # Remove the dropout layers entirely by rebuilding the encoder without them.
        model.encoder.layers = [layer for layer in model.encoder.layers if not isinstance(layer, nn.Dropout)]
        predictor = MCDropoutPredictor(model, n_samples=5)
        result = predictor.predict(np.zeros((5, 4)))
        np.testing.assert_array_equal(result.uncertainty, 0.0)

    def test_model_left_in_eval_mode(self):
        model = nn.build_mlp(4, 1, hidden_dims=(8,), dropout=0.2, seed=0)
        predictor = MCDropoutPredictor(model, n_samples=3)
        predictor.predict(np.zeros((4, 4)))
        assert not any(layer.mc_mode for layer in model.dropout_layers())
        assert not model.encoder.layers[0].training

    def test_keep_samples(self):
        model = nn.build_mlp(4, 1, hidden_dims=(8,), dropout=0.2, seed=0)
        predictor = MCDropoutPredictor(model, n_samples=7)
        result = predictor.predict(np.zeros((3, 4)), keep_samples=True)
        assert result.samples.shape == (7, 3, 1)

    def test_minimum_samples_validated(self):
        model = nn.build_mlp(4, 1, hidden_dims=(8,), dropout=0.2, seed=0)
        with pytest.raises(ValueError):
            MCDropoutPredictor(model, n_samples=1)

    def test_hard_inputs_are_more_uncertain(self):
        """Large-magnitude (off-manifold) inputs should yield larger spread."""
        rng = np.random.default_rng(0)
        model = nn.build_mlp(4, 1, hidden_dims=(16, 8), dropout=0.2, seed=0)
        trainer = nn.Trainer(model, lr=3e-3)
        inputs = rng.normal(size=(200, 4))
        targets = inputs @ np.array([1.0, -1.0, 0.5, 2.0])
        trainer.fit(nn.ArrayDataset(inputs, targets), epochs=20, batch_size=32, rng=rng)
        predictor = MCDropoutPredictor(model, n_samples=20)
        normal = predictor.predict(rng.normal(size=(100, 4)))
        extreme = predictor.predict(5.0 * rng.normal(size=(100, 4)))
        assert extreme.uncertainty.mean() > normal.uncertainty.mean()
