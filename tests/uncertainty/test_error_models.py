"""Tests for the instance-label error models (Gaussian, Laplace, Uniform)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uncertainty import (
    GaussianErrorModel,
    LaplaceErrorModel,
    UniformErrorModel,
    get_error_model,
)

ALL_MODELS = [GaussianErrorModel(), LaplaceErrorModel(), UniformErrorModel()]


class TestErrorModels:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_total_mass_close_to_one(self, model):
        edges = np.linspace(-50.0, 50.0, 2001)
        mass = model.interval_probability(0.0, 1.0, edges[:-1], edges[1:])
        assert mass.sum() == pytest.approx(1.0, abs=1e-6)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_cdf_monotone(self, model):
        grid = np.linspace(-5, 5, 101)
        cdf = model.cdf(grid, center=0.3, sigma=0.7)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[0] <= 0.01 and cdf[-1] >= 0.99

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_mass_concentrated_near_center(self, model):
        lower = np.array([-1.0])
        upper = np.array([1.0])
        near = model.interval_probability(0.0, 0.5, lower, upper)[0]
        far = model.interval_probability(10.0, 0.5, lower, upper)[0]
        assert near > 0.9
        assert far < 1e-6

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_matching_standard_deviation(self, model):
        """Every family is parameterized so its std equals the requested sigma."""
        sigma = 0.8
        edges = np.linspace(-20, 20, 4001)
        centers = (edges[:-1] + edges[1:]) / 2
        mass = model.interval_probability(0.0, sigma, edges[:-1], edges[1:])
        empirical_std = np.sqrt((mass * centers**2).sum())
        assert empirical_std == pytest.approx(sigma, rel=0.02)

    def test_gaussian_symmetric(self):
        model = GaussianErrorModel()
        left = model.interval_probability(0.0, 1.0, np.array([-2.0]), np.array([-1.0]))
        right = model.interval_probability(0.0, 1.0, np.array([1.0]), np.array([2.0]))
        assert left[0] == pytest.approx(right[0])

    def test_uniform_support_is_bounded(self):
        model = UniformErrorModel()
        sigma = 1.0
        half_width = sigma * np.sqrt(3.0)
        outside = model.interval_probability(
            0.0, sigma, np.array([half_width + 0.01]), np.array([half_width + 1.0])
        )
        assert outside[0] == pytest.approx(0.0, abs=1e-12)

    def test_degenerate_sigma_does_not_crash(self):
        for model in ALL_MODELS:
            mass = model.interval_probability(0.0, 0.0, np.array([-1.0]), np.array([1.0]))
            assert np.isfinite(mass).all()


class TestGetErrorModel:
    def test_lookup(self):
        assert isinstance(get_error_model("gaussian"), GaussianErrorModel)
        assert isinstance(get_error_model("Laplace"), LaplaceErrorModel)
        assert isinstance(get_error_model("UNIFORM"), UniformErrorModel)

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown error model"):
            get_error_model("cauchy")


class TestErrorModelProperties:
    @given(
        st.sampled_from(["gaussian", "laplace", "uniform"]),
        st.floats(min_value=-5.0, max_value=5.0),
        st.floats(min_value=0.05, max_value=3.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_interval_probabilities_are_valid(self, name, center, sigma):
        model = get_error_model(name)
        edges = np.linspace(center - 10 * sigma, center + 10 * sigma, 101)
        mass = model.interval_probability(center, sigma, edges[:-1], edges[1:])
        assert np.all(mass >= -1e-12)
        assert mass.sum() <= 1.0 + 1e-6
