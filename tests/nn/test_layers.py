"""Behavioural tests for individual layers (shapes, modes, edge cases)."""

import numpy as np
import pytest

import repro.nn as nn


class TestLinear:
    def test_forward_shape(self):
        layer = nn.Linear(4, 3)
        assert layer.forward(np.zeros((5, 4))).shape == (5, 3)

    def test_1d_input_is_promoted(self):
        layer = nn.Linear(4, 3)
        assert layer.forward(np.zeros(4)).shape == (1, 3)

    def test_wrong_feature_dim_raises(self):
        layer = nn.Linear(4, 3)
        with pytest.raises(ValueError, match="features"):
            layer.forward(np.zeros((2, 5)))

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            nn.Linear(0, 3)

    def test_no_bias(self):
        layer = nn.Linear(4, 3, bias=False)
        assert layer.bias is None
        assert len([p for p in layer.parameters()]) == 1

    def test_backward_before_forward_raises(self):
        layer = nn.Linear(2, 2)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_unknown_init_raises(self):
        with pytest.raises(ValueError, match="init"):
            nn.Linear(2, 2, init="bogus")

    def test_xavier_init_accepted(self):
        layer = nn.Linear(4, 4, init="xavier")
        assert layer.weight.data.shape == (4, 4)


class TestActivations:
    def test_relu_values(self):
        layer = nn.ReLU()
        out = layer.forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 0.0, 2.0]])

    def test_leaky_relu_negative_slope(self):
        layer = nn.LeakyReLU(0.1)
        out = layer.forward(np.array([[-2.0, 3.0]]))
        np.testing.assert_allclose(out, [[-0.2, 3.0]])

    def test_tanh_range(self):
        layer = nn.Tanh()
        out = layer.forward(np.linspace(-10, 10, 7)[None, :])
        assert np.all(np.abs(out) <= 1.0)

    def test_sigmoid_extremes_are_stable(self):
        layer = nn.Sigmoid()
        out = layer.forward(np.array([[-1000.0, 1000.0]]))
        assert np.all(np.isfinite(out))
        assert out[0, 0] < 1e-6 and out[0, 1] > 1 - 1e-6

    def test_softplus_positive(self):
        layer = nn.Softplus()
        out = layer.forward(np.array([[-5.0, 0.0, 5.0]]))
        assert np.all(out > 0)

    def test_identity_passthrough(self):
        layer = nn.Identity()
        x = np.arange(6.0).reshape(2, 3)
        np.testing.assert_array_equal(layer.forward(x), x)
        np.testing.assert_array_equal(layer.backward(x), x)

    def test_backward_before_forward_raises(self):
        for layer in (nn.ReLU(), nn.Tanh(), nn.Sigmoid(), nn.Softplus(), nn.LeakyReLU()):
            with pytest.raises(RuntimeError):
                layer.backward(np.zeros((1, 1)))


class TestDropout:
    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)
        with pytest.raises(ValueError):
            nn.Dropout(-0.1)

    def test_eval_mode_is_identity(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        layer.training = False
        x = np.ones((4, 10))
        np.testing.assert_array_equal(layer.forward(x), x)

    def test_training_mode_zeroes_and_scales(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        layer.training = True
        x = np.ones((2000, 10))
        out = layer.forward(x)
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        # inverted dropout keeps the expectation roughly unchanged
        assert abs(out.mean() - 1.0) < 0.05

    def test_mc_mode_keeps_dropout_in_eval(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        layer.training = False
        layer.enable_mc(True)
        out = layer.forward(np.ones((100, 10)))
        assert (out == 0).any()
        layer.enable_mc(False)
        np.testing.assert_array_equal(layer.forward(np.ones((5, 5))), np.ones((5, 5)))

    def test_backward_without_mask_passthrough(self):
        layer = nn.Dropout(0.5)
        layer.training = False
        layer.forward(np.ones((2, 2)))
        grad = layer.backward(np.ones((2, 2)))
        np.testing.assert_array_equal(grad, np.ones((2, 2)))


class TestBatchNorm:
    def test_training_normalizes_batch(self):
        layer = nn.BatchNorm1d(3)
        layer.training = True
        x = np.random.default_rng(0).normal(5.0, 3.0, size=(200, 3))
        out = layer.forward(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_eval_uses_running_stats(self):
        layer = nn.BatchNorm1d(2, momentum=0.5)
        layer.training = True
        rng = np.random.default_rng(1)
        for _ in range(50):
            layer.forward(rng.normal(2.0, 1.0, size=(64, 2)))
        layer.training = False
        out = layer.forward(np.full((4, 2), 2.0))
        assert np.all(np.abs(out) < 0.5)

    def test_wrong_shape_raises(self):
        layer = nn.BatchNorm1d(3)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 4)))


class TestPoolingAndReshaping:
    def test_maxpool_output(self):
        layer = nn.MaxPool2d(2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_invalid_size(self):
        with pytest.raises(ValueError):
            nn.MaxPool2d(0)

    def test_global_average_pool_2d(self):
        layer = nn.GlobalAveragePool2d()
        x = np.ones((2, 3, 4, 4)) * 2.0
        out = layer.forward(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out, 2.0)

    def test_global_average_pool_1d(self):
        layer = nn.GlobalAveragePool1d()
        x = np.ones((2, 3, 5)) * 3.0
        np.testing.assert_allclose(layer.forward(x), 3.0)

    def test_flatten_roundtrip(self):
        layer = nn.Flatten()
        x = np.arange(24.0).reshape(2, 3, 4)
        out = layer.forward(x)
        assert out.shape == (2, 12)
        back = layer.backward(out)
        assert back.shape == x.shape


class TestConvValidation:
    def test_conv1d_bad_kernel(self):
        with pytest.raises(ValueError):
            nn.Conv1d(1, 1, kernel_size=0)

    def test_conv1d_wrong_channels(self):
        layer = nn.Conv1d(2, 3, kernel_size=3)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 1, 10)))

    def test_conv1d_same_padding_preserves_length(self):
        layer = nn.Conv1d(2, 3, kernel_size=3)
        out = layer.forward(np.zeros((1, 2, 11)))
        assert out.shape == (1, 3, 11)

    def test_conv2d_output_shape(self):
        layer = nn.Conv2d(1, 2, kernel_size=3, stride=2, padding=1)
        out = layer.forward(np.zeros((1, 1, 9, 9)))
        assert out.shape == (1, 2, 5, 5)

    def test_conv2d_wrong_channels(self):
        layer = nn.Conv2d(3, 2, kernel_size=3)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 1, 8, 8)))

    def test_conv2d_too_small_input(self):
        layer = nn.Conv2d(1, 1, kernel_size=5)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 1, 3, 3)))


class TestGradientReversal:
    def test_forward_identity_backward_flipped(self):
        layer = nn.GradientReversal(scale=2.0)
        x = np.arange(4.0).reshape(2, 2)
        np.testing.assert_array_equal(layer.forward(x), x)
        np.testing.assert_array_equal(layer.backward(np.ones((2, 2))), -2.0 * np.ones((2, 2)))

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            nn.GradientReversal(-1.0)
