"""Tests for ArrayDataset, DataLoader and the train/test split."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.nn as nn


class TestArrayDataset:
    def test_targets_promoted_to_2d(self):
        dataset = nn.ArrayDataset(np.zeros((5, 3)), np.zeros(5))
        assert dataset.targets.shape == (5, 1)
        assert dataset.label_dim == 1

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            nn.ArrayDataset(np.zeros((5, 3)), np.zeros(4))

    def test_weights_validation(self):
        with pytest.raises(ValueError):
            nn.ArrayDataset(np.zeros((5, 3)), np.zeros(5), np.zeros((5, 1)))

    def test_subset(self):
        dataset = nn.ArrayDataset(np.arange(10)[:, None], np.arange(10), np.arange(10.0))
        subset = dataset.subset(np.array([1, 3]))
        np.testing.assert_array_equal(subset.inputs.ravel(), [1, 3])
        np.testing.assert_array_equal(subset.weights, [1.0, 3.0])

    def test_with_weights(self):
        dataset = nn.ArrayDataset(np.zeros((3, 2)), np.zeros(3))
        weighted = dataset.with_weights(np.array([1.0, 2.0, 3.0]))
        assert weighted.weights is not None
        assert dataset.weights is None


class TestDataLoader:
    def test_batch_count(self):
        dataset = nn.ArrayDataset(np.zeros((10, 2)), np.zeros(10))
        loader = nn.DataLoader(dataset, batch_size=3, shuffle=False)
        assert len(loader) == 4
        batches = list(loader)
        assert len(batches) == 4
        assert batches[-1][0].shape[0] == 1

    def test_covers_all_samples_once(self):
        dataset = nn.ArrayDataset(np.arange(20)[:, None], np.arange(20))
        loader = nn.DataLoader(dataset, batch_size=6, shuffle=True, rng=np.random.default_rng(0))
        seen = np.concatenate([inputs.ravel() for inputs, _, _ in loader])
        assert sorted(seen.tolist()) == list(range(20))

    def test_no_shuffle_preserves_order(self):
        dataset = nn.ArrayDataset(np.arange(6)[:, None], np.arange(6))
        loader = nn.DataLoader(dataset, batch_size=2, shuffle=False)
        first_batch = next(iter(loader))[0]
        np.testing.assert_array_equal(first_batch.ravel(), [0, 1])

    def test_weights_passed_through(self):
        dataset = nn.ArrayDataset(np.zeros((4, 1)), np.zeros(4), np.array([1.0, 2.0, 3.0, 4.0]))
        loader = nn.DataLoader(dataset, batch_size=2, shuffle=False)
        _, _, weights = next(iter(loader))
        np.testing.assert_array_equal(weights, [1.0, 2.0])

    def test_invalid_batch_size(self):
        dataset = nn.ArrayDataset(np.zeros((4, 1)), np.zeros(4))
        with pytest.raises(ValueError):
            nn.DataLoader(dataset, batch_size=0)


class TestTrainTestSplit:
    def test_fraction_respected(self):
        dataset = nn.ArrayDataset(np.arange(100)[:, None], np.arange(100))
        train, test = nn.train_test_split(dataset, test_fraction=0.2, rng=np.random.default_rng(0))
        assert len(test) == 20
        assert len(train) == 80

    def test_disjoint_and_complete(self):
        dataset = nn.ArrayDataset(np.arange(50)[:, None], np.arange(50))
        train, test = nn.train_test_split(dataset, test_fraction=0.3, rng=np.random.default_rng(1))
        combined = sorted(np.concatenate([train.inputs, test.inputs]).ravel().tolist())
        assert combined == list(range(50))

    def test_invalid_fraction(self):
        dataset = nn.ArrayDataset(np.zeros((5, 1)), np.zeros(5))
        with pytest.raises(ValueError):
            nn.train_test_split(dataset, test_fraction=0.0)

    @given(st.integers(min_value=5, max_value=200), st.floats(min_value=0.05, max_value=0.9))
    @settings(max_examples=25, deadline=None)
    def test_split_sizes_property(self, n, fraction):
        dataset = nn.ArrayDataset(np.zeros((n, 1)), np.zeros(n))
        train, test = nn.train_test_split(dataset, test_fraction=fraction)
        assert len(train) + len(test) == n
        assert len(test) >= 1
