"""Tests for the weighted regression losses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.nn as nn


class TestMSELoss:
    def test_known_value(self):
        loss = nn.MSELoss()
        value, _ = loss(np.array([[1.0], [3.0]]), np.array([[0.0], [1.0]]))
        assert value == pytest.approx((1.0 + 4.0) / 2)

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        predictions = rng.normal(size=(6, 3))
        targets = rng.normal(size=(6, 3))
        weights = rng.uniform(0.1, 2.0, size=6)
        loss = nn.MSELoss()
        _, grad = loss(predictions, targets, weights)
        eps = 1e-6
        numeric = np.zeros_like(predictions)
        for i in range(predictions.shape[0]):
            for j in range(predictions.shape[1]):
                plus = predictions.copy()
                plus[i, j] += eps
                minus = predictions.copy()
                minus[i, j] -= eps
                numeric[i, j] = (loss(plus, targets, weights)[0] - loss(minus, targets, weights)[0]) / (2 * eps)
        np.testing.assert_allclose(grad, numeric, atol=1e-6)

    def test_zero_weight_sample_ignored(self):
        loss = nn.MSELoss()
        predictions = np.array([[0.0], [100.0]])
        targets = np.array([[0.0], [0.0]])
        value, grad = loss(predictions, targets, np.array([1.0, 0.0]))
        assert value == 0.0
        np.testing.assert_array_equal(grad[1], 0.0)

    def test_all_zero_weights(self):
        loss = nn.MSELoss()
        value, grad = loss(np.ones((3, 1)), np.zeros((3, 1)), np.zeros(3))
        assert value == 0.0
        assert np.all(grad == 0.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            nn.MSELoss()(np.zeros((2, 1)), np.zeros((3, 1)))

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            nn.MSELoss()(np.zeros((2, 1)), np.zeros((2, 1)), np.array([-1.0, 1.0]))

    def test_1d_inputs_promoted(self):
        value, grad = nn.MSELoss()(np.array([1.0, 2.0]), np.array([0.0, 0.0]))
        assert value == pytest.approx(2.5)
        assert grad.shape == (2, 1)


class TestMAELoss:
    def test_known_value(self):
        value, _ = nn.MAELoss()(np.array([[2.0], [-1.0]]), np.array([[0.0], [0.0]]))
        assert value == pytest.approx(1.5)

    def test_gradient_sign(self):
        _, grad = nn.MAELoss()(np.array([[2.0], [-3.0]]), np.array([[0.0], [0.0]]))
        assert grad[0, 0] > 0
        assert grad[1, 0] < 0


class TestHuberLoss:
    def test_quadratic_region_matches_half_mse(self):
        loss = nn.HuberLoss(delta=5.0)
        predictions = np.array([[1.0], [2.0]])
        targets = np.zeros((2, 1))
        value, _ = loss(predictions, targets)
        assert value == pytest.approx(0.5 * (1.0 + 4.0) / 2)

    def test_linear_region(self):
        loss = nn.HuberLoss(delta=1.0)
        value, _ = loss(np.array([[10.0]]), np.array([[0.0]]))
        assert value == pytest.approx(1.0 * (10.0 - 0.5))

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            nn.HuberLoss(delta=0.0)

    def test_gradient_clipped_in_linear_region(self):
        loss = nn.HuberLoss(delta=1.0)
        _, grad = loss(np.array([[100.0]]), np.array([[0.0]]))
        assert grad[0, 0] == pytest.approx(1.0)


class TestGetLoss:
    def test_lookup(self):
        assert isinstance(nn.get_loss("mse"), nn.MSELoss)
        assert isinstance(nn.get_loss("MAE"), nn.MAELoss)
        assert isinstance(nn.get_loss("huber", delta=2.0), nn.HuberLoss)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown loss"):
            nn.get_loss("hinge")


class TestLossProperties:
    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_losses_are_non_negative_and_zero_at_target(self, n, dim, seed):
        rng = np.random.default_rng(seed)
        predictions = rng.normal(size=(n, dim))
        targets = rng.normal(size=(n, dim))
        for name in ("mse", "mae", "huber"):
            loss = nn.get_loss(name)
            value, grad = loss(predictions, targets)
            assert value >= 0.0
            assert grad.shape == predictions.shape
            zero_value, zero_grad = loss(targets, targets)
            assert zero_value == pytest.approx(0.0)
            np.testing.assert_allclose(zero_grad, 0.0)
