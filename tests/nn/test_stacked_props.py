"""Hypothesis property tests for the stacked training ops.

The serve-side tiler argues "bit-identical by construction"; these tests
assert the same argument for the *training* stack, op by op:

* **K=1 byte-identity** — a one-replica stack of any layer op (forward,
  backward, gradient clip, optimizer step, loss) produces byte-for-byte
  the arrays the serial op produces;
* **packing independence** — a replica's bits do not depend on where in
  the stack it sits (packing order) or on which other replicas share the
  stack (dropping stack-mates changes nothing for the survivors).

Inputs are drawn as (seed, shape) pairs and materialized through seeded
generators: hypothesis explores the shape/seed space while the arrays
themselves stay cheap to build and exactly reproducible.
"""

import copy

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    SGD,
    Adam,
    Dropout,
    LayerNorm,
    Linear,
    MSELoss,
    Parameter,
    PerReplicaLoss,
    StackedAdam,
    StackedDropout,
    StackedLayerNorm,
    StackedLinear,
    StackedSGD,
    clip_gradients,
    stacked_clip_gradients,
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)
dims = st.integers(min_value=1, max_value=6)
batches = st.integers(min_value=1, max_value=8)
stack_sizes = st.integers(min_value=2, max_value=4)


def _bytes(*arrays: np.ndarray) -> tuple[bytes, ...]:
    return tuple(array.tobytes() for array in arrays)


# ----------------------------------------------------------------------
# K=1 byte-identity, op by op
# ----------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(seed=seeds, batch=batches, d_in=dims, d_out=dims)
def test_linear_k1_forward_backward_byte_identical(seed, batch, d_in, d_out):
    serial = Linear(d_in, d_out, rng=np.random.default_rng(seed))
    stacked = StackedLinear([copy.deepcopy(serial)])
    rng = np.random.default_rng(seed + 1)
    x = rng.normal(size=(batch, d_in))
    g = rng.normal(size=(batch, d_out))

    out = serial.forward(x)
    out_stacked = stacked.forward(x[None])
    assert out_stacked.shape == (1,) + out.shape
    assert out_stacked[0].tobytes() == out.tobytes()

    grad_in = serial.backward(g)
    grad_in_stacked = stacked.backward(g[None])
    assert grad_in_stacked[0].tobytes() == grad_in.tobytes()
    assert stacked.weight.grad[0].tobytes() == serial.weight.grad.tobytes()
    assert stacked.bias.grad[0].tobytes() == serial.bias.grad.tobytes()


@settings(max_examples=30, deadline=None)
@given(seed=seeds, batch=batches, features=dims)
def test_layernorm_k1_forward_backward_byte_identical(seed, batch, features):
    rng = np.random.default_rng(seed)
    serial = LayerNorm(features)
    serial.gamma.data[:] = rng.normal(size=features)
    serial.beta.data[:] = rng.normal(size=features)
    stacked = StackedLayerNorm([copy.deepcopy(serial)])
    x = rng.normal(size=(batch, features))
    g = rng.normal(size=(batch, features))

    out = serial.forward(x)
    out_stacked = stacked.forward(x[None])
    assert out_stacked[0].tobytes() == out.tobytes()

    grad_in = serial.backward(g)
    grad_in_stacked = stacked.backward(g[None])
    assert grad_in_stacked[0].tobytes() == grad_in.tobytes()
    assert stacked.gamma.grad[0].tobytes() == serial.gamma.grad.tobytes()
    assert stacked.beta.grad[0].tobytes() == serial.beta.grad.tobytes()


@settings(max_examples=30, deadline=None)
@given(
    seed=seeds,
    batch=batches,
    features=dims,
    rate=st.sampled_from([0.0, 0.2, 0.5]),
)
def test_dropout_k1_byte_identical(seed, batch, features, rate):
    serial = Dropout(rate, rng=np.random.default_rng(seed))
    stacked = StackedDropout([copy.deepcopy(serial)])
    serial.train()
    stacked.train()
    rng = np.random.default_rng(seed + 1)
    x = rng.normal(size=(batch, features))
    g = rng.normal(size=(batch, features))

    out = serial.forward(x)
    out_stacked = stacked.forward(x[None])
    assert out_stacked[0].tobytes() == out.tobytes()
    assert stacked.backward(g[None])[0].tobytes() == serial.backward(g).tobytes()


def _param_pair(rng, *shape):
    """A serial parameter with a random gradient and its K=1 stacked twin."""
    serial = Parameter(rng.normal(size=shape))
    serial.accumulate_grad(rng.normal(size=shape))
    stacked = Parameter(serial.data[None].copy())
    stacked.accumulate_grad(serial.grad[None].copy())
    return serial, stacked


@settings(max_examples=30, deadline=None)
@given(
    seed=seeds,
    d_in=dims,
    d_out=dims,
    max_norm=st.floats(min_value=0.01, max_value=20.0),
)
def test_clip_k1_byte_identical(seed, d_in, d_out, max_norm):
    rng = np.random.default_rng(seed)
    weight, weight_stacked = _param_pair(rng, d_in, d_out)
    bias, bias_stacked = _param_pair(rng, d_out)

    norm = clip_gradients([weight, bias], max_norm)
    norms = stacked_clip_gradients([weight_stacked, bias_stacked], max_norm, 1)
    assert norms.shape == (1,) and norms[0] == norm
    assert weight_stacked.grad[0].tobytes() == weight.grad.tobytes()
    assert bias_stacked.grad[0].tobytes() == bias.grad.tobytes()


@settings(max_examples=20, deadline=None)
@given(
    seed=seeds,
    d_in=dims,
    d_out=dims,
    momentum=st.sampled_from([0.0, 0.9]),
    weight_decay=st.sampled_from([0.0, 0.01]),
)
def test_sgd_k1_steps_byte_identical(seed, d_in, d_out, momentum, weight_decay):
    rng = np.random.default_rng(seed)
    weight, weight_stacked = _param_pair(rng, d_in, d_out)
    bias, bias_stacked = _param_pair(rng, d_out)
    serial = SGD([weight, bias], lr=1e-2, momentum=momentum, weight_decay=weight_decay)
    stacked = StackedSGD(
        [weight_stacked, bias_stacked], 1, lr=1e-2,
        momentum=momentum, weight_decay=weight_decay,
    )
    # Two steps with fresh gradients so the momentum buffer is exercised.
    for _ in range(2):
        serial.step()
        stacked.step()
        assert weight_stacked.data[0].tobytes() == weight.data.tobytes()
        assert bias_stacked.data[0].tobytes() == bias.data.tobytes()
        for fresh, params in ((rng.normal(size=(d_in, d_out)), (weight, weight_stacked)),
                              (rng.normal(size=d_out), (bias, bias_stacked))):
            for param in params:
                param.zero_grad()
            params[0].accumulate_grad(fresh)
            params[1].accumulate_grad(fresh[None])


@settings(max_examples=20, deadline=None)
@given(seed=seeds, d_in=dims, d_out=dims, weight_decay=st.sampled_from([0.0, 0.01]))
def test_adam_k1_steps_byte_identical(seed, d_in, d_out, weight_decay):
    rng = np.random.default_rng(seed)
    weight, weight_stacked = _param_pair(rng, d_in, d_out)
    bias, bias_stacked = _param_pair(rng, d_out)
    serial = Adam([weight, bias], lr=1e-3, weight_decay=weight_decay)
    stacked = StackedAdam(
        [weight_stacked, bias_stacked], 1, lr=1e-3, weight_decay=weight_decay
    )
    # Two steps so the bias-corrected moment estimates are exercised.
    for _ in range(2):
        serial.step()
        stacked.step()
        assert weight_stacked.data[0].tobytes() == weight.data.tobytes()
        assert bias_stacked.data[0].tobytes() == bias.data.tobytes()
        for fresh, params in ((rng.normal(size=(d_in, d_out)), (weight, weight_stacked)),
                              (rng.normal(size=d_out), (bias, bias_stacked))):
            for param in params:
                param.zero_grad()
            params[0].accumulate_grad(fresh)
            params[1].accumulate_grad(fresh[None])


@settings(max_examples=30, deadline=None)
@given(seed=seeds, batch=batches, d_out=dims, weighted=st.booleans())
def test_per_replica_loss_k1_byte_identical(seed, batch, d_out, weighted):
    rng = np.random.default_rng(seed)
    predictions = rng.normal(size=(batch, d_out))
    targets = rng.normal(size=(batch, d_out))
    weights = rng.random(batch) + 0.5 if weighted else None

    loss = MSELoss()
    value, grad = loss(predictions, targets, weights)
    values, grads = PerReplicaLoss(MSELoss())(
        predictions[None], targets[None], None if weights is None else weights[None]
    )
    assert values.shape == (1,) and values[0] == value
    assert grads[0].tobytes() == grad.tobytes()


# ----------------------------------------------------------------------
# Packing-order / padding independence (K >= 2)
# ----------------------------------------------------------------------


def _train_step(layers, inputs, targets, order):
    """One full stacked step (forward, loss, backward, clip, optimizer) over
    ``layers`` packed in ``order``; returns per-replica result bits keyed by
    the replica's original index, so packings can be compared directly."""
    stack = StackedLinear([copy.deepcopy(layers[i]) for i in order])
    optimizer = StackedAdam([stack.weight, stack.bias], len(order), lr=1e-3)
    loss = PerReplicaLoss(MSELoss())
    x = np.stack([inputs[i] for i in order])
    t = np.stack([targets[i] for i in order])

    optimizer.zero_grad()
    out = stack.forward(x)
    values, grads = loss(out, t)
    grad_in = stack.backward(grads)
    norms = stacked_clip_gradients(optimizer.parameters, 1.0, len(order))
    optimizer.step()
    return {
        index: (
            float(values[position]),
            float(norms[position]),
            out[position].tobytes(),
            grad_in[position].tobytes(),
            stack.weight.data[position].tobytes(),
            stack.bias.data[position].tobytes(),
        )
        for position, index in enumerate(order)
    }


@settings(max_examples=20, deadline=None)
@given(seed=seeds, batch=batches, d_in=dims, d_out=dims, k=stack_sizes)
def test_stack_packing_order_and_padding_independence(seed, batch, d_in, d_out, k):
    layers = [
        Linear(d_in, d_out, rng=np.random.default_rng(seed + 7 * i + 1))
        for i in range(k)
    ]
    rng = np.random.default_rng(seed)
    inputs = rng.normal(size=(k, batch, d_in))
    targets = rng.normal(size=(k, batch, d_out))

    base = _train_step(layers, inputs, targets, list(range(k)))
    # Order independence: a shuffled packing gives every replica its bits.
    order = list(np.random.default_rng(seed + 3).permutation(k))
    assert _train_step(layers, inputs, targets, order) == base
    # Padding independence: dropping a stack-mate changes nothing for the
    # replicas that remain (the clip threshold of 1.0 makes most replicas
    # actually clip, so per-replica norm isolation is exercised too).
    subset = list(range(k - 1))
    trimmed = _train_step(layers, inputs, targets, subset)
    for index in subset:
        assert trimmed[index] == base[index]


@settings(max_examples=20, deadline=None)
@given(seed=seeds, batch=batches, features=dims, k=stack_sizes)
def test_stacked_dropout_masks_are_position_independent(seed, batch, features, k):
    layers = [Dropout(0.4, rng=np.random.default_rng(seed + i)) for i in range(k)]
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(k, batch, features))

    def masks(order):
        stacked = StackedDropout([copy.deepcopy(layers[i]) for i in order])
        stacked.train()
        out = stacked.forward(np.stack([x[i] for i in order]))
        return {index: out[position].tobytes() for position, index in enumerate(order)}

    base = masks(list(range(k)))
    assert masks(list(reversed(range(k)))) == base
