"""Tests for the supervised Trainer and TrainingHistory."""

import numpy as np
import pytest

import repro.nn as nn


def make_linear_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    inputs = rng.normal(size=(n, 4))
    weights = np.array([1.0, -1.0, 2.0, 0.5])
    targets = inputs @ weights + 0.05 * rng.normal(size=n)
    return nn.ArrayDataset(inputs, targets)


class TestTrainer:
    def test_fit_reduces_loss(self):
        dataset = make_linear_data()
        model = nn.build_mlp(4, 1, hidden_dims=(16,), dropout=0.0, seed=0)
        trainer = nn.Trainer(model, lr=5e-3)
        history = trainer.fit(dataset, epochs=30, batch_size=32, rng=np.random.default_rng(0))
        assert history.losses[-1] < history.losses[0] * 0.2

    def test_predict_shape_and_determinism(self):
        dataset = make_linear_data(50)
        model = nn.build_mlp(4, 1, hidden_dims=(8,), dropout=0.3, seed=0)
        trainer = nn.Trainer(model, lr=1e-3)
        trainer.fit(dataset, epochs=2, batch_size=16)
        first = trainer.predict(dataset.inputs)
        second = trainer.predict(dataset.inputs)
        assert first.shape == (50, 1)
        np.testing.assert_array_equal(first, second)

    def test_evaluate_returns_scalar(self):
        dataset = make_linear_data(64)
        model = nn.build_mlp(4, 1, hidden_dims=(8,), dropout=0.0, seed=0)
        trainer = nn.Trainer(model)
        value = trainer.evaluate(dataset)
        assert isinstance(value, float)
        assert value >= 0.0

    def test_early_stopping_with_patience(self):
        dataset = make_linear_data(100, seed=1)
        validation = make_linear_data(40, seed=2)
        model = nn.build_mlp(4, 1, hidden_dims=(8,), dropout=0.0, seed=0)
        trainer = nn.Trainer(model, lr=5e-3)
        history = trainer.fit(
            dataset, epochs=100, batch_size=32, validation=validation, patience=3,
            rng=np.random.default_rng(0),
        )
        assert history.stopped_epoch is not None
        assert len(history.val_losses) == len(history.losses)

    def test_invalid_epochs(self):
        model = nn.build_mlp(4, 1, hidden_dims=(8,), dropout=0.0)
        trainer = nn.Trainer(model)
        with pytest.raises(ValueError):
            trainer.fit(make_linear_data(10), epochs=0)

    def test_weighted_training_ignores_zero_weight_samples(self):
        rng = np.random.default_rng(0)
        inputs = rng.normal(size=(100, 2))
        targets = inputs @ np.array([1.0, 1.0])
        # half the samples have absurd targets but zero weight
        targets[50:] = 1000.0
        weights = np.concatenate([np.ones(50), np.zeros(50)])
        dataset = nn.ArrayDataset(inputs, targets, weights)
        model = nn.build_mlp(2, 1, hidden_dims=(8,), dropout=0.0, seed=1)
        trainer = nn.Trainer(model, lr=5e-3)
        trainer.fit(dataset, epochs=40, batch_size=25, rng=rng)
        clean_predictions = trainer.predict(inputs[:50])
        assert np.abs(clean_predictions.ravel() - targets[:50]).mean() < 1.0


class TestTrainingHistory:
    def test_final_loss_requires_epochs(self):
        history = nn.TrainingHistory()
        with pytest.raises(ValueError):
            _ = history.final_loss

    def test_loss_drop_rate(self):
        history = nn.TrainingHistory(losses=[10.0, 6.0, 4.0, 3.0])
        assert history.loss_drop_rate(window=3) == pytest.approx((4.0 + 2.0 + 1.0) / 3)

    def test_loss_drop_rate_short_history(self):
        assert nn.TrainingHistory(losses=[1.0]).loss_drop_rate() == 0.0
