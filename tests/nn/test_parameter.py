"""Tests for repro.nn.parameter."""

import numpy as np
import pytest

from repro.nn import Parameter


class TestParameter:
    def test_data_is_copied_to_float64(self):
        raw = np.array([[1, 2], [3, 4]], dtype=np.int32)
        param = Parameter(raw)
        assert param.data.dtype == np.float64
        raw[0, 0] = 99
        assert param.data[0, 0] == 1.0

    def test_shape_and_size(self):
        param = Parameter(np.zeros((3, 4)))
        assert param.shape == (3, 4)
        assert param.size == 12

    def test_grad_starts_at_zero(self):
        param = Parameter(np.ones((2, 2)))
        assert np.all(param.grad == 0.0)

    def test_accumulate_grad_adds(self):
        param = Parameter(np.zeros((2,)))
        param.accumulate_grad(np.array([1.0, 2.0]))
        param.accumulate_grad(np.array([0.5, 0.5]))
        np.testing.assert_allclose(param.grad, [1.5, 2.5])

    def test_accumulate_grad_shape_mismatch_raises(self):
        param = Parameter(np.zeros((2,)))
        with pytest.raises(ValueError, match="gradient shape"):
            param.accumulate_grad(np.zeros((3,)))

    def test_zero_grad_resets(self):
        param = Parameter(np.zeros((2,)))
        param.accumulate_grad(np.ones(2))
        param.zero_grad()
        assert np.all(param.grad == 0.0)

    def test_copy_is_independent(self):
        param = Parameter(np.ones((2,)), name="w", trainable=False)
        clone = param.copy()
        clone.data[0] = 5.0
        assert param.data[0] == 1.0
        assert clone.name == "w"
        assert clone.trainable is False

    def test_default_trainable(self):
        assert Parameter(np.zeros(1)).trainable is True
