"""Tests for optimizers, gradient clipping and LR schedulers."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import Parameter


def quadratic_problem(optimizer_factory, steps=200):
    """Minimize ||w - w*||^2 with the given optimizer; return the final distance."""
    target = np.array([1.0, -2.0, 3.0])
    param = Parameter(np.zeros(3))
    optimizer = optimizer_factory([param])
    for _ in range(steps):
        optimizer.zero_grad()
        param.accumulate_grad(2.0 * (param.data - target))
        optimizer.step()
    return float(np.linalg.norm(param.data - target))


class TestSGD:
    def test_plain_step(self):
        param = Parameter(np.array([1.0]))
        optimizer = nn.SGD([param], lr=0.1)
        param.accumulate_grad(np.array([2.0]))
        optimizer.step()
        assert param.data[0] == pytest.approx(1.0 - 0.1 * 2.0)

    def test_momentum_accumulates(self):
        param = Parameter(np.array([0.0]))
        optimizer = nn.SGD([param], lr=0.1, momentum=0.9)
        for _ in range(2):
            optimizer.zero_grad()
            param.accumulate_grad(np.array([1.0]))
            optimizer.step()
        # first step: -0.1, second: velocity = 0.9 + 1 = 1.9 -> -0.19
        assert param.data[0] == pytest.approx(-0.1 - 0.19)

    def test_weight_decay(self):
        param = Parameter(np.array([1.0]))
        optimizer = nn.SGD([param], lr=0.1, weight_decay=0.5)
        param.accumulate_grad(np.array([0.0]))
        optimizer.step()
        assert param.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_converges_on_quadratic(self):
        assert quadratic_problem(lambda p: nn.SGD(p, lr=0.05)) < 1e-3

    def test_skips_frozen_parameters(self):
        param = Parameter(np.array([1.0]), trainable=False)
        optimizer = nn.SGD([param], lr=0.1)
        param.accumulate_grad(np.array([5.0]))
        optimizer.step()
        assert param.data[0] == 1.0

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            nn.SGD([Parameter(np.zeros(1))], lr=0.0)
        with pytest.raises(ValueError):
            nn.SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.5)


class TestAdam:
    def test_converges_on_quadratic(self):
        assert quadratic_problem(lambda p: nn.Adam(p, lr=0.05), steps=400) < 1e-2

    def test_first_step_magnitude_close_to_lr(self):
        param = Parameter(np.array([0.0]))
        optimizer = nn.Adam([param], lr=0.01)
        param.accumulate_grad(np.array([123.0]))
        optimizer.step()
        assert abs(param.data[0]) == pytest.approx(0.01, rel=1e-3)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            nn.Adam([Parameter(np.zeros(1))], betas=(1.0, 0.9))

    def test_weight_decay_applied(self):
        param = Parameter(np.array([10.0]))
        optimizer = nn.Adam([param], lr=0.1, weight_decay=0.1)
        param.accumulate_grad(np.array([0.0]))
        optimizer.step()
        assert param.data[0] < 10.0


class TestClipGradients:
    def test_norm_reduced(self):
        params = [Parameter(np.zeros(3)) for _ in range(2)]
        for param in params:
            param.accumulate_grad(np.ones(3) * 10.0)
        original = nn.clip_gradients(params, max_norm=1.0)
        assert original > 1.0
        total = np.sqrt(sum(float((p.grad**2).sum()) for p in params))
        assert total == pytest.approx(1.0)

    def test_no_clipping_when_below(self):
        param = Parameter(np.zeros(2))
        param.accumulate_grad(np.array([0.1, 0.1]))
        nn.clip_gradients([param], max_norm=10.0)
        np.testing.assert_allclose(param.grad, [0.1, 0.1])

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            nn.clip_gradients([], max_norm=0.0)


class TestSchedulers:
    def test_step_decay(self):
        optimizer = nn.SGD([Parameter(np.zeros(1))], lr=1.0)
        scheduler = nn.StepDecay(optimizer, step_size=2, gamma=0.5)
        lrs = [scheduler.step() for _ in range(4)]
        assert lrs == [1.0, 0.5, 0.5, 0.25]

    def test_exponential_decay(self):
        optimizer = nn.SGD([Parameter(np.zeros(1))], lr=1.0)
        scheduler = nn.ExponentialDecay(optimizer, gamma=0.9)
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.9)
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.81)

    def test_cosine_annealing_endpoints(self):
        optimizer = nn.SGD([Parameter(np.zeros(1))], lr=2.0)
        scheduler = nn.CosineAnnealing(optimizer, total_epochs=10, min_lr=0.0)
        for _ in range(10):
            final = scheduler.step()
        assert final == pytest.approx(0.0, abs=1e-12)

    def test_invalid_scheduler_args(self):
        optimizer = nn.SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            nn.StepDecay(optimizer, step_size=0)
        with pytest.raises(ValueError):
            nn.ExponentialDecay(optimizer, gamma=0.0)
        with pytest.raises(ValueError):
            nn.CosineAnnealing(optimizer, total_epochs=0)
