"""Numerical gradient checks for every differentiable layer.

These are the backbone of the substrate's correctness: each test compares the
analytic backward pass against central finite differences on a small random
problem.
"""

import numpy as np
import pytest

import repro.nn as nn

EPS = 1e-6
TOLERANCE = 1e-5


def numeric_gradient_check(model, x, y, max_entries_per_param=6):
    """Return the max abs difference between analytic and numeric gradients.

    Parameters are nudged away from their initial values first: freshly
    initialized zero biases can leave ReLU pre-activations exactly at the kink,
    where finite differences and the analytic sub-gradient legitimately differ.
    """
    perturb_rng = np.random.default_rng(123)
    for param in model.parameters():
        param.data += perturb_rng.normal(0.0, 0.05, size=param.data.shape)
    loss = nn.MSELoss()
    model.zero_grad()
    predictions = model.forward(x)
    _, grad = loss(predictions, y)
    model.backward(grad)

    def compute_loss():
        return loss(model.forward(x), y)[0]

    max_error = 0.0
    for param in model.parameters():
        flat = param.data.ravel()
        grad_flat = param.grad.ravel()
        step = max(1, flat.size // max_entries_per_param)
        for index in range(0, flat.size, step):
            original = flat[index]
            flat[index] = original + EPS
            loss_plus = compute_loss()
            flat[index] = original - EPS
            loss_minus = compute_loss()
            flat[index] = original
            numeric = (loss_plus - loss_minus) / (2 * EPS)
            max_error = max(max_error, abs(numeric - grad_flat[index]))
    return max_error


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestDenseGradients:
    def test_linear(self, rng):
        model = nn.Sequential(nn.Linear(5, 3, rng=rng))
        err = numeric_gradient_check(model, rng.normal(size=(8, 5)), rng.normal(size=(8, 3)))
        assert err < TOLERANCE

    def test_mlp_with_activations(self, rng):
        model = nn.Sequential(
            nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 6, rng=rng), nn.Tanh(),
            nn.Linear(6, 5, rng=rng), nn.Sigmoid(), nn.Linear(5, 2, rng=rng),
        )
        err = numeric_gradient_check(model, rng.normal(size=(7, 4)), rng.normal(size=(7, 2)))
        assert err < TOLERANCE

    def test_leaky_relu_and_softplus(self, rng):
        model = nn.Sequential(
            nn.Linear(4, 6, rng=rng), nn.LeakyReLU(0.1), nn.Linear(6, 4, rng=rng), nn.Softplus(),
            nn.Linear(4, 1, rng=rng),
        )
        err = numeric_gradient_check(model, rng.normal(size=(5, 4)), rng.normal(size=(5, 1)))
        assert err < TOLERANCE

    def test_batchnorm_training_mode(self, rng):
        model = nn.Sequential(nn.Linear(4, 6, rng=rng), nn.BatchNorm1d(6), nn.Linear(6, 2, rng=rng))
        model.train()
        err = numeric_gradient_check(model, rng.normal(size=(10, 4)), rng.normal(size=(10, 2)))
        assert err < 1e-4

    def test_layernorm(self, rng):
        model = nn.Sequential(nn.Linear(4, 6, rng=rng), nn.LayerNorm(6), nn.Linear(6, 2, rng=rng))
        err = numeric_gradient_check(model, rng.normal(size=(6, 4)), rng.normal(size=(6, 2)))
        assert err < 1e-4


class TestConvGradients:
    def test_conv1d(self, rng):
        model = nn.RegressionModel(
            nn.Sequential(nn.Conv1d(2, 3, kernel_size=3, rng=rng), nn.ReLU(), nn.GlobalAveragePool1d()),
            nn.Linear(3, 2, rng=rng),
        )
        err = numeric_gradient_check(model, rng.normal(size=(4, 2, 10)), rng.normal(size=(4, 2)))
        assert err < TOLERANCE

    def test_conv1d_dilated(self, rng):
        model = nn.RegressionModel(
            nn.Sequential(nn.Conv1d(2, 3, kernel_size=3, dilation=2, rng=rng), nn.GlobalAveragePool1d()),
            nn.Linear(3, 1, rng=rng),
        )
        err = numeric_gradient_check(model, rng.normal(size=(3, 2, 12)), rng.normal(size=(3, 1)))
        assert err < TOLERANCE

    def test_temporal_block(self, rng):
        model = nn.RegressionModel(
            nn.Sequential(nn.TemporalBlock(2, 4, kernel_size=3, dilation=1, dropout=0.0, rng=rng),
                          nn.GlobalAveragePool1d()),
            nn.Linear(4, 2, rng=rng),
        )
        err = numeric_gradient_check(model, rng.normal(size=(3, 2, 10)), rng.normal(size=(3, 2)))
        assert err < TOLERANCE

    def test_conv2d_with_pooling(self, rng):
        model = nn.RegressionModel(
            nn.Sequential(
                nn.Conv2d(1, 2, kernel_size=3, padding=1, rng=rng),
                nn.ReLU(),
                nn.MaxPool2d(2),
                nn.Conv2d(2, 3, kernel_size=3, padding=1, rng=rng),
                nn.GlobalAveragePool2d(),
            ),
            nn.Linear(3, 1, rng=rng),
        )
        err = numeric_gradient_check(model, rng.normal(size=(3, 1, 8, 8)), rng.normal(size=(3, 1)))
        assert err < TOLERANCE

    def test_conv2d_strided_flatten(self, rng):
        model = nn.RegressionModel(
            nn.Sequential(nn.Conv2d(1, 2, kernel_size=3, stride=2, rng=rng), nn.Flatten()),
            nn.Linear(2 * 3 * 3, 1, rng=rng),
        )
        err = numeric_gradient_check(model, rng.normal(size=(2, 1, 7, 7)), rng.normal(size=(2, 1)))
        assert err < TOLERANCE

    def test_mcnn_builder(self, rng):
        model = nn.build_mcnn_counter(
            image_size=8, column_channels=(2, 2), column_kernels=(3, 5), dropout=0.0, seed=11
        )
        err = numeric_gradient_check(model, rng.normal(size=(3, 1, 8, 8)), rng.normal(size=(3, 1)))
        assert err < TOLERANCE

    def test_tcn_builder(self, rng):
        model = nn.build_tcn_regressor(
            in_channels=3, window_length=12, output_dim=2, channel_sizes=(4,), dropout=0.0, seed=5
        )
        err = numeric_gradient_check(model, rng.normal(size=(3, 3, 12)), rng.normal(size=(3, 2)))
        assert err < TOLERANCE
