"""Tests for repro.nn.module and containers."""

import numpy as np
import pytest

from repro.nn import Linear, Module, ReLU, Residual, Sequential


def build_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(3, 4, rng=rng), ReLU(), Linear(4, 2, rng=rng))


class TestModule:
    def test_parameters_collected_recursively(self):
        model = build_model()
        # two Linear layers with weight + bias each
        assert len(model.parameters()) == 4

    def test_num_parameters(self):
        model = build_model()
        assert model.num_parameters() == 3 * 4 + 4 + 4 * 2 + 2

    def test_zero_grad_clears_all(self):
        model = build_model()
        out = model.forward(np.ones((2, 3)))
        model.backward(np.ones_like(out))
        assert any(np.any(p.grad != 0) for p in model.parameters())
        model.zero_grad()
        assert all(np.all(p.grad == 0) for p in model.parameters())

    def test_train_eval_propagates(self):
        model = build_model()
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_state_dict_roundtrip(self):
        model = build_model(seed=1)
        other = build_model(seed=2)
        state = model.state_dict()
        other.load_state_dict(state)
        x = np.random.default_rng(0).normal(size=(5, 3))
        np.testing.assert_allclose(model.forward(x), other.forward(x))

    def test_load_state_dict_wrong_length_raises(self):
        model = build_model()
        with pytest.raises(ValueError, match="parameters"):
            model.load_state_dict({"only": np.zeros(1)})

    def test_forward_backward_abstract(self):
        module = Module()
        with pytest.raises(NotImplementedError):
            module.forward(np.zeros(1))
        with pytest.raises(NotImplementedError):
            module.backward(np.zeros(1))


class TestSequential:
    def test_len_getitem_iter(self):
        model = build_model()
        assert len(model) == 3
        assert isinstance(model[1], ReLU)
        assert len(list(iter(model))) == 3

    def test_append(self):
        model = build_model()
        model.append(ReLU())
        assert len(model) == 4

    def test_forward_matches_manual_composition(self):
        rng = np.random.default_rng(3)
        layer1 = Linear(3, 4, rng=rng)
        layer2 = Linear(4, 2, rng=rng)
        model = Sequential(layer1, layer2)
        x = rng.normal(size=(6, 3))
        np.testing.assert_allclose(model.forward(x), layer2.forward(layer1.forward(x)))


class TestResidual:
    def test_forward_adds_input(self):
        rng = np.random.default_rng(0)
        body = Linear(4, 4, rng=rng)
        residual = Residual(body)
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(residual.forward(x), x + body.forward(x))

    def test_shape_mismatch_raises(self):
        rng = np.random.default_rng(0)
        residual = Residual(Linear(4, 3, rng=rng))
        with pytest.raises(ValueError, match="shape"):
            residual.forward(rng.normal(size=(2, 4)))

    def test_backward_sums_paths(self):
        rng = np.random.default_rng(0)
        body = Linear(4, 4, rng=rng)
        residual = Residual(body)
        x = rng.normal(size=(3, 4))
        residual.forward(x)
        grad = residual.backward(np.ones((3, 4)))
        assert grad.shape == (3, 4)
        # identity path contributes at least the incoming gradient
        assert np.all(np.isfinite(grad))
