"""Tests for model builders, RegressionModel and serialization."""

import numpy as np
import pytest

import repro.nn as nn


class TestRegressionModel:
    def test_forward_composition(self):
        rng = np.random.default_rng(0)
        model = nn.RegressionModel(nn.Sequential(nn.Linear(3, 5, rng=rng), nn.ReLU()), nn.Linear(5, 2, rng=rng))
        x = rng.normal(size=(4, 3))
        features = model.features(x)
        assert features.shape == (4, 5)
        assert model.forward(x).shape == (4, 2)

    def test_dropout_layer_discovery_and_mc_toggle(self):
        model = nn.build_mlp(4, 1, hidden_dims=(8, 8), dropout=0.2, seed=0)
        layers = model.dropout_layers()
        assert len(layers) == 2
        model.set_mc_dropout(True)
        assert all(layer.mc_mode for layer in layers)
        model.set_mc_dropout(False)
        assert not any(layer.mc_mode for layer in layers)

    def test_backward_features_only_touches_encoder(self):
        model = nn.build_mlp(3, 1, hidden_dims=(6,), dropout=0.0, seed=0)
        x = np.random.default_rng(0).normal(size=(5, 3))
        model.zero_grad()
        features = model.features(x)
        model.backward_features(np.ones_like(features))
        head_grads = [np.abs(p.grad).sum() for p in model.head.parameters()]
        encoder_grads = [np.abs(p.grad).sum() for p in model.encoder.parameters()]
        assert all(g == 0 for g in head_grads)
        assert any(g > 0 for g in encoder_grads)


class TestBuilders:
    def test_mlp_shapes(self):
        model = nn.build_mlp(7, 3, hidden_dims=(16, 8), dropout=0.1, seed=0)
        out = model.forward(np.zeros((5, 7)))
        assert out.shape == (5, 3)

    def test_mlp_requires_hidden_layers(self):
        with pytest.raises(ValueError):
            nn.build_mlp(4, 1, hidden_dims=())

    def test_tcn_regressor_shapes(self):
        model = nn.build_tcn_regressor(6, 20, output_dim=2, channel_sizes=(8, 8), seed=0)
        out = model.forward(np.zeros((3, 6, 20)))
        assert out.shape == (3, 2)

    def test_tcn_handles_different_window_lengths(self):
        model = nn.build_tcn_regressor(4, 16, output_dim=2, channel_sizes=(8,), seed=0)
        assert model.forward(np.zeros((2, 4, 24))).shape == (2, 2)

    def test_mcnn_counter_shapes(self):
        model = nn.build_mcnn_counter(image_size=12, column_channels=(2, 3), column_kernels=(3, 5), seed=0)
        out = model.forward(np.zeros((4, 1, 12, 12)))
        assert out.shape == (4, 1)

    def test_mcnn_column_mismatch_raises(self):
        with pytest.raises(ValueError):
            nn.build_mcnn_counter(column_channels=(2, 3), column_kernels=(3,))

    def test_domain_discriminator_outputs_probabilities(self):
        disc = nn.build_domain_discriminator(8, hidden_dim=4, seed=0)
        out = disc.forward(np.random.default_rng(0).normal(size=(10, 8)))
        assert out.shape == (10, 1)
        assert np.all((out >= 0) & (out <= 1))

    def test_builders_are_deterministic_by_seed(self):
        a = nn.build_mlp(4, 1, seed=42)
        b = nn.build_mlp(4, 1, seed=42)
        x = np.random.default_rng(0).normal(size=(3, 4))
        np.testing.assert_array_equal(a.forward(x), b.forward(x))


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        model = nn.build_mlp(4, 2, hidden_dims=(8,), dropout=0.0, seed=0)
        path = tmp_path / "model.npz"
        nn.save_model(model, path)
        other = nn.build_mlp(4, 2, hidden_dims=(8,), dropout=0.0, seed=99)
        nn.load_model(other, path)
        x = np.random.default_rng(0).normal(size=(6, 4))
        np.testing.assert_allclose(model.forward(x), other.forward(x))

    def test_load_mismatched_architecture_raises(self, tmp_path):
        model = nn.build_mlp(4, 2, hidden_dims=(8,), dropout=0.0, seed=0)
        path = tmp_path / "model.npz"
        nn.save_model(model, path)
        wrong = nn.build_mlp(4, 2, hidden_dims=(8, 8), dropout=0.0, seed=0)
        with pytest.raises(ValueError):
            nn.load_model(wrong, path)

    def test_copy_parameters(self):
        a = nn.build_mlp(3, 1, hidden_dims=(4,), dropout=0.0, seed=0)
        b = nn.build_mlp(3, 1, hidden_dims=(4,), dropout=0.0, seed=5)
        nn.copy_parameters(a, b)
        x = np.random.default_rng(0).normal(size=(2, 3))
        np.testing.assert_array_equal(a.forward(x), b.forward(x))

    def test_copy_parameters_shape_mismatch(self):
        a = nn.build_mlp(3, 1, hidden_dims=(4,), dropout=0.0)
        b = nn.build_mlp(3, 1, hidden_dims=(5,), dropout=0.0)
        with pytest.raises(ValueError):
            nn.copy_parameters(a, b)
