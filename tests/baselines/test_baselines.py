"""Tests for the UDA baseline adapters."""

import numpy as np
import pytest

import repro.nn as nn
from repro.baselines import (
    AdapterResult,
    AdversarialUda,
    AugFree,
    DataFree,
    FeatureStatistics,
    MmdUda,
    SCHEME_NAMES,
    SourceOnly,
    TasfarAdapter,
    logistic_loss,
    make_adapter,
    rbf_mmd,
    variance_perturbation,
)
from repro.core import TasfarConfig


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(0)
    source_inputs = rng.normal(size=(200, 5))
    weights = np.array([1.0, -0.5, 2.0, 0.0, 1.0])
    source_labels = source_inputs @ weights + 0.05 * rng.normal(size=200)
    target_inputs = rng.normal(loc=0.4, size=(80, 5))
    model = nn.build_mlp(5, 1, hidden_dims=(16, 8), dropout=0.2, seed=0)
    trainer = nn.Trainer(model, lr=3e-3)
    source_data = nn.ArrayDataset(source_inputs, source_labels)
    trainer.fit(source_data, epochs=25, batch_size=32, rng=rng)
    return {"model": model, "source": source_data, "target": target_inputs}


class TestRbfMmd:
    def test_identical_sets_give_near_zero(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(30, 4))
        mmd2, grad_a, grad_b = rbf_mmd(features, features.copy())
        assert mmd2 == pytest.approx(0.0, abs=1e-10)
        assert grad_a.shape == features.shape
        assert grad_b.shape == features.shape

    def test_shifted_sets_give_positive(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(40, 4))
        b = rng.normal(loc=3.0, size=(40, 4))
        mmd2, _, _ = rbf_mmd(a, b)
        assert mmd2 > 0.1

    def test_gradient_direction_reduces_mmd(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(20, 3))
        b = rng.normal(loc=2.0, size=(20, 3))
        mmd_before, grad_a, grad_b = rbf_mmd(a, b, bandwidth=1.0)
        step = 0.5
        mmd_after, _, _ = rbf_mmd(a - step * grad_a, b - step * grad_b, bandwidth=1.0)
        assert mmd_after < mmd_before

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            rbf_mmd(np.zeros((1, 2)), np.zeros((5, 2)))


class TestLogisticLoss:
    def test_perfect_predictions_give_small_loss(self):
        logits = np.array([10.0, -10.0])
        labels = np.array([1.0, 0.0])
        value, grad = logistic_loss(logits, labels)
        assert value < 1e-3
        assert np.all(np.abs(grad) < 1e-3)

    def test_gradient_sign(self):
        value, grad = logistic_loss(np.array([0.0]), np.array([1.0]))
        assert value == pytest.approx(np.log(2))
        assert grad[0, 0] < 0  # push the logit up

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            logistic_loss(np.zeros(2), np.zeros(3))


class TestSourceOnly:
    def test_returns_copy(self, setup):
        result = SourceOnly().adapt(setup["model"], setup["target"])
        assert isinstance(result, AdapterResult)
        assert result.target_model is not setup["model"]
        x = setup["target"][:5]
        np.testing.assert_allclose(result.target_model.forward(x), setup["model"].forward(x))


class TestMmdUda:
    def test_requires_source_data(self, setup):
        with pytest.raises(ValueError):
            MmdUda(epochs=1).adapt(setup["model"], setup["target"], source_data=None)

    def test_adapt_runs_and_keeps_model_reasonable(self, setup):
        adapter = MmdUda(epochs=3, seed=0)
        result = adapter.adapt(setup["model"], setup["target"], source_data=setup["source"])
        assert len(result.losses) == 3
        source_mse = float(np.mean((result.target_model.forward(setup["source"].inputs)
                                     - setup["source"].targets) ** 2))
        base_mse = float(np.mean((setup["model"].forward(setup["source"].inputs)
                                  - setup["source"].targets) ** 2))
        assert source_mse < base_mse * 3 + 0.5

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            MmdUda(epochs=0)


class TestAdversarialUda:
    def test_requires_source_data(self, setup):
        with pytest.raises(ValueError):
            AdversarialUda(epochs=1).adapt(setup["model"], setup["target"])

    def test_adapt_runs(self, setup):
        adapter = AdversarialUda(epochs=2, seed=0)
        result = adapter.adapt(setup["model"], setup["target"], source_data=setup["source"])
        assert len(result.losses) == 2
        assert result.diagnostics["adversarial_weight"] == adapter.adversarial_weight


class TestDataFree:
    def test_feature_statistics(self, setup):
        features = setup["model"].features(setup["source"].inputs)
        statistics = FeatureStatistics.from_features(features)
        assert statistics.mean.shape == (features.shape[1],)
        np.testing.assert_allclose(statistics.histograms.sum(axis=1), 1.0, atol=1e-9)

    def test_feature_statistics_validation(self):
        with pytest.raises(ValueError):
            FeatureStatistics.from_features(np.zeros((1, 3)))

    def test_requires_statistics_or_source(self, setup):
        with pytest.raises(ValueError):
            DataFree(epochs=1).adapt(setup["model"], setup["target"])

    def test_adapt_with_precomputed_statistics(self, setup):
        adapter = DataFree(epochs=2, seed=0)
        adapter.fit_source_statistics(setup["model"], setup["source"].inputs)
        result = adapter.adapt(setup["model"], setup["target"])
        assert len(result.losses) == 2
        # head parameters must be trainable again afterwards
        assert all(p.trainable for p in result.target_model.head.parameters())

    def test_head_is_frozen_during_adaptation(self, setup):
        adapter = DataFree(epochs=1, seed=0)
        adapter.fit_source_statistics(setup["model"], setup["source"].inputs)
        result = adapter.adapt(setup["model"], setup["target"])
        for before, after in zip(setup["model"].head.parameters(), result.target_model.head.parameters()):
            np.testing.assert_array_equal(before.data, after.data)


class TestAugFree:
    def test_variance_perturbation_preserves_shape(self):
        rng = np.random.default_rng(0)
        inputs = rng.normal(size=(10, 3, 4))
        perturbed = variance_perturbation(inputs, rng, strength=0.1)
        assert perturbed.shape == inputs.shape
        assert not np.allclose(perturbed, inputs)

    def test_adapt_runs_and_stays_close_to_teacher(self, setup):
        adapter = AugFree(epochs=2, seed=0)
        result = adapter.adapt(setup["model"], setup["target"])
        teacher = setup["model"].forward(setup["target"])
        student = result.target_model.forward(setup["target"])
        assert np.abs(teacher - student).mean() < 1.0


class TestTasfarAdapter:
    def test_requires_calibration_or_source(self, setup):
        with pytest.raises(ValueError):
            TasfarAdapter(TasfarConfig(adaptation_epochs=2)).adapt(setup["model"], setup["target"])

    def test_adapt_after_explicit_calibration(self, setup):
        adapter = TasfarAdapter(TasfarConfig(adaptation_epochs=3, seed=0))
        adapter.calibrate(setup["model"], setup["source"].inputs, setup["source"].targets)
        result = adapter.adapt(setup["model"], setup["target"])
        assert "uncertain_ratio" in result.diagnostics
        assert 0.0 <= result.diagnostics["uncertain_ratio"] <= 1.0

    def test_adapt_with_source_data_autocalibrates(self, setup):
        adapter = TasfarAdapter(TasfarConfig(adaptation_epochs=2, seed=0))
        result = adapter.adapt(setup["model"], setup["target"], source_data=setup["source"])
        assert adapter.calibration is not None
        assert result.target_model is not setup["model"]


class TestRegistry:
    def test_all_schemes_constructible(self):
        for name in SCHEME_NAMES:
            adapter = make_adapter(name)
            assert adapter.name == name if name != "baseline" else adapter.name == "baseline"

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            make_adapter("bogus")

    def test_kwargs_passed_through(self):
        adapter = make_adapter("mmd", epochs=7)
        assert adapter.epochs == 7
