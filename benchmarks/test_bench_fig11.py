"""Benchmark regenerating Fig. 11: credibility/error correlation per user."""

import pytest


@pytest.mark.benchmark(group="pdr")
def test_fig11(run_figure):
    """Fig. 11: credibility/error correlation per user."""
    result = run_figure("fig11_credibility_correlation")
    assert result.rows, "the experiment must produce at least one row"
