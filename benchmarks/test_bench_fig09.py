"""Benchmark regenerating Fig. 9: pseudo-label error vs. segment quantity q."""

import pytest


@pytest.mark.benchmark(group="pdr")
def test_fig09(run_figure):
    """Fig. 9: pseudo-label error vs. segment quantity q."""
    result = run_figure("fig9_segment_count")
    assert result.rows, "the experiment must produce at least one row"
