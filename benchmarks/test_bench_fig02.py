"""Benchmark regenerating Fig. 2: per-user stride-length (label) distributions."""

import pytest


@pytest.mark.benchmark(group="pdr")
def test_fig02(run_figure):
    """Fig. 2: per-user stride-length (label) distributions."""
    result = run_figure("fig2_label_distributions")
    assert result.rows, "the experiment must produce at least one row"
