"""Benchmark regenerating Fig. 19: per-scene crowd counting comparison."""

import pytest


@pytest.mark.benchmark(group="counting")
def test_fig19(run_figure):
    """Fig. 19: per-scene crowd counting comparison."""
    result = run_figure("fig19_counting_scenes")
    assert result.rows, "the experiment must produce at least one row"
