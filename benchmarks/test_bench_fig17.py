"""Benchmark regenerating Fig. 17: RTE reduction distribution, seen group."""

import pytest


@pytest.mark.benchmark(group="pdr")
def test_fig17(run_figure):
    """Fig. 17: RTE reduction distribution, seen group."""
    result = run_figure("fig17_rte_reduction_seen")
    assert result.rows, "the experiment must produce at least one row"
