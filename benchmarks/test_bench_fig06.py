"""Benchmark regenerating Fig. 6: estimated vs. true label density maps."""

import pytest


@pytest.mark.benchmark(group="pdr")
def test_fig06(run_figure):
    """Fig. 6: estimated vs. true label density maps."""
    result = run_figure("fig6_density_maps")
    assert result.rows, "the experiment must produce at least one row"
