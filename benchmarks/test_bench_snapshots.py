"""Micro-benchmark for the warm snapshot tier: resume vs cold re-adapt.

An evicted target used to cost a full cold adaptation on its next touch.
With a :class:`repro.runtime.SnapshotStore` attached, eviction spills the
adapted state to disk and the next touch *resumes* it — deepcopy the
source skeleton, load the spilled weights byte-for-byte, re-attach the
report — skipping pseudo-labeling and fine-tuning entirely:

* the resumed models must be **bit-identical** to the evicted ones —
  parameters and (wall-clock-scrubbed) reports (hard assertion, never
  downgraded);
* resuming all K targets must beat cold re-adapting them by at least
  **3x** wall-clock (downgraded to a warning under ``REPRO_BENCH_SMOKE=1``).
"""

from __future__ import annotations

import time

import numpy as np

import repro.nn as nn
from repro.core import Tasfar, TasfarConfig
from repro.obs import scrub_wall_clock
from repro.runtime import AdaptationService, SnapshotStore

K = 6
N_SOURCE = 160
N_TARGET_ROWS = 48
FEATURES = 4
SPEEDUP_BAR = 3.0


def make_source():
    rng = np.random.default_rng(0)
    weights = np.array([1.0, -0.5, 0.25, 2.0])
    inputs = rng.normal(size=(N_SOURCE, FEATURES))
    targets = inputs @ weights + 0.1 * rng.normal(size=N_SOURCE)
    model = nn.build_mlp(FEATURES, 1, hidden_dims=(16, 8), dropout=0.2, seed=0)
    trainer = nn.Trainer(model, lr=3e-3)
    trainer.fit(nn.ArrayDataset(inputs, targets), epochs=15, batch_size=32, rng=rng)
    config = TasfarConfig(
        n_mc_samples=8,
        n_segments=5,
        adaptation_epochs=12,
        min_adaptation_epochs=1,
        early_stop=False,
        seed=0,
    )
    calibration = Tasfar(config).calibrate_on_source(model, inputs, targets)
    return model, calibration, config


def make_targets():
    targets = {}
    for index in range(K):
        rng = np.random.default_rng(100 + index)
        targets[f"user_{index:02d}"] = rng.normal(
            loc=0.2 * index, size=(N_TARGET_ROWS, FEATURES)
        )
    return targets


def test_warm_resume_beats_cold_readapt(tmp_path, record_bench, perf_check):
    model, calibration, config = make_source()
    targets = make_targets()

    store = SnapshotStore(tmp_path / "snapshots")
    tiered = AdaptationService(model, calibration, config=config, snapshot_store=store)
    tiered.adapt_many(targets)
    evicted_bytes = {
        name: nn.parameter_bytes(tiered.model_for(name)) for name in targets
    }
    evicted_reports = {
        name: scrub_wall_clock(tiered.report_for(name).to_dict()) for name in targets
    }
    tiered.evict()  # spill all K adapted models to the warm tier

    # Warm path: every touch loads the spilled weights instead of adapting.
    start = time.perf_counter()
    for name in targets:
        assert tiered.model_for(name) is not None
    resume_seconds = time.perf_counter() - start

    # Correctness first — and unconditionally: resume must be bit-identical.
    for name in targets:
        assert nn.parameter_bytes(tiered.model_for(name)) == evicted_bytes[name]
        assert scrub_wall_clock(tiered.report_for(name).to_dict()) == evicted_reports[name]

    # Cold path: the same K targets through a fresh storeless service.
    cold = AdaptationService(model, calibration, config=config)
    start = time.perf_counter()
    cold.adapt_many(targets)
    cold_seconds = time.perf_counter() - start
    speedup = cold_seconds / resume_seconds

    text = (
        f"[bench_snapshots] cold re-adapt vs warm resume "
        f"(K={K} evicted targets, {N_TARGET_ROWS} rows, "
        f"{config.adaptation_epochs} epochs)\n"
        f"cold  ({K} adaptations):   {cold_seconds * 1e3:8.2f} ms\n"
        f"warm  ({K} snapshot loads): {resume_seconds * 1e3:8.2f} ms  "
        f"(bit-identical, {speedup:.2f}x)"
    )
    print("\n" + text)
    record_bench(
        text,
        tags={"k": K},
        wall_seconds={"cold_adapt": cold_seconds, "warm_resume": resume_seconds},
    )

    perf_check(
        speedup >= SPEEDUP_BAR,
        f"warm resume speedup {speedup:.2f}x at K={K} below the "
        f"{SPEEDUP_BAR:.1f}x bar (cold {cold_seconds * 1e3:.2f} ms, "
        f"resume {resume_seconds * 1e3:.2f} ms)",
    )
