"""Benchmark regenerating Fig. 15: STE reduction on adaptation vs. test split."""

import pytest


@pytest.mark.benchmark(group="pdr")
def test_fig15(run_figure):
    """Fig. 15: STE reduction on adaptation vs. test split."""
    result = run_figure("fig15_adaptation_vs_test")
    assert result.rows, "the experiment must produce at least one row"
