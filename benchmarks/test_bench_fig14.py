"""Benchmark regenerating Fig. 14: STE reduction per scheme, seen group."""

import pytest


@pytest.mark.benchmark(group="pdr")
def test_fig14(run_figure):
    """Fig. 14: STE reduction per scheme, seen group."""
    result = run_figure("fig14_ste_reduction_seen")
    assert result.rows, "the experiment must produce at least one row"
