"""Benchmark regenerating Fig. 18: RTE reduction distribution, unseen group."""

import pytest


@pytest.mark.benchmark(group="pdr")
def test_fig18(run_figure):
    """Fig. 18: RTE reduction distribution, unseen group."""
    result = run_figure("fig18_rte_reduction_unseen")
    assert result.rows, "the experiment must produce at least one row"
