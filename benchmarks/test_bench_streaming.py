"""Benchmarks for the streaming adaptation subsystem.

Two measurements, recorded into ``benchmark_report.txt``:

* **ingest throughput** — events/sec through
  :meth:`StreamingAdaptationService.ingest` while the service is only
  buffering and maintaining the online density map / drift monitor (the
  steady-state hot path between re-adaptations);
* **warm vs. cold re-adaptation** — after a sudden drift, the service
  re-adapts by fine-tuning the *cached adapted model* with a short schedule.
  That warm start must complete in less wall-clock than a cold
  ``Tasfar.adapt`` from the source model on the same drifted stream, while
  landing within noise of the cold run's test MAE on the drifted regime.
"""

from __future__ import annotations

import time

import numpy as np

import repro.nn as nn
from repro.core import Tasfar, TasfarConfig
from repro.data import TargetScenario, make_drift_stream
from repro.metrics import mae
from repro.streaming import StreamingAdaptationService


def make_streaming_fixture():
    """Source model + calibration + a drifting two-regime target scenario."""
    rng = np.random.default_rng(0)
    weights = np.array([1.0, -0.5, 0.25, 2.0])
    inputs = rng.normal(size=(240, 4))
    targets = inputs @ weights + 0.1 * rng.normal(size=240)
    model = nn.build_mlp(4, 1, hidden_dims=(16, 8), dropout=0.2, seed=0)
    nn.Trainer(model, lr=3e-3).fit(
        nn.ArrayDataset(inputs, targets), epochs=15, batch_size=32, rng=rng
    )
    config = TasfarConfig(
        n_mc_samples=8,
        n_segments=5,
        adaptation_epochs=8,
        min_adaptation_epochs=2,
        early_stop=False,
        seed=0,
    )
    calibration = Tasfar(config).calibrate_on_source(model, inputs, targets)

    target_rng = np.random.default_rng(7)
    target_inputs = target_rng.normal(loc=0.3, size=(320, 4))
    target_labels = target_inputs @ weights + 0.5 + 0.1 * target_rng.normal(size=320)
    scenario = TargetScenario(
        "stream_user",
        adaptation=nn.ArrayDataset(target_inputs[:240], target_labels[:240]),
        test=nn.ArrayDataset(target_inputs[240:], target_labels[240:]),
    )
    return model, calibration, config, scenario


def build_service(model, calibration, config, **kwargs):
    kwargs.setdefault("min_adapt_events", 64)
    kwargs.setdefault("readapt_budget", 10_000)
    kwargs.setdefault("warm_epochs", 2)
    kwargs.setdefault("drift_threshold", 0.4)
    kwargs.setdefault("drift_delta", 0.05)
    kwargs.setdefault("drift_min_batches", 2)
    return StreamingAdaptationService(model, calibration, config=config, **kwargs)


def test_ingest_throughput(record_bench, perf_check):
    """Steady-state ingest (buffer + density map + drift probe) throughput."""
    model, calibration, config, scenario = make_streaming_fixture()
    stream = make_drift_stream(scenario, "gradual", n_steps=40, batch_size=16, seed=0)
    service = build_service(
        model, calibration, config, min_adapt_events=64, drift_threshold=10.0
    )
    # Warm up past the first cold adaptation, then time pure ingest steps.
    warmup = 4
    for batch in stream.batches[:warmup]:
        service.ingest("user", batch.inputs)
    assert service.report_for("user") is not None

    timed = stream.batches[warmup:]
    start = time.perf_counter()
    for batch in timed:
        service.ingest("user", batch.inputs)
    elapsed = time.perf_counter() - start
    n_events = sum(len(batch) for batch in timed)
    throughput = n_events / elapsed

    text = (
        f"[bench_streaming] ingest throughput ({len(timed)} batches x 16 events)\n"
        f"steady-state ingest: {n_events} events in {elapsed * 1e3:8.1f} ms  "
        f"({throughput:8.0f} events/sec)"
    )
    print("\n" + text)
    record_bench(text)
    # The hot path must stay interactive: well over a hundred events/sec even
    # with MC-dropout probing on every batch.
    perf_check(throughput > 100.0, f"ingest throughput {throughput:.0f} events/s <= 100")


def test_warm_readaptation_beats_cold_on_drifted_stream(record_bench, perf_check):
    """Warm-start re-adaptation: faster than cold, same quality within noise."""
    model, calibration, config, scenario = make_streaming_fixture()
    stream = make_drift_stream(scenario, "sudden", n_steps=24, batch_size=16, seed=0)
    service = build_service(model, calibration, config)

    warm_report = None
    for batch in stream.batches:
        event = service.ingest("user", batch.inputs)
        if event.action == "warm_adapt":
            warm_report = service.report_for("user")
    assert warm_report is not None, "the sudden drift must trigger a warm re-adaptation"
    assert warm_report.extra["mode"] == "warm"
    warm_seconds = warm_report.duration_seconds

    # Cold baseline: one full Tasfar.adapt from the source model over the
    # same drifted stream (everything the service had ingested).
    cold_inputs = stream.all_inputs()
    cold_model = None
    cold_times = []
    for _ in range(3):
        tasfar = Tasfar(config)
        start = time.perf_counter()
        result = tasfar.adapt(model, cold_inputs, calibration, seed=0)
        cold_times.append(time.perf_counter() - start)
        cold_model = result.target_model
    cold_seconds = min(cold_times)

    # Quality on the held-out drifted-regime test split.
    drifted_mask = (
        np.linalg.norm(scenario.test.targets, axis=1)
        >= np.median(np.linalg.norm(scenario.pooled().targets, axis=1))
    )
    test_inputs = scenario.test.inputs[drifted_mask]
    test_targets = scenario.test.targets[drifted_mask]
    model.eval()
    source_mae = mae(model.forward(test_inputs), test_targets)
    warm_mae = mae(service.predict("user", test_inputs), test_targets)
    cold_model.eval()
    cold_mae = mae(cold_model.forward(test_inputs), test_targets)

    speedup = cold_seconds / warm_seconds
    text = (
        f"[bench_streaming] warm-start re-adaptation vs cold Tasfar.adapt "
        f"({len(cold_inputs)} drifted-stream events)\n"
        f"cold adapt: {cold_seconds * 1e3:8.1f} ms  (test MAE {cold_mae:.4f})\n"
        f"warm adapt: {warm_seconds * 1e3:8.1f} ms  (test MAE {warm_mae:.4f}, "
        f"speedup {speedup:.1f}x)\n"
        f"source MAE: {source_mae:.4f}"
    )
    print("\n" + text)
    record_bench(text)

    # The acceptance bar: warm re-adaptation is strictly cheaper wall-clock...
    perf_check(
        warm_seconds < cold_seconds,
        f"warm re-adapt ({warm_seconds * 1e3:.1f} ms) not cheaper than cold "
        f"({cold_seconds * 1e3:.1f} ms)",
    )
    # ...and lands within noise of the cold run's quality: the gap between the
    # two adapted models is small against the adaptation headroom the source
    # model leaves (or warm is simply at least as good).
    noise_band = 0.25 * max(source_mae, cold_mae)
    assert warm_mae <= cold_mae + noise_band
