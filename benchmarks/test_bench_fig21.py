"""Benchmark regenerating Fig. 21: housing and taxi prediction tasks."""

import pytest


@pytest.mark.benchmark(group="prediction")
def test_fig21(run_figure):
    """Fig. 21: housing and taxi prediction tasks."""
    result = run_figure("fig21_prediction_tasks")
    assert result.rows, "the experiment must produce at least one row"
