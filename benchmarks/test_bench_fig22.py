"""Benchmark regenerating Fig. 22: two-user mixture failure case."""

import pytest


@pytest.mark.benchmark(group="pdr")
def test_fig22(run_figure):
    """Fig. 22: two-user mixture failure case."""
    result = run_figure("fig22_failure_case")
    assert result.rows, "the experiment must produce at least one row"
