"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure or table of the paper through
``repro.experiments.run_experiment`` and prints the reproduced rows, so the
captured benchmark output doubles as the reproduction report.  Experiments are
expensive relative to micro-benchmarks, so each one is executed exactly once
(``rounds=1``) — the interesting output is the experiment result, the timing is
a bonus.

The report file is only rewritten when a benchmark actually records an entry:
the first write of a session truncates the file, later writes append.  (The
old behaviour truncated at ``pytest_sessionstart``, which wiped the report
whenever the benchmarks directory was merely *collected* — e.g. by a plain
``pytest`` run from the repository root that deselected every benchmark.)
Every entry records the scale it ran at, so reports mixing
``REPRO_BENCH_SCALE`` settings stay interpretable.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import run_experiment

#: Scale used by the benchmark harness; override with REPRO_BENCH_SCALE=full
#: for a longer, closer-to-paper run.
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")

#: REPRO_BENCH_SMOKE=1 downgrades hard wall-clock assertions (speedup
#: ratios, warm-vs-cold timings) to warnings.  Used by the CI smoke job:
#: shared runners are too noisy for timing bars, but the benchmarks still
#: exercise every hot path and fail on correctness regressions.
BENCH_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"


def perf_assert(condition: bool, message: str) -> None:
    """Assert a performance bar — or warn instead under ``REPRO_BENCH_SMOKE=1``."""
    if condition:
        return
    if BENCH_SMOKE:
        import warnings

        warnings.warn(f"[smoke] performance bar missed: {message}", stacklevel=2)
        return
    raise AssertionError(message)

#: The reproduced rows of every figure/table are appended here so they remain
#: available even though pytest captures per-test stdout.
REPORT_PATH = Path(__file__).resolve().parent.parent / "benchmark_report.txt"

#: Whether this session has already (re)started the report file.
_report_started = False


def record_report_entry(text: str, scale: str = BENCH_SCALE, tags: dict | None = None) -> None:
    """Append one benchmark entry to the report, tagged with its scale.

    The first entry of the session starts a fresh report; sessions that never
    record anything leave the existing report untouched.  ``tags`` adds
    key=value markers to the entry header (e.g. ``{"executor": "process"}``),
    so report lines measured under different execution modes are never
    mistaken for comparable runs of the same configuration.
    """
    global _report_started
    header = f"scale={scale}"
    for key, value in (tags or {}).items():
        header += f" {key}={value}"
    mode = "a" if _report_started else "w"
    with REPORT_PATH.open(mode, encoding="utf-8") as handle:
        if not _report_started:
            handle.write("TASFAR reproduction benchmark report\n\n")
        handle.write(f"[{header}]\n{text}\n\n")
    _report_started = True


@pytest.fixture
def record_bench():
    """Fixture handing benchmarks the report-entry recorder."""
    return record_report_entry


@pytest.fixture
def perf_check():
    """Fixture handing benchmarks the (smoke-aware) performance assertion."""
    return perf_assert


@pytest.fixture
def run_figure(benchmark):
    """Run one experiment under pytest-benchmark, print and record its summary."""

    def runner(experiment_id: str):
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"scale": BENCH_SCALE},
            rounds=1,
            iterations=1,
        )
        print()
        print(result.summary())
        record_report_entry(result.summary())
        return result

    return runner
