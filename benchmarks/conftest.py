"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure or table of the paper through
``repro.experiments.run_experiment`` and prints the reproduced rows, so the
captured benchmark output doubles as the reproduction report.  Experiments are
expensive relative to micro-benchmarks, so each one is executed exactly once
(``rounds=1``) — the interesting output is the experiment result, the timing is
a bonus.

The report file is only rewritten when a benchmark actually records an entry:
the first write of a session truncates the file, later writes append.  (The
old behaviour truncated at ``pytest_sessionstart``, which wiped the report
whenever the benchmarks directory was merely *collected* — e.g. by a plain
``pytest`` run from the repository root that deselected every benchmark.)
Every entry records the scale it ran at, so reports mixing
``REPRO_BENCH_SCALE`` settings stay interpretable.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import pytest

from repro.experiments import run_experiment

#: Scale used by the benchmark harness; override with REPRO_BENCH_SCALE=full
#: for a longer, closer-to-paper run.
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")

#: REPRO_BENCH_SMOKE=1 downgrades hard wall-clock assertions (speedup
#: ratios, warm-vs-cold timings) to warnings.  Used by the CI smoke job:
#: shared runners are too noisy for timing bars, but the benchmarks still
#: exercise every hot path and fail on correctness regressions.
BENCH_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"


def perf_assert(condition: bool, message: str) -> None:
    """Assert a performance bar — or warn instead under ``REPRO_BENCH_SMOKE=1``."""
    if condition:
        return
    if BENCH_SMOKE:
        import warnings

        warnings.warn(f"[smoke] performance bar missed: {message}", stacklevel=2)
        return
    raise AssertionError(message)

#: The reproduced rows of every figure/table are appended here so they remain
#: available even though pytest captures per-test stdout.
REPORT_PATH = Path(__file__).resolve().parent.parent / "benchmark_report.txt"

#: Machine-readable companion to ``benchmark_report.txt``: one JSON document
#: with host facts (core count decides whether process-pool speedup bars are
#: even meaningful) and one entry per recorded benchmark.  Rewritten after
#: every record so a crashed session still leaves the entries it finished.
JSON_REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_report.json"

#: Whether this session has already (re)started the report file.
_report_started = False

#: JSON entries accumulated this session (the JSON file mirrors these).
_json_entries: list[dict] = []


def _bench_name() -> str | None:
    """The currently running benchmark's node id, courtesy of pytest."""
    current = os.environ.get("PYTEST_CURRENT_TEST")
    if not current:
        return None
    return current.split(" ")[0]


def record_report_entry(
    text: str,
    scale: str = BENCH_SCALE,
    tags: dict | None = None,
    name: str | None = None,
    wall_seconds: dict | None = None,
) -> None:
    """Append one benchmark entry to the report, tagged with its scale.

    The first entry of the session starts a fresh report; sessions that never
    record anything leave the existing report untouched.  ``tags`` adds
    key=value markers to the entry header (e.g. ``{"executor": "process"}``),
    so report lines measured under different execution modes are never
    mistaken for comparable runs of the same configuration.

    Every entry also lands in ``BENCH_report.json``: ``name`` defaults to the
    running test's node id, and ``wall_seconds`` (``{"label": seconds}``)
    carries whatever timings the benchmark measured, machine-readable.
    """
    global _report_started
    header = f"scale={scale}"
    for key, value in (tags or {}).items():
        header += f" {key}={value}"
    mode = "a" if _report_started else "w"
    with REPORT_PATH.open(mode, encoding="utf-8") as handle:
        if not _report_started:
            handle.write("TASFAR reproduction benchmark report\n\n")
        handle.write(f"[{header}]\n{text}\n\n")
    _report_started = True

    _json_entries.append(
        {
            "name": name if name is not None else _bench_name(),
            "scale": scale,
            "tags": {key: str(value) for key, value in (tags or {}).items()},
            "wall_seconds": {
                key: float(value) for key, value in (wall_seconds or {}).items()
            },
            "text": text,
        }
    )
    report = {
        "schema": "repro.bench/v1",
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": sys.platform,
            "python": sys.version.split()[0],
        },
        "scale": BENCH_SCALE,
        "smoke": BENCH_SMOKE,
        "entries": _json_entries,
    }
    with JSON_REPORT_PATH.open("w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture
def record_bench():
    """Fixture handing benchmarks the report-entry recorder."""
    return record_report_entry


@pytest.fixture
def perf_check():
    """Fixture handing benchmarks the (smoke-aware) performance assertion."""
    return perf_assert


@pytest.fixture
def run_figure(benchmark):
    """Run one experiment under pytest-benchmark, print and record its summary."""

    def runner(experiment_id: str):
        started = time.perf_counter()
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"scale": BENCH_SCALE},
            rounds=1,
            iterations=1,
        )
        elapsed = time.perf_counter() - started
        print()
        print(result.summary())
        record_report_entry(
            result.summary(),
            name=experiment_id,
            wall_seconds={"experiment": elapsed},
        )
        return result

    return runner
