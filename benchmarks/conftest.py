"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure or table of the paper through
``repro.experiments.run_experiment`` and prints the reproduced rows, so the
captured benchmark output doubles as the reproduction report.  Experiments are
expensive relative to micro-benchmarks, so each one is executed exactly once
(``rounds=1``) — the interesting output is the experiment result, the timing is
a bonus.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import run_experiment

#: Scale used by the benchmark harness; override with REPRO_BENCH_SCALE=full
#: for a longer, closer-to-paper run.
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")

#: The reproduced rows of every figure/table are appended here so they remain
#: available even though pytest captures per-test stdout.
REPORT_PATH = Path(__file__).resolve().parent.parent / "benchmark_report.txt"


def pytest_sessionstart(session):
    """Start a fresh report file for every benchmark session."""
    del session
    REPORT_PATH.write_text(f"TASFAR reproduction benchmark report (scale={BENCH_SCALE})\n\n")


@pytest.fixture
def run_figure(benchmark):
    """Run one experiment under pytest-benchmark, print and record its summary."""

    def runner(experiment_id: str):
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"scale": BENCH_SCALE},
            rounds=1,
            iterations=1,
        )
        print()
        print(result.summary())
        with REPORT_PATH.open("a", encoding="utf-8") as handle:
            handle.write(result.summary() + "\n\n")
        return result

    return runner
