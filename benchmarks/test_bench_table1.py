"""Benchmark regenerating Table I: crowd counting MAE/MSE per scheme."""

import pytest


@pytest.mark.benchmark(group="counting")
def test_table1(run_figure):
    """Table I: crowd counting MAE/MSE per scheme."""
    result = run_figure("table1_crowd_counting")
    assert result.rows, "the experiment must produce at least one row"
