"""Benchmark regenerating Fig. 7: density-map error vs. grid size."""

import pytest


@pytest.mark.benchmark(group="pdr")
def test_fig07(run_figure):
    """Fig. 7: density-map error vs. grid size."""
    result = run_figure("fig7_grid_size_map_error")
    assert result.rows, "the experiment must produce at least one row"
