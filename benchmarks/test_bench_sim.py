"""Throughput guard for the workload-simulation harness itself.

The simulator exists to measure and verify the serving stack; it must never
*become* the bottleneck it is measuring.  This benchmark replays a
routing-heavy workload (prediction probes, duplicate bursts, reports — no
adaptation, so the training hot path cannot dominate) and records the
harness's end-to-end event throughput, with a floor future PRs cannot
silently sink below.

Recorded into ``benchmark_report.txt`` next to the serving benchmarks so
harness regressions show up in one place.
"""

from __future__ import annotations

from repro.sim import WorkloadSpec, run_simulation

#: Floor on simulator throughput (events/s) on a routing-heavy workload.
#: The harness clears ~2-4k events/s on a dev box; the bar is set well below
#: that so only a genuine regression (per-event overhead creeping into the
#: tick loop, the invariant suite, or the transcript writer) trips it.
MIN_EVENTS_PER_SECOND = 300.0


def routing_heavy_spec() -> WorkloadSpec:
    """Many small predicts and reports; nothing ever reaches adaptation."""
    return WorkloadSpec.from_dict(
        {
            "task": "housing",
            "scale": "tiny",
            "scheme": "tasfar",
            "seed": 11,
            "n_ticks": 12,
            "n_shards": 2,
            "shard_workers": 2,
            "min_adapt_events": 1_000_000,
            "readapt_budget": 1_000_000,
            "config_overrides": {
                "adaptation_epochs": 1,
                "min_adaptation_epochs": 1,
                "n_mc_samples": 4,
                "n_segments": 5,
                "early_stop": False,
            },
            "fleets": [
                {
                    "name": "probe",
                    "n_users": 6,
                    "drift": "gradual",
                    "batch_size": 4,
                    "arrival": {"kind": "every", "every": 2},
                    "predict_every": 1,
                    "predict_rows": 4,
                    "predict_duplicates": 3,
                    "report_every": 2,
                }
            ],
            "final_report": True,
        }
    )


def test_simulator_event_throughput(record_bench, perf_check):
    """The harness must push a routing-heavy workload at wire speed."""
    result = run_simulation(routing_heavy_spec())
    assert result.ok, result.invariant_report
    assert result.n_requests > 200, "workload too small to measure throughput"

    record_bench(
        f"[bench_sim] simulator harness throughput "
        f"({result.n_requests} requests, {result.n_ticks} ticks, "
        f"{len(result.users)} users, fault_plan=none)\n"
        f"events/s: {result.events_per_second:10,.0f}   "
        f"wall: {result.wall_seconds * 1e3:8.1f} ms\n"
        f"invariant checks: "
        + " ".join(
            f"{name}={entry['checks']}"
            for name, entry in result.invariant_report["invariants"].items()
        )
    )
    perf_check(
        result.events_per_second >= MIN_EVENTS_PER_SECOND,
        f"simulator throughput {result.events_per_second:,.0f} events/s fell below "
        f"the {MIN_EVENTS_PER_SECOND:,.0f} events/s floor",
    )
