"""Micro-benchmarks for the serving gateway's prediction hot path.

The acceptance bar of the serving redesign: on a bursty multi-target
workload, micro-batched ``Gateway.submit_many`` prediction must be at least
**2x faster** than the equivalent per-request predict loop, with
**bit-identical** outputs.  The workload mirrors what a serving frontend
sees — many small per-target requests arriving together, duplicate-target
bursts (retries, replica fan-out), and a tail of never-adapted targets all
falling back to the shared source model — which is exactly the traffic the
coalescing tiers (dedup + fixed-shape tiled stacking) were built for.

Recorded into ``benchmark_report.txt`` next to the runtime/streaming
benchmarks so regressions of either path show up in one place.
"""

from __future__ import annotations

import time

import numpy as np

import repro.nn as nn
from repro.core import Tasfar, TasfarConfig
from repro.serve import AdaptRequest, BatchPolicy, Gateway, PredictRequest


def best_time(fn, repeats=5):
    """Minimum wall-clock over ``repeats`` runs (robust to one-sided noise)."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def make_gateway_fixture(n_adapted=4, n_fallback=4):
    """A trained source model served through a 2-shard gateway."""
    rng = np.random.default_rng(0)
    weights = np.array([1.0, -0.5, 0.25, 2.0])
    inputs = rng.normal(size=(160, 4))
    targets = inputs @ weights + 0.1 * rng.normal(size=160)
    model = nn.build_mlp(4, 1, hidden_dims=(16, 8), dropout=0.2, seed=0)
    nn.Trainer(model, lr=3e-3).fit(
        nn.ArrayDataset(inputs, targets), epochs=10, batch_size=32, rng=rng
    )
    config = TasfarConfig(
        n_mc_samples=8,
        n_segments=5,
        adaptation_epochs=3,
        min_adaptation_epochs=1,
        early_stop=False,
        seed=0,
    )
    calibration = Tasfar(config).calibrate_on_source(model, inputs, targets)
    gateway = Gateway(
        model,
        calibration,
        config=config,
        n_shards=2,
        shard_workers=2,
        max_cached_models=n_adapted,
    )
    fleet = {
        f"user_{index:02d}": np.random.default_rng(100 + index).normal(
            loc=0.1 * index, size=(40, 4)
        )
        for index in range(n_adapted)
    }
    envelopes = gateway.submit_many(
        [AdaptRequest(name, data) for name, data in fleet.items()]
    )
    assert all(envelope.ok for envelope in envelopes)
    targets_all = list(fleet) + [f"guest_{index:02d}" for index in range(n_fallback)]
    return gateway, targets_all


def bursty_workload(targets, n_requests=240, seed=1):
    """Small per-target requests with duplicate bursts, frontend-style."""
    rng = np.random.default_rng(seed)
    requests = []
    while len(requests) < n_requests:
        target = targets[rng.integers(len(targets))]
        rows = int(rng.choice([1, 4, 8, 16]))
        inputs = rng.normal(size=(rows, 4))
        burst = int(rng.choice([1, 1, 2, 4]))  # some targets re-send the window
        for _ in range(burst):
            requests.append(PredictRequest(target, inputs.copy()))
    return requests[:n_requests]


def test_micro_batched_submit_many_vs_per_request_loop(record_bench, perf_check):
    gateway, targets = make_gateway_fixture()
    requests = bursty_workload(targets)

    batched_envelopes = gateway.submit_many(requests)
    assert all(envelope.ok for envelope in batched_envelopes)
    per_request_envelopes = [gateway.submit(request) for request in requests]

    # The acceptance bar's correctness half: micro-batching must not move a
    # single bit relative to submitting the same requests one at a time.
    for batched, single in zip(batched_envelopes, per_request_envelopes):
        np.testing.assert_array_equal(
            batched.payload["prediction"], single.payload["prediction"]
        )
    # ... and the legacy service surface stays within float rounding.
    for request, batched in zip(requests, batched_envelopes):
        np.testing.assert_allclose(
            batched.payload["prediction"],
            gateway.predict(request.target_id, request.inputs),
            rtol=1e-12,
            atol=1e-12,
        )

    batched_time = best_time(lambda: gateway.submit_many(requests))
    per_request_time = best_time(lambda: [gateway.submit(r) for r in requests])
    legacy_time = best_time(
        lambda: [gateway.predict(r.target_id, r.inputs) for r in requests]
    )
    coalesced = sum(e.payload["coalesced"] for e in batched_envelopes)

    speedup = per_request_time / batched_time
    legacy_speedup = legacy_time / batched_time
    text = (
        f"[bench_serve] micro-batched prediction, {len(requests)} bursty requests, "
        f"{len(targets)} targets (adapted + source-fallback), 2 shards\n"
        f"submit_many (coalesced, {coalesced} shared): {batched_time * 1e3:8.1f} ms\n"
        f"per-request submit loop:                    {per_request_time * 1e3:8.1f} ms  "
        f"(bit-identical, speedup {speedup:.2f}x)\n"
        f"legacy service.predict loop:                {legacy_time * 1e3:8.1f} ms  "
        f"(allclose, speedup {legacy_speedup:.2f}x)"
    )
    print("\n" + text)
    record_bench(
        text,
        wall_seconds={
            "submit_many": batched_time,
            "per_request": per_request_time,
            "legacy_predict": legacy_time,
        },
    )
    perf_check(
        speedup >= 2.0,
        f"micro-batched submit_many only {speedup:.2f}x faster than the "
        f"per-request loop (bar: 2x)",
    )
    gateway.close()


def test_dedup_mode_is_exact_and_fast_on_duplicate_bursts(record_bench, perf_check):
    """The conservative mode: duplicates coalesce, every forward stays
    request-shaped (bitwise equal to the legacy service path)."""
    gateway, targets = make_gateway_fixture()
    gateway.batch_policy = BatchPolicy(mode="dedup")
    rng = np.random.default_rng(2)
    requests = []
    for index in range(60):
        target = targets[index % len(targets)]
        window = rng.normal(size=(8, 4))
        requests.extend(PredictRequest(target, window.copy()) for _ in range(4))

    envelopes = gateway.submit_many(requests)
    for request, envelope in zip(requests, envelopes):
        np.testing.assert_array_equal(
            envelope.payload["prediction"],
            gateway.predict(request.target_id, request.inputs),
        )

    deduped_time = best_time(lambda: gateway.submit_many(requests))
    legacy_time = best_time(
        lambda: [gateway.predict(r.target_id, r.inputs) for r in requests]
    )
    speedup = legacy_time / deduped_time
    text = (
        f"[bench_serve] dedup-only mode, {len(requests)} requests "
        f"(4x duplicate bursts)\n"
        f"submit_many (dedup): {deduped_time * 1e3:8.1f} ms\n"
        f"legacy predict loop: {legacy_time * 1e3:8.1f} ms  "
        f"(bitwise equal, speedup {speedup:.2f}x)"
    )
    print("\n" + text)
    record_bench(
        text,
        wall_seconds={"submit_many_dedup": deduped_time, "legacy_predict": legacy_time},
    )
    perf_check(
        speedup >= 1.5,
        f"dedup mode only {speedup:.2f}x faster on duplicate bursts (bar: 1.5x)",
    )
    gateway.close()
