"""Benchmark regenerating Fig. 20: partitioned vs. pooled adaptation."""

import pytest


@pytest.mark.benchmark(group="counting")
def test_fig20(run_figure):
    """Fig. 20: partitioned vs. pooled adaptation."""
    result = run_figure("fig20_partitioning")
    assert result.rows, "the experiment must produce at least one row"
