"""Benchmark regenerating Fig. 12: ablation of the credibility weight beta_t."""

import pytest


@pytest.mark.benchmark(group="pdr")
def test_fig12(run_figure):
    """Fig. 12: ablation of the credibility weight beta_t."""
    result = run_figure("fig12_credibility_ablation")
    assert result.rows, "the experiment must produce at least one row"
