"""Micro-benchmarks for the runtime hot paths.

Two comparisons, recorded into ``benchmark_report.txt``:

* **vectorized vs. loop MC dropout** — the stacked-replica forward against
  the sequential per-sample loop (the historical full-batch protocol), at
  the small per-target input sizes the adaptation service sees.  The
  vectorized path must be at least 3x faster at small scale.
* **serial vs. pooled multi-target adaptation** — ``AdaptationService``
  adapting a fleet of targets serially, on the thread executor, and on the
  process executor, all at ``jobs=4``.  Per-target seeding makes every run
  bit-identical; the timing bars are *core-aware* and *per-executor*:

  - threads are GIL-bound on the numpy-small-op training loop (measured
    0.94x of serial at jobs=4), so they carry no speedup bar — only the
    bit-identity oracle;
  - processes must beat serial outright (>1.0x) whenever the host has at
    least 2 cores, and reach the 2.5x acceptance bar on hosts with 4+
    cores.  On a single-core host no speedup is physically available, so
    only identity is asserted and the entry says so rather than faking a
    ratio.

  Entries are tagged with the executor kind (``[... executor=process]``),
  so report lines from different execution modes are never compared as if
  they measured the same thing.
"""

from __future__ import annotations

import os
import time
import warnings

import numpy as np

import repro.nn as nn
from repro.core import Tasfar, TasfarConfig
from repro.runtime import AdaptationService
from repro.uncertainty import MCDropoutPredictor


def best_time(fn, repeats=5):
    """Minimum wall-clock over ``repeats`` runs (robust to one-sided noise)."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def measure_mc_speedup(n_rows, n_mc, repeats=5):
    model = nn.build_mlp(8, 1, hidden_dims=(16, 16, 16), dropout=0.2, seed=0)
    inputs = np.random.default_rng(0).normal(size=(n_rows, 8))
    vectorized = MCDropoutPredictor(
        model, n_samples=n_mc, seed=1, vectorized=True, mc_batch_rows=16
    )
    # The loop baseline forwards the full input once per MC pass — the
    # pre-vectorization protocol.
    looped = MCDropoutPredictor(
        model, n_samples=n_mc, seed=1, vectorized=False, mc_batch_rows=n_rows
    )
    vec_time = best_time(lambda: vectorized.predict(inputs), repeats)
    loop_time = best_time(lambda: looped.predict(inputs), repeats)
    return vec_time, loop_time


def test_mc_dropout_vectorized_vs_loop(record_bench, perf_check):
    lines = ["[bench_runtime] vectorized vs loop MC dropout (3x16 MLP)"]
    results = {}
    for n_rows, n_mc in [(16, 20), (16, 50), (64, 20)]:
        vec_time, loop_time = measure_mc_speedup(n_rows, n_mc)
        if n_rows == 16 and loop_time / vec_time < 3.0:
            # Re-measure with more repeats before concluding anything on a
            # noisy host.
            vec_time, loop_time = measure_mc_speedup(n_rows, n_mc, repeats=15)
        speedup = loop_time / vec_time
        results[(n_rows, n_mc)] = speedup
        lines.append(
            f"n_rows={n_rows:3d} n_mc={n_mc:3d}: vectorized {vec_time * 1e3:7.3f} ms  "
            f"loop {loop_time * 1e3:7.3f} ms  speedup {speedup:4.1f}x"
        )
    text = "\n".join(lines)
    print("\n" + text)
    record_bench(text)
    # The acceptance bar: >=3x at small scale (one target's worth of data).
    perf_check(results[(16, 50)] >= 3.0, f"MC-dropout speedup {results[(16, 50)]:.2f}x < 3x")
    # And the stacked forward must never regress at larger batches.
    perf_check(results[(64, 20)] >= 0.8, f"stacked forward regressed: {results[(64, 20)]:.2f}x")


def make_service_fixture():
    rng = np.random.default_rng(0)
    weights = np.array([1.0, -0.5, 0.25, 2.0])
    inputs = rng.normal(size=(160, 4))
    targets = inputs @ weights + 0.1 * rng.normal(size=160)
    model = nn.build_mlp(4, 1, hidden_dims=(16, 8), dropout=0.2, seed=0)
    nn.Trainer(model, lr=3e-3).fit(
        nn.ArrayDataset(inputs, targets), epochs=10, batch_size=32, rng=rng
    )
    config = TasfarConfig(
        n_mc_samples=8,
        n_segments=5,
        adaptation_epochs=3,
        min_adaptation_epochs=1,
        early_stop=False,
        seed=0,
    )
    calibration = Tasfar(config).calibrate_on_source(model, inputs, targets)
    fleet = {
        f"user_{index:02d}": np.random.default_rng(100 + index).normal(
            loc=0.1 * index, size=(40, 4)
        )
        for index in range(6)
    }
    return model, calibration, config, fleet


def test_multi_target_service_serial_vs_pooled(record_bench, perf_check):
    model, calibration, config, fleet = make_service_fixture()

    def adapt_with(jobs, executor=None):
        service = AdaptationService(model, calibration, config=config)
        if executor == "process":
            # Attach the pool up front so worker spawn + weight shipping is
            # not billed to the adaptation loop (it is a one-time cost a
            # serving deployment pays at startup).
            service.use_process_workers(jobs)
        try:
            start = time.perf_counter()
            with warnings.catch_warnings():
                # The thread leg intentionally measures the GIL-bound path;
                # its honesty warning is the subject here, not noise worth
                # failing a -W error run over.
                warnings.simplefilter("ignore", RuntimeWarning)
                reports = service.adapt_many(fleet, jobs=jobs, executor=executor)
            return time.perf_counter() - start, reports
        finally:
            service.close()

    serial_time, serial_reports = adapt_with(jobs=1)
    thread_time, thread_reports = adapt_with(jobs=4, executor="thread")
    process_time, process_reports = adapt_with(jobs=4, executor="process")

    # Per-target seeding makes every pooled run bit-identical to serial.
    for name in fleet:
        assert serial_reports[name].losses == thread_reports[name].losses
        assert serial_reports[name].losses == process_reports[name].losses

    cores = os.cpu_count() or 1
    thread_speedup = serial_time / thread_time
    process_speedup = serial_time / process_time
    entry = (
        f"[bench_runtime] AdaptationService, {len(fleet)} targets x 40 samples, "
        f"{cores} core(s)\n"
        f"serial  (jobs=1):           {serial_time * 1e3:8.1f} ms\n"
        f"threads (jobs=4):           {thread_time * 1e3:8.1f} ms  "
        f"(identical results, speedup {thread_speedup:.2f}x — GIL-bound, no bar)\n"
        f"processes (jobs=4 workers): {process_time * 1e3:8.1f} ms  "
        f"(identical results, speedup {process_speedup:.2f}x)"
    )
    print("\n" + entry)
    record_bench(entry, tags={"executor": "serial+thread+process"})

    # Core-aware bars, processes only: threads were never going to beat the
    # GIL, and a single-core host has no parallelism to measure — asserting
    # a ratio there would test the scheduler, not the code.
    if cores >= 4:
        perf_check(
            process_speedup >= 2.5,
            f"process pool speedup {process_speedup:.2f}x < 2.5x on {cores} cores",
        )
    elif cores >= 2:
        perf_check(
            process_speedup > 1.0,
            f"process pool speedup {process_speedup:.2f}x <= 1.0x on {cores} cores",
        )
