"""Benchmark regenerating Fig. 3: prediction error vs. uncertainty quartile."""

import pytest


@pytest.mark.benchmark(group="pdr")
def test_fig03(run_figure):
    """Fig. 3: prediction error vs. uncertainty quartile."""
    result = run_figure("fig3_uncertainty_error")
    assert result.rows, "the experiment must produce at least one row"
