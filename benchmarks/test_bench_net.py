"""Throughput of the TCP transport against the in-process gateway.

The socket transport costs serialization (JSON both ways), syscalls, and
an event-loop hop per burst — this benchmark measures that tax on the
same bursty multi-target workload the serving benchmark uses, so the two
report entries are directly comparable.  ``NetClient.request_many``
brackets each burst in blank markers, so the server coalesces exactly as
``submit_many`` does: the wire run is the in-process run plus transport.

The floor is deliberately honest rather than ambitious: TCP on loopback
with JSON framing will not beat shared memory; the regression being
guarded is the transport collapsing (per-request round-trips, lost
batching) — which shows up as an order-of-magnitude gap, not a
percentage.
"""

from __future__ import annotations

import numpy as np

from repro.net import NetClient, NetServer
from test_bench_serve import best_time, bursty_workload, make_gateway_fixture


def test_tcp_burst_throughput_vs_in_process(record_bench, perf_check):
    gateway, targets = make_gateway_fixture()
    requests = bursty_workload(targets)

    server = NetServer(gateway, max_pending=len(requests) + 1)
    try:
        host, port = server.start()
        client = NetClient(host, port, timeout=60.0)

        wire_envelopes = client.request_many(requests)
        local_envelopes = gateway.submit_many(requests)
        assert all(envelope.ok for envelope in wire_envelopes)
        # Same burst semantics across the wire: the coalescing decisions
        # (and therefore the predictions) match the in-process batch.
        for wire, local in zip(wire_envelopes, local_envelopes):
            assert wire.payload["coalesced"] == local.payload["coalesced"]
            np.testing.assert_allclose(
                np.asarray(wire.payload["prediction"]),
                np.asarray(local.payload["prediction"]),
                rtol=1e-9,
                atol=1e-12,
            )

        tcp_time = best_time(lambda: client.request_many(requests))
        local_time = best_time(lambda: gateway.submit_many(requests))
        client.close()
    finally:
        server.stop()
        gateway.close()

    n = len(requests)
    tcp_rps = n / tcp_time
    overhead = tcp_time / local_time
    text = (
        f"[bench_net] TCP burst vs in-process submit_many, {n} bursty requests, "
        f"{len(targets)} targets, 2 shards\n"
        f"in-process submit_many:  {local_time * 1e3:8.1f} ms\n"
        f"TCP request_many:        {tcp_time * 1e3:8.1f} ms  "
        f"({tcp_rps:7.0f} req/s, {overhead:.2f}x in-process)"
    )
    print("\n" + text)
    record_bench(
        text,
        tags={"transport": "tcp"},
        wall_seconds={"tcp_burst": tcp_time, "in_process": local_time},
    )
    # The transport tax must stay a constant factor (measured ~10x: JSON
    # both ways plus the loop hop), not a collapse to per-request round
    # trips — which lands at ~40x on this workload.
    perf_check(
        overhead <= 25.0,
        f"TCP burst transport is {overhead:.2f}x the in-process cost "
        f"(bar: 25x — batching across the wire has collapsed)",
    )


def test_tcp_per_request_round_trips(record_bench, perf_check):
    """The unbatched wire path: one request, one answer, per round trip."""
    gateway, targets = make_gateway_fixture()
    requests = bursty_workload(targets, n_requests=60)

    server = NetServer(gateway, max_pending=64)
    try:
        host, port = server.start()
        client = NetClient(host, port, timeout=60.0)
        envelopes = [client.request(request) for request in requests]
        assert all(envelope.ok for envelope in envelopes)

        round_trip_time = best_time(
            lambda: [client.request(request) for request in requests], repeats=3
        )
        client.close()
    finally:
        server.stop()
        gateway.close()

    per_request = round_trip_time / len(requests)
    text = (
        f"[bench_net] TCP per-request round trips, {len(requests)} requests\n"
        f"round-trip latency:      {per_request * 1e6:8.0f} us/request "
        f"({len(requests) / round_trip_time:7.0f} req/s)"
    )
    print("\n" + text)
    record_bench(
        text,
        tags={"transport": "tcp"},
        wall_seconds={"per_request_loop": round_trip_time},
    )
    perf_check(
        per_request < 0.25,
        f"one TCP round trip costs {per_request * 1e3:.1f} ms on loopback "
        f"(bar: 250 ms — something is blocking the event loop)",
    )
