"""Micro-benchmark for the shared FineTuneEngine hot path.

Compares one adaptation-sized fine-tune through :class:`repro.engine.
FineTuneEngine` (preallocated batch buffers, in-place shuffles) against a
replica of the pre-refactor per-scheme loop (a fresh ``DataLoader`` with
fancy-indexed batch copies).  The engine is the only training hot path left
in the repo — TASFAR, all five baselines, and streaming warm-starts run
through it — so this is the regression bar for the whole training stack:

* the two paths must produce **bit-identical** losses and weights;
* the engine must be wall-clock **equal or better** than the legacy loop.
"""

from __future__ import annotations

import time

import numpy as np

import repro.nn as nn
from repro.engine import FineTuneEngine
from repro.nn.data import ArrayDataset, DataLoader
from repro.nn.losses import MSELoss
from repro.nn.optim import Adam, clip_gradients

EPOCHS = 12
BATCH_SIZE = 32
LR = 1e-3


def make_workload(n_rows=160, features=8, seed=0):
    rng = np.random.default_rng(seed)
    inputs = rng.normal(size=(n_rows, features))
    targets = inputs @ rng.normal(size=features) + 0.1 * rng.normal(size=n_rows)
    weights = rng.uniform(0.25, 1.75, size=n_rows)
    return ArrayDataset(inputs, targets, weights)


def make_model(features=8):
    return nn.build_mlp(features, 1, hidden_dims=(16, 16), dropout=0.2, seed=0)


def legacy_finetune(model, dataset, seed):
    """Replica of the pre-engine loop every scheme used to carry."""
    rng = np.random.default_rng(seed)
    saved = [(layer, layer.rate) for layer in model.dropout_layers()]
    for layer, _ in saved:
        layer.rate = 0.0
    optimizer = Adam(model.parameters(), lr=LR)
    loss = MSELoss()
    loader = DataLoader(dataset, batch_size=BATCH_SIZE, shuffle=True, rng=rng)
    losses = []
    model.train()
    for _ in range(EPOCHS):
        total, batches = 0.0, 0
        for inputs, targets, weights in loader:
            optimizer.zero_grad()
            value, grad = loss(model.forward(inputs), targets, weights)
            model.backward(grad)
            clip_gradients(optimizer.parameters, 5.0)
            optimizer.step()
            total += value
            batches += 1
        losses.append(total / max(batches, 1))
    model.eval()
    for layer, rate in saved:
        layer.rate = rate
    return losses


def engine_finetune(model, dataset, seed):
    optimizer = Adam(model.parameters(), lr=LR)
    loss = MSELoss()

    def step(inputs, targets, weights):
        value, grad = loss(model.forward(inputs), targets, weights)
        model.backward(grad)
        return value

    engine = FineTuneEngine(EPOCHS, BATCH_SIZE)
    return engine.run(
        model, dataset, optimizer, step, rng=np.random.default_rng(seed)
    ).losses


def timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_engine_matches_and_beats_legacy_loop(record_bench, perf_check):
    dataset = make_workload()

    # Correctness first: both paths, same seed, fresh models — bit-identical.
    legacy_model, engine_model = make_model(), make_model()
    legacy_losses = legacy_finetune(legacy_model, dataset, seed=3)
    engine_losses = engine_finetune(engine_model, dataset, seed=3)
    assert engine_losses == legacy_losses
    for old, new in zip(legacy_model.parameters(), engine_model.parameters()):
        np.testing.assert_array_equal(old.data, new.data)

    # Then the wall clock: best-of-N on fresh models, with the two paths
    # interleaved so slow system drift hits both equally.
    legacy_times, engine_times = [], []
    for _ in range(9):
        legacy_times.append(timed(lambda: legacy_finetune(make_model(), dataset, seed=3)))
        engine_times.append(timed(lambda: engine_finetune(make_model(), dataset, seed=3)))
    legacy_seconds = min(legacy_times)
    engine_seconds = min(engine_times)
    ratio = legacy_seconds / engine_seconds

    text = (
        f"[bench_engine] FineTuneEngine vs pre-refactor loop "
        f"({len(dataset)} samples x {EPOCHS} epochs, batch {BATCH_SIZE})\n"
        f"legacy loop: {legacy_seconds * 1e3:8.2f} ms\n"
        f"engine:      {engine_seconds * 1e3:8.2f} ms  "
        f"(identical losses, {ratio:.2f}x)"
    )
    print("\n" + text)
    record_bench(text)

    # The acceptance bar: equal or better (10% headroom for timer noise).
    perf_check(
        engine_seconds <= legacy_seconds * 1.10,
        f"engine fine-tune ({engine_seconds * 1e3:.2f} ms) slower than the "
        f"pre-refactor loop ({legacy_seconds * 1e3:.2f} ms)",
    )
