"""Ablation benchmarks for TASFAR design choices not tied to a single paper figure.

DESIGN.md calls out two switches worth ablating beyond the paper's own
ablations: including the confident data as self-labelled anchors during
adaptation (Section III-D's recommendation), and interpolated versus arg-max
pseudo-labels (Eq. 15 versus the highest-density cell).
"""

import pytest

from repro import nn
from repro.core import TasfarConfig
from repro.baselines import TasfarAdapter
from repro.experiments import get_bundle
from repro.metrics import mse

from conftest import BENCH_SCALE


def _adapt_and_score(bundle, config):
    adapter = TasfarAdapter(config)
    adapter.calibration = bundle.calibration
    scenario = bundle.task.scenarios[0]
    result = adapter.adapt(bundle.source_model, scenario.adaptation.inputs)
    trainer = nn.Trainer(result.target_model)
    return mse(trainer.predict(scenario.adaptation.inputs), scenario.adaptation.targets)


@pytest.mark.benchmark(group="ablation")
def test_ablation_confident_anchor(benchmark):
    """Adaptation MSE with and without the confident self-labelled anchor data."""
    bundle = get_bundle("housing", BENCH_SCALE)

    def run():
        with_anchor = _adapt_and_score(bundle, TasfarConfig(include_confident_data=True, seed=0))
        without_anchor = _adapt_and_score(bundle, TasfarConfig(include_confident_data=False, seed=0))
        return with_anchor, without_anchor

    with_anchor, without_anchor = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nhousing adaptation MSE with confident anchor:    {with_anchor:.4f}")
    print(f"housing adaptation MSE without confident anchor: {without_anchor:.4f}")
    assert with_anchor > 0 and without_anchor > 0


@pytest.mark.benchmark(group="ablation")
def test_ablation_pseudo_label_mode(benchmark):
    """Adaptation MSE with interpolated versus arg-max pseudo-labels."""
    bundle = get_bundle("housing", BENCH_SCALE)

    def run():
        interpolate = _adapt_and_score(bundle, TasfarConfig(pseudo_label_mode="interpolate", seed=0))
        argmax = _adapt_and_score(bundle, TasfarConfig(pseudo_label_mode="argmax", seed=0))
        return interpolate, argmax

    interpolate, argmax = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nhousing adaptation MSE with interpolated pseudo-labels: {interpolate:.4f}")
    print(f"housing adaptation MSE with arg-max pseudo-labels:      {argmax:.4f}")
    assert interpolate > 0 and argmax > 0
