"""Benchmark regenerating Fig. 16: uncertain-data ratio and error share."""

import pytest


@pytest.mark.benchmark(group="pdr")
def test_fig16(run_figure):
    """Fig. 16: uncertain-data ratio and error share."""
    result = run_figure("fig16_uncertain_ratio")
    assert result.rows, "the experiment must produce at least one row"
