"""Micro-benchmark for batched (stacked) training.

Adapts K=8 same-architecture clones — each with its own dataset and
shuffle stream — first serially through :class:`repro.engine.
FineTuneEngine`, then as one :class:`repro.engine.StackedFineTuneEngine`
stack.  Stacking replaces K small per-batch gemms with one 3-D ``matmul``
and amortizes the per-batch Python overhead across replicas, which is
where compact-model fine-tuning actually spends its time:

* the stacked run must be **bit-identical** to the serial runs — losses
  and every parameter byte (this is a hard assertion, never downgraded);
* the stacked run must be at least **3x** faster at K=8 (wall-clock bar,
  downgraded to a warning under ``REPRO_BENCH_SMOKE=1``).
"""

from __future__ import annotations

import copy
import time

import numpy as np

import repro.nn as nn
from repro.engine import FineTuneEngine, StackedFineTuneEngine
from repro.nn import (
    PerReplicaLoss,
    StackedAdam,
    parameter_bytes,
    stack_modules,
    unstack_modules,
)
from repro.nn.data import ArrayDataset
from repro.nn.losses import MSELoss
from repro.nn.optim import Adam

K = 8
N_ROWS = 160
FEATURES = 8
EPOCHS = 12
# Adaptation-sized mini-batches (streamed targets adapt on ~dozen-row
# batches): small batches are exactly the regime where per-batch Python
# overhead dominates and stacking pays the most.
BATCH_SIZE = 12
LR = 1e-3
SPEEDUP_BAR = 3.0


def make_datasets():
    rng = np.random.default_rng(0)
    datasets = []
    for _ in range(K):
        inputs = rng.normal(size=(N_ROWS, FEATURES))
        targets = inputs @ rng.normal(size=FEATURES) + 0.1 * rng.normal(size=N_ROWS)
        weights = rng.uniform(0.25, 1.75, size=N_ROWS)
        datasets.append(ArrayDataset(inputs, targets[:, None], weights))
    return datasets


def make_source():
    return nn.build_mlp(FEATURES, 1, hidden_dims=(16, 16), dropout=0.2, seed=0)


def serial_adapt(source, datasets):
    models, losses = [], []
    for k in range(K):
        model = copy.deepcopy(source)
        loss = MSELoss()
        optimizer = Adam(model.parameters(), lr=LR)

        def step(inputs, targets, weights, model=model, loss=loss):
            value, grad = loss(model.forward(inputs), targets, weights)
            model.backward(grad)
            return value

        engine = FineTuneEngine(EPOCHS, BATCH_SIZE)
        result = engine.run(
            model, datasets[k], optimizer, step, rng=np.random.default_rng(100 + k)
        )
        models.append(model)
        losses.append(result.losses)
    return models, losses


def stacked_adapt(source, datasets):
    models = [copy.deepcopy(source) for _ in range(K)]
    stacked = stack_modules(models)
    optimizer = StackedAdam(stacked.parameters(), K, lr=LR)
    per_loss = PerReplicaLoss(MSELoss())

    def step(inputs, targets, weights):
        values, grads = per_loss(stacked.forward(inputs), targets, weights)
        stacked.backward(grads)
        return values

    engine = StackedFineTuneEngine(EPOCHS, BATCH_SIZE)
    results = engine.run(
        stacked, datasets, optimizer, step,
        rngs=[np.random.default_rng(100 + k) for k in range(K)],
    )
    unstack_modules(stacked, models)
    return models, [r.losses for r in results]


def timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_stacked_training_matches_serial_and_hits_speedup_bar(record_bench, perf_check):
    datasets = make_datasets()
    source = make_source()

    # Correctness first — and unconditionally: stacked must be bit-identical.
    serial_models, serial_losses = serial_adapt(source, datasets)
    stacked_models, stacked_losses = stacked_adapt(source, datasets)
    assert stacked_losses == serial_losses
    for k in range(K):
        assert parameter_bytes(stacked_models[k]) == parameter_bytes(serial_models[k])

    # Then the wall clock: best-of-N with the two paths interleaved so slow
    # system drift hits both equally.
    serial_times, stacked_times = [], []
    for _ in range(5):
        serial_times.append(timed(lambda: serial_adapt(source, datasets)))
        stacked_times.append(timed(lambda: stacked_adapt(source, datasets)))
    serial_seconds = min(serial_times)
    stacked_seconds = min(stacked_times)
    speedup = serial_seconds / stacked_seconds

    text = (
        f"[bench_batched_train] serial vs stacked fine-tune "
        f"(K={K} replicas, {N_ROWS} samples x {EPOCHS} epochs, batch {BATCH_SIZE})\n"
        f"serial  ({K} engine runs): {serial_seconds * 1e3:8.2f} ms\n"
        f"stacked (1 batched run):   {stacked_seconds * 1e3:8.2f} ms  "
        f"(bit-identical, {speedup:.2f}x)"
    )
    print("\n" + text)
    record_bench(
        text,
        tags={"k": K},
        wall_seconds={"serial": serial_seconds, "stacked": stacked_seconds},
    )

    perf_check(
        speedup >= SPEEDUP_BAR,
        f"stacked training speedup {speedup:.2f}x at K={K} below the "
        f"{SPEEDUP_BAR:.1f}x bar (serial {serial_seconds * 1e3:.2f} ms, "
        f"stacked {stacked_seconds * 1e3:.2f} ms)",
    )
