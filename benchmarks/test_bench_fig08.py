"""Benchmark regenerating Fig. 8: pseudo-label error vs. grid size and error model."""

import pytest


@pytest.mark.benchmark(group="pdr")
def test_fig08(run_figure):
    """Fig. 8: pseudo-label error vs. grid size and error model."""
    result = run_figure("fig8_grid_size_pseudo_error")
    assert result.rows, "the experiment must produce at least one row"
