"""Observability overhead benchmark: telemetry must be nearly free.

Metrics are enabled by default across the whole stack, so the acceptance
bar is strict: on the bench_serve bursty prediction workload, the enabled
registry may cost at most **2%** wall clock versus the same gateway with
metrics disabled.

A burst dispatches across shard threads, so single-burst timings on a
busy host carry scheduler noise far larger than the registry cost itself.
The measurement is built to cancel that noise rather than sample it: each
round times one multi-burst block with metrics on and one with metrics
off back to back (drift from CPU frequency scaling or background load
hits both sides of a pair equally), the on/off order *alternates* every
round (the first block of a pair measures systematically slower here, and
a fixed order would bill that bias to whichever side always went first),
and the reported overhead is the *median of the per-round ratios* — an
estimator robust to the occasional descheduled round that a min- or
mean-based one is not.  The bar itself is noise-calibrated: 2% plus the
half-interquartile spread of the same session's paired ratios, so a quiet
host enforces ≈2% while a loaded one widens the bar by exactly the
measurement noise it just demonstrated — a real regression (the
pre-aggregation registry cost +31% here) fails either way.  The enabled
passes also sanity-check the counters they paid for, so the benchmark
cannot "win" by silently not counting.
"""

from __future__ import annotations

import statistics
import time

from test_bench_serve import bursty_workload, make_gateway_fixture


def test_metrics_overhead_on_bursty_predictions(record_bench, perf_check):
    gateway, targets = make_gateway_fixture()
    requests = bursty_workload(targets)

    # Warm both paths (model caches, tile planner) before timing anything.
    for _ in range(3):
        gateway.submit_many(requests)
    gateway.set_metrics_enabled(False)
    gateway.submit_many(requests)
    gateway.set_metrics_enabled(True)
    baseline_requests = gateway.metrics.counter_total("serve.requests")

    def timed_block(enabled: bool) -> float:
        gateway.set_metrics_enabled(enabled)
        start = time.perf_counter()
        for _ in range(bursts_per_round):
            gateway.submit_many(requests)
        return time.perf_counter() - start

    rounds, bursts_per_round = 25, 5
    ratios, enabled_times, disabled_times = [], [], []
    for round_index in range(rounds):
        if round_index % 2 == 0:
            enabled = timed_block(True)
            disabled = timed_block(False)
        else:
            disabled = timed_block(False)
            enabled = timed_block(True)
        ratios.append(enabled / disabled)
        enabled_times.append(enabled / bursts_per_round)
        disabled_times.append(disabled / bursts_per_round)
    gateway.set_metrics_enabled(True)

    # The timed passes must actually have been counted — an "overhead win"
    # from a registry that dropped events would be meaningless.
    counted = gateway.metrics.counter_total("serve.requests") - baseline_requests
    assert counted >= rounds * bursts_per_round * len(requests)
    for shard in range(gateway.n_shards):
        assert gateway.metrics.gauge_value("serve.queue_depth", shard=str(shard)) == 0

    overhead = statistics.median(ratios) - 1.0
    quartiles = statistics.quantiles(ratios, n=4)
    noise = (quartiles[2] - quartiles[0]) / 2
    bar = 0.02 + noise
    enabled_time = statistics.median(enabled_times)
    disabled_time = statistics.median(disabled_times)
    text = (
        f"[bench_obs] metrics overhead, {len(requests)} bursty predict requests, "
        f"2 shards, median over {rounds} paired rounds\n"
        f"metrics enabled:  {enabled_time * 1e3:8.1f} ms/burst\n"
        f"metrics disabled: {disabled_time * 1e3:8.1f} ms/burst  "
        f"(overhead {overhead * 100:+.2f}%, measurement noise ±{noise * 100:.2f}%)"
    )
    print("\n" + text)
    record_bench(
        text,
        tags={"metrics": "enabled-vs-disabled"},
        wall_seconds={"enabled": enabled_time, "disabled": disabled_time},
    )
    perf_check(
        overhead <= bar,
        f"metrics registry costs {overhead * 100:.2f}% on the serve burst "
        f"(bar: 2% + {noise * 100:.2f}% session noise)",
    )
    gateway.close()
