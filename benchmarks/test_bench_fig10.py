"""Benchmark regenerating Fig. 10: pseudo-label error vs. confidence ratio eta."""

import pytest


@pytest.mark.benchmark(group="pdr")
def test_fig10(run_figure):
    """Fig. 10: pseudo-label error vs. confidence ratio eta."""
    result = run_figure("fig10_confidence_ratio")
    assert result.rows, "the experiment must produce at least one row"
