"""Benchmark regenerating Fig. 13: adaptation learning curves and early stop."""

import pytest


@pytest.mark.benchmark(group="pdr")
def test_fig13(run_figure):
    """Fig. 13: adaptation learning curves and early stop."""
    result = run_figure("fig13_learning_curves")
    assert result.rows, "the experiment must produce at least one row"
