"""Cluster mode: N gateway processes behind one rendezvous-hashed router.

A cluster is described by a tiny JSON map (``repro.cluster/v1``)::

    {
      "schema": "repro.cluster/v1",
      "serve_args": ["--task", "housing", "--scale", "tiny", "--shards", "2"],
      "nodes": [
        {"name": "a", "host": "127.0.0.1", "port": 7601},
        {"name": "b", "host": "127.0.0.1", "port": 7602}
      ]
    }

Each node is one ``repro serve --listen`` process — its own gateway, its
own shards, its own process workers.  There is no per-target table:
placement is *computed*, the same rendezvous hashing the gateway already
uses for shard placement (PR 4), extended one level up with a node-name
salt.  The full placement of a target is therefore two pure functions::

    node  = argmax over node names  of H(target_id, "node:" + name)
    shard = argmax over shard index of H(target_id, "shard" + i)   # inside that node

and the PR 4 growth invariant holds at both levels: adding node ``c``
moves *some* targets to ``c`` and moves **nothing** between ``a`` and
``b`` — every target's weight against the old nodes is unchanged, so a
target relocates only if the new node outbids them all.  Capacity grows by
adding processes; no reshuffle storm, no state migration between
survivors.

:class:`ClusterRouter` is the placement function; :class:`ClusterClient`
wraps it around per-node :class:`~repro.net.client.NetClient` connections
to present the familiar ``submit`` / ``submit_many`` surface for a whole
fleet of processes.  ``repro cluster --spec map.json`` (see
:func:`node_command` and the CLI) supervises the processes themselves.
"""

from __future__ import annotations

import hashlib
import json
import sys
import threading
from dataclasses import dataclass
from pathlib import Path

from ..obs import MetricsRegistry
from ..serve.protocol import Envelope, MetricsRequest, Request
from .client import NetClient, NetError

__all__ = [
    "CLUSTER_SCHEMA",
    "ClusterClient",
    "ClusterMap",
    "ClusterRouter",
    "NodeSpec",
    "load_cluster_map",
    "node_command",
]

CLUSTER_SCHEMA = "repro.cluster/v1"


@dataclass(frozen=True)
class NodeSpec:
    """One gateway process in the cluster map."""

    name: str
    host: str
    port: int
    serve_args: tuple[str, ...] = ()


@dataclass(frozen=True)
class ClusterMap:
    """A validated ``repro.cluster/v1`` document."""

    nodes: tuple[NodeSpec, ...]
    serve_args: tuple[str, ...] = ()

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(node.name for node in self.nodes)

    def node(self, name: str) -> NodeSpec:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(name)


def load_cluster_map(source) -> ClusterMap:
    """Parse and validate a cluster map from a path, JSON text, or dict.

    Validation is strict in the same spirit as request decoding: unknown
    keys, duplicate node names, and duplicate addresses are errors at load
    time, not surprises at routing time.
    """
    if isinstance(source, (str, Path)) and not str(source).lstrip().startswith("{"):
        data = json.loads(Path(source).read_text(encoding="utf-8"))
    elif isinstance(source, str):
        data = json.loads(source)
    else:
        data = source
    if not isinstance(data, dict):
        raise ValueError("cluster map must be a JSON object")
    if data.get("schema") != CLUSTER_SCHEMA:
        raise ValueError(
            f"unsupported cluster schema: {data.get('schema')!r} "
            f"(expected {CLUSTER_SCHEMA!r})"
        )
    unknown = set(data) - {"schema", "nodes", "serve_args"}
    if unknown:
        raise ValueError(f"unknown cluster map keys: {sorted(unknown)}")
    raw_nodes = data.get("nodes")
    if not isinstance(raw_nodes, list) or not raw_nodes:
        raise ValueError("cluster map needs a non-empty 'nodes' list")
    nodes: list[NodeSpec] = []
    for entry in raw_nodes:
        if not isinstance(entry, dict):
            raise ValueError(f"node entry must be an object: {entry!r}")
        extra = set(entry) - {"name", "host", "port", "serve_args"}
        if extra:
            raise ValueError(f"unknown node keys: {sorted(extra)}")
        name, port = entry.get("name"), entry.get("port")
        if not isinstance(name, str) or not name:
            raise ValueError(f"node needs a non-empty string name: {entry!r}")
        if not isinstance(port, int) or isinstance(port, bool) or not 0 < port < 65536:
            raise ValueError(f"node {name!r} needs a port in 1..65535")
        host = entry.get("host", "127.0.0.1")
        if not isinstance(host, str) or not host:
            raise ValueError(f"node {name!r} host must be a non-empty string")
        args = entry.get("serve_args", [])
        if not isinstance(args, list) or not all(isinstance(a, str) for a in args):
            raise ValueError(f"node {name!r} serve_args must be a list of strings")
        nodes.append(NodeSpec(name=name, host=host, port=port, serve_args=tuple(args)))
    names = [node.name for node in nodes]
    if len(set(names)) != len(names):
        raise ValueError("node names must be unique")
    addresses = [(node.host, node.port) for node in nodes]
    if len(set(addresses)) != len(addresses):
        raise ValueError("node host:port addresses must be unique")
    shared = data.get("serve_args", [])
    if not isinstance(shared, list) or not all(isinstance(a, str) for a in shared):
        raise ValueError("serve_args must be a list of strings")
    return ClusterMap(nodes=tuple(nodes), serve_args=tuple(shared))


def _node_weight(target_id: str, name: str) -> int:
    """Rendezvous weight of ``(target, node)``, salted apart from shards.

    The salt (``"node:"``) keeps the node-level draw independent of the
    shard-level draw inside each node — the same target id feeds both
    lotteries without one biasing the other.
    """
    digest = hashlib.sha256(f"{target_id}\x00node:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class ClusterRouter:
    """Pure placement: target id → node name, by highest rendezvous weight.

    Deterministic across processes (no state, no seeds) and monotonic
    under growth: a target changes nodes only when a *new* node outbids
    every existing one, never because two existing nodes swapped ranks.
    """

    def __init__(self, names) -> None:
        self.names = tuple(names)
        if not self.names:
            raise ValueError("a cluster needs at least one node")
        if len(set(self.names)) != len(self.names):
            raise ValueError("node names must be unique")

    def node_for(self, target_id: str) -> str:
        return max(self.names, key=lambda name: (_node_weight(target_id, name), name))

    def placement(self, target_ids) -> dict[str, str]:
        """Batch helper: ``{target_id: node_name}`` for a whole fleet."""
        return {target_id: self.node_for(target_id) for target_id in target_ids}


class ClusterClient:
    """``submit`` / ``submit_many`` across every node of a live cluster.

    Routing is per target id via :class:`ClusterRouter`; a burst is split
    into per-node sub-bursts (relative order preserved, so per-node
    micro-batching sees the same neighbours it would in a one-node world)
    and the answers are scattered back into request order.

    Fleet-wide requests (``target_id=None``: report-all, metrics) have no
    single home; :meth:`submit` sends them to the *first* node and
    :meth:`metrics_snapshot` does the honest thing — queries every node
    and merges, each node's entries labeled ``node=<name>``.

    Thread-safe the same way :class:`RemoteGateway` is: each thread gets
    its own connection per node.
    """

    def __init__(self, cluster_map: ClusterMap, *, timeout: float = 30.0, retries: int = 2):
        self.map = cluster_map
        self.router = ClusterRouter(cluster_map.names)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self._tls = threading.local()
        self._all_clients: list[NetClient] = []
        self._lock = threading.Lock()

    def _client(self, name: str) -> NetClient:
        clients = getattr(self._tls, "clients", None)
        if clients is None:
            clients = self._tls.clients = {}
        client = clients.get(name)
        if client is None:
            node = self.map.node(name)
            client = NetClient(
                node.host, node.port, timeout=self.timeout, retries=self.retries
            )
            clients[name] = client
            with self._lock:
                self._all_clients.append(client)
        return client

    def submit(self, request: Request) -> Envelope:
        name = (
            self.router.node_for(request.target_id)
            if request.target_id is not None
            else self.map.names[0]
        )
        return self._client(name).request(request)

    def submit_many(self, requests) -> list[Envelope]:
        requests = list(requests)
        by_node: dict[str, list[int]] = {}
        for index, request in enumerate(requests):
            name = (
                self.router.node_for(request.target_id)
                if request.target_id is not None
                else self.map.names[0]
            )
            by_node.setdefault(name, []).append(index)
        envelopes: list[Envelope | None] = [None] * len(requests)
        for name, indices in by_node.items():
            answers = self._client(name).request_many(
                [requests[index] for index in indices]
            )
            for index, envelope in zip(indices, answers):
                envelopes[index] = envelope
        return envelopes  # type: ignore[return-value]

    def metrics_snapshot(self) -> dict:
        """Every node's snapshot merged, entries labeled ``node=<name>``."""
        merged = MetricsRegistry()
        for node in self.map.nodes:
            envelope = self._client(node.name).request(MetricsRequest())
            if not envelope.ok or not envelope.payload:
                raise NetError(f"node {node.name!r} metrics request failed: {envelope.error}")
            merged.merge(envelope.payload["metrics"], extra_labels={"node": node.name})
        return merged.snapshot()

    def close(self) -> None:
        with self._lock:
            clients, self._all_clients = list(self._all_clients), []
        for client in clients:
            client.close()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def node_command(cluster_map: ClusterMap, node: NodeSpec, python: str | None = None) -> list[str]:
    """The ``repro serve`` argv that runs one cluster node.

    Shared ``serve_args`` come first, per-node ``serve_args`` after (so a
    node can override a shared flag); the supervisor (``repro cluster``)
    spawns one of these per node and forwards its own signals.
    """
    return [
        python or sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--listen",
        f"{node.host}:{node.port}",
        "--node",
        node.name,
        *cluster_map.serve_args,
        *node.serve_args,
    ]
