"""The asyncio socket transport: ``repro serve --listen HOST:PORT``.

:class:`NetServer` puts the unchanged ``repro.serve/v1`` JSON-lines codec
on a TCP socket.  One connection speaks exactly the stdio protocol — one
request per line in, one envelope per line out, malformed lines answered as
``"invalid"`` error envelopes — while the server as a whole adds what a
pipe never needed:

* **concurrent connections** — every connection gets its own reader task,
  bounded queue, and worker task; gateway work runs on a shared thread
  pool, so clients make progress independently;
* **strict per-connection ordering** — a connection's envelopes come back
  in exactly the order its requests went in, whatever the gateway
  parallelism behind them (responses carry no request id; order *is* the
  correlation, exactly as on stdio);
* **burst framing** — a blank line toggles burst accumulation: lines
  between two blank markers are submitted as one
  :meth:`~repro.serve.Gateway.submit_many` burst (micro-batched predicts,
  stacked training), lines outside markers are answered one by one.  Blank
  lines are no-ops in the stdio codec, so the markers cost nothing and an
  interactive client that never sends them gets per-line answers — and an
  unterminated burst flushes at EOF, so nothing ever hangs;
* **bounded queues with explicit backpressure** — each connection admits at
  most ``max_pending`` undispatched requests.  Beyond that, requests are
  *shed*: answered immediately-in-order with a typed ``overloaded`` error
  envelope, never silently dropped.  Beyond the hard cap (shed markers
  included) the server simply stops reading the socket, pushing the
  pressure into the kernel's TCP window — a stalled or flooding client
  parks, bounded, without starving anyone else;
* **graceful shutdown** — SIGINT/SIGTERM (or :meth:`stop`) stops accepting,
  feeds EOF to every open connection, lets queued requests finish and
  their envelopes flush, then tears the pool down.  ``repro serve`` then
  flushes ``--metrics-out``/``--trace`` and exits 0.

Telemetry lands in the gateway's own :class:`~repro.obs.MetricsRegistry`
(``net.*`` counters labeled per connection, plus ``node=`` when the server
is a named cluster member), so one ``--metrics-out`` snapshot covers the
transport and the fleet behind it, and the simulator's
``metrics_accounting`` invariant can reconcile accepted/shed counts against
the envelope transcript.
"""

from __future__ import annotations

import asyncio
import signal
import threading
from concurrent.futures import ThreadPoolExecutor

from ..obs import MetricsRegistry
from ..serve.loop import Session, decode_line
from ..serve.protocol import Envelope, Request
from .framing import LineFramer

__all__ = ["NetServer", "overloaded_envelope", "parse_address"]

#: Sentinel queue item: the connection's input ended (EOF or shutdown).
_EOF = object()


def parse_address(text: str) -> tuple[str, int]:
    """Parse ``HOST:PORT`` (IPv6 hosts may be bracketed); raises ValueError."""
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    host = host.strip("[]") or "127.0.0.1"
    return host, int(port)


def overloaded_envelope(request: Request, limit: int) -> Envelope:
    """The typed error envelope a shed request is answered with.

    ``error.type`` is the literal string ``"overloaded"`` — not an
    exception class name — so clients can match on it without knowing
    server internals.  Shedding is deterministic-by-position: the envelope
    takes the shed request's place in the connection's response order.
    """
    return Envelope(
        ok=False,
        kind=request.kind,
        target_id=request.target_id,
        error={
            "type": "overloaded",
            "message": (
                f"connection queue is full ({limit} request(s) pending); "
                "this request was not executed — retry after draining "
                "responses"
            ),
        },
    )


class _Connection:
    """Per-connection state: the queue, the counters, the completion event."""

    __slots__ = (
        "conn_id",
        "reader",
        "writer",
        "queue",
        "pending_work",
        "drained",
        "done",
        "dead",
        "peak_depth",
    )

    def __init__(self, conn_id: str, reader, writer) -> None:
        self.conn_id = conn_id
        self.reader = reader
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue()
        self.pending_work = 0  # admitted requests not yet executed
        self.drained = asyncio.Event()  # pulsed by the worker after each pop
        self.done = asyncio.Event()  # set when reader+worker have finished
        self.dead = False  # write side failed; stop executing for it
        self.peak_depth = 0


class NetServer:
    """Serve a :class:`~repro.serve.Gateway` over TCP JSON lines.

    Parameters
    ----------
    gateway:
        Anything with the gateway submission surface (``submit`` /
        ``submit_many``); tests use stubs, production uses the real thing.
    host, port:
        Bind address; port 0 picks an ephemeral port (see :attr:`address`).
    max_pending:
        Per-connection admission bound: requests admitted but not yet
        executed.  At the bound, new requests are shed with
        :func:`overloaded_envelope`.  ``0`` sheds everything — useful for
        testing client overload handling.
    hard_cap:
        Per-connection queue ceiling (admitted work + shed markers + burst
        markers).  At the ceiling the reader stops reading entirely until
        the worker drains — TCP backpressure, bounded memory.  Defaults to
        ``4 * max_pending + 16``.
    workers:
        Threads executing gateway calls across all connections.
    node:
        Optional cluster-node name, stamped as a ``node=`` label on every
        ``net.*`` metric this server records.
    metrics:
        Registry for the ``net.*`` transport counters.  Defaults to the
        gateway's own registry so one snapshot covers transport + fleet.
    drain_timeout:
        Seconds graceful shutdown waits for open connections to finish
        their queued work before cancelling them.
    """

    def __init__(
        self,
        gateway,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_pending: int = 64,
        hard_cap: int | None = None,
        workers: int = 8,
        node: str | None = None,
        metrics: MetricsRegistry | None = None,
        drain_timeout: float = 10.0,
    ) -> None:
        if max_pending < 0:
            raise ValueError("max_pending must be non-negative")
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.gateway = gateway
        self.host = host
        self.port = port
        self.max_pending = int(max_pending)
        self.hard_cap = int(hard_cap) if hard_cap is not None else 4 * self.max_pending + 16
        if self.hard_cap <= self.max_pending:
            raise ValueError("hard_cap must exceed max_pending")
        self.workers = int(workers)
        self.node = node
        registry = metrics if metrics is not None else getattr(gateway, "metrics", None)
        base = registry if isinstance(registry, MetricsRegistry) else MetricsRegistry()
        self.metrics = base.labeled(node=node) if node is not None else base
        self.drain_timeout = float(drain_timeout)
        self.session = Session(gateway)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._conns: set[_Connection] = set()
        self._next_conn = 0
        self._bound: tuple[str, int] | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._thread_error: BaseException | None = None
        # Plain-int transport stats, loop-thread-mutated, safe to read anywhere.
        self.stats = {
            "connections_opened": 0,
            "connections_closed": 0,
            "lines": 0,
            "accepted": 0,
            "shed": 0,
            "invalid": 0,
            "bursts": 0,
            "served": 0,
            "peak_queue_depth": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — meaningful once serving started."""
        if self._bound is None:
            raise RuntimeError("server is not bound yet")
        return self._bound

    def run(self, ready=None, install_signals: bool = True) -> None:
        """Serve until :meth:`stop` or SIGINT/SIGTERM; blocks the caller.

        ``ready(host, port)`` fires once the listening socket is bound.
        Signal handlers are installed only when the event loop allows it
        (main thread of the main interpreter).
        """
        asyncio.run(self._main(ready=ready, install_signals=install_signals))

    def start(self) -> tuple[str, int]:
        """Serve on a daemon thread; returns the bound address (tests)."""
        if self._thread is not None:
            raise RuntimeError("server already started")

        def runner() -> None:
            try:
                asyncio.run(self._main(install_signals=False))
            except BaseException as exc:  # surfaced on stop()/join
                self._thread_error = exc
                self._started.set()

        self._thread = threading.Thread(target=runner, name="net-server", daemon=True)
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._thread_error is not None:
            raise RuntimeError("server failed to start") from self._thread_error
        if self._bound is None:
            raise RuntimeError("server did not bind within 30s")
        return self._bound

    def stop(self) -> None:
        """Request graceful shutdown (thread-safe); joins a started thread."""
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop_event.set)
            except RuntimeError:
                pass  # loop already closed: nothing left to stop
        if self._thread is not None:
            self._thread.join(timeout=self.drain_timeout + 30.0)
            self._thread = None
        if self._thread_error is not None:
            error, self._thread_error = self._thread_error, None
            raise RuntimeError("server thread failed") from error

    def __enter__(self) -> "NetServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    async def _main(self, ready=None, install_signals: bool = True) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        if install_signals:
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    self._loop.add_signal_handler(signum, self._stop_event.set)
                except (NotImplementedError, RuntimeError, ValueError):
                    break  # non-main thread or unsupported platform
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="net-serve"
        )
        server = await asyncio.start_server(self._on_connection, self.host, self.port)
        self._bound = server.sockets[0].getsockname()[:2]
        self._started.set()
        if ready is not None:
            ready(*self._bound)
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            await server.wait_closed()
            await self._drain_connections()
            self._pool.shutdown(wait=True)
            self._loop = None
            self._stop_event = None

    async def _drain_connections(self) -> None:
        """Feed EOF to every open connection; wait for queued work to flush."""
        conns = list(self._conns)
        for conn in conns:
            conn.reader.feed_eof()
        if not conns:
            return
        waits = [asyncio.create_task(conn.done.wait()) for conn in conns]
        done, pending = await asyncio.wait(waits, timeout=self.drain_timeout)
        for task in pending:
            task.cancel()
        if pending:
            # Past the drain deadline (a parked client that never reads,
            # a wedged backend): force the sockets closed rather than hang.
            for conn in conns:
                if not conn.done.is_set():
                    conn.dead = True
                    conn.writer.close()

    # ------------------------------------------------------------------
    # Per-connection reader
    # ------------------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        conn = _Connection(str(self._next_conn), reader, writer)
        self._next_conn += 1
        self._conns.add(conn)
        self.stats["connections_opened"] += 1
        self.metrics.counter("net.connections.opened")
        self.metrics.gauge_add("net.connections.active", 1)
        worker = asyncio.create_task(self._worker(conn))
        framer = LineFramer()
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                for line in framer.feed(chunk):
                    await self._ingest(conn, line)
            tail = framer.flush()
            if tail is not None:
                await self._ingest(conn, tail)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # abrupt client death: the worker drains and we fold up
        finally:
            await conn.queue.put(_EOF)
            self._bump_depth(conn)
            await worker
            conn.writer.close()
            try:
                await conn.writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._conns.discard(conn)
            self.stats["connections_closed"] += 1
            self.metrics.counter("net.connections.closed")
            self.metrics.gauge_add("net.connections.active", -1)
            self.metrics.gauge_set("net.queue_depth", 0, conn=conn.conn_id)
            conn.done.set()

    async def _ingest(self, conn: _Connection, line: str) -> None:
        """Admit, shed, or mark one received line; apply the hard cap."""
        request, error = decode_line(line)
        if request is None and error is None:
            item = ("mark",)  # blank line: burst-framing toggle
        else:
            self.stats["lines"] += 1
            self.metrics.counter("net.lines", conn=conn.conn_id)
            if error is not None:
                self.stats["invalid"] += 1
                self.metrics.counter("net.invalid", conn=conn.conn_id)
                item = ("reply", error)
            elif conn.pending_work >= self.max_pending:
                self.stats["shed"] += 1
                self.metrics.counter("net.shed", conn=conn.conn_id)
                item = ("reply", overloaded_envelope(request, self.max_pending))
            else:
                self.stats["accepted"] += 1
                self.metrics.counter("net.accepted", conn=conn.conn_id)
                conn.pending_work += 1
                item = ("request", request)
        await conn.queue.put(item)
        self._bump_depth(conn)
        # Hard cap: stop reading until the worker makes room.  This is the
        # explicit backpressure seam — a flooding or stalled-reader client
        # fills its TCP window and parks; memory stays bounded.
        while conn.queue.qsize() >= self.hard_cap:
            conn.drained.clear()
            await conn.drained.wait()

    def _bump_depth(self, conn: _Connection) -> None:
        depth = conn.queue.qsize()
        if depth > conn.peak_depth:
            conn.peak_depth = depth
            if depth > self.stats["peak_queue_depth"]:
                self.stats["peak_queue_depth"] = depth
        self.metrics.gauge_set("net.queue_depth", depth, conn=conn.conn_id)

    # ------------------------------------------------------------------
    # Per-connection worker: ordering and burst framing live here
    # ------------------------------------------------------------------
    async def _worker(self, conn: _Connection) -> None:
        batch: list[Request] = []
        batching = False
        while True:
            item = await conn.queue.get()
            self._bump_depth(conn)
            conn.drained.set()
            if item is _EOF:
                await self._flush(conn, batch)
                return
            tag = item[0]
            if tag == "mark":
                if batching:
                    await self._flush(conn, batch)
                batching = not batching
            elif tag == "reply":
                # A pre-answered line (junk or shed).  Anything accumulated
                # before it must answer first — order is the correlation.
                await self._flush(conn, batch)
                await self._write(conn, item[1])
            elif batching:
                batch.append(item[1])
            else:
                await self._execute(conn, [item[1]])

    async def _flush(self, conn: _Connection, batch: list[Request]) -> None:
        if batch:
            burst, batch[:] = list(batch), []
            self.stats["bursts"] += 1
            await self._execute(conn, burst)

    async def _execute(self, conn: _Connection, requests: list[Request]) -> None:
        try:
            if conn.dead:
                # The client is gone; executing would mutate fleet state
                # for answers nobody will read.
                return
            envelopes = await asyncio.get_running_loop().run_in_executor(
                self._pool, self.session.handle_requests, requests
            )
            for envelope in envelopes:
                await self._write(conn, envelope)
        finally:
            conn.pending_work -= len(requests)

    async def _write(self, conn: _Connection, envelope: Envelope) -> None:
        if conn.dead:
            return
        try:
            conn.writer.write((envelope.to_json() + "\n").encode("utf-8"))
            await conn.writer.drain()
            self.stats["served"] += 1
        except (ConnectionResetError, BrokenPipeError, OSError):
            conn.dead = True
