"""Networked serving: the socket transport and multi-process cluster mode.

Everything below ``repro.net`` moves bytes; nothing below it decides what
they mean.  The wire format is the unchanged ``repro.serve/v1`` JSON-lines
codec — the same :func:`repro.serve.decode_line` / ``Envelope`` pair the
stdio loop speaks — so a request answered over a socket is byte-identical
to the same request answered over a pipe, and the simulator can verify
exactly that (:func:`repro.sim.verify_transport`).

Layers, bottom up:

* :class:`LineFramer` — byte stream → decoded lines, chunking-invariant
  and total (junk never escapes the error-envelope discipline);
* :class:`NetServer` — asyncio TCP server: concurrent connections, strict
  per-connection ordering, bounded queues, typed ``overloaded`` shedding,
  graceful drain on SIGINT/SIGTERM;
* :class:`NetClient` / :class:`RemoteGateway` — the matching synchronous
  client and the gateway-surface adapter the CLI and simulator drive;
* :class:`ClusterRouter` / :class:`ClusterClient` — rendezvous placement
  across N server processes (``repro.cluster/v1`` map), preserving the
  grow-without-reshuffling invariant of shard placement;
* :class:`GracefulShutdown` — the stdio loop's half of drain-on-signal.
"""

from .client import NetClient, NetError, RemoteGateway
from .cluster import (
    CLUSTER_SCHEMA,
    ClusterClient,
    ClusterMap,
    ClusterRouter,
    NodeSpec,
    load_cluster_map,
    node_command,
)
from .framing import MAX_LINE_BYTES, LineFramer
from .server import NetServer, overloaded_envelope, parse_address
from .shutdown import GracefulShutdown, ShutdownRequested

__all__ = [
    "CLUSTER_SCHEMA",
    "MAX_LINE_BYTES",
    "ClusterClient",
    "ClusterMap",
    "ClusterRouter",
    "GracefulShutdown",
    "LineFramer",
    "NetClient",
    "NetError",
    "NetServer",
    "NodeSpec",
    "RemoteGateway",
    "ShutdownRequested",
    "load_cluster_map",
    "node_command",
    "overloaded_envelope",
    "parse_address",
]
