"""Incremental line framing for the socket transport.

TCP delivers a byte *stream*: one client ``write`` can arrive split across
many reads, or glued to its neighbours, and a malicious (or broken) peer can
send bytes that are not UTF-8 at all.  :class:`LineFramer` turns that stream
back into the JSON lines the ``repro.serve/v1`` codec expects, with two
promises the property tests pin:

* **chunking invariance** — feeding a byte stream in arbitrary pieces
  yields exactly the lines that splitting the whole stream at once would;
* **totality** — the framer never raises.  Bytes that do not decode as
  UTF-8 become replacement characters, which then fail JSON decoding and
  come back as the documented ``"invalid"`` error envelope.  Junk stays
  inside the envelope discipline; it never tears a connection down.

The framer is transport-level only: it splits and decodes, nothing more.
Request decoding stays in :func:`repro.serve.decode_line`, shared with the
stdio loop, so both transports answer malformed input identically.
"""

from __future__ import annotations

__all__ = ["LineFramer", "MAX_LINE_BYTES"]

#: Upper bound on one wire line (16 MiB).  A line that long is not a request
#: — it is a memory-exhaustion attempt or a framing bug; the framer turns it
#: into a (single) guaranteed-invalid line instead of buffering forever.
MAX_LINE_BYTES = 16 * 1024 * 1024


class LineFramer:
    """Split a byte stream into decoded text lines, incrementally.

    Feed arbitrary byte chunks with :meth:`feed`; each call returns the
    lines completed by that chunk (newline-terminated, terminator removed).
    At EOF, :meth:`flush` returns any unterminated tail as a final line.
    """

    __slots__ = ("_buffer", "_max_line", "_overflowed")

    def __init__(self, max_line_bytes: int = MAX_LINE_BYTES) -> None:
        self._buffer = bytearray()
        self._max_line = int(max_line_bytes)
        self._overflowed = False

    def feed(self, data: bytes) -> list[str]:
        """Absorb one chunk; return the text lines it completed, in order."""
        self._buffer.extend(data)
        if b"\n" not in data and len(self._buffer) <= self._max_line:
            return []
        lines: list[str] = []
        while True:
            index = self._buffer.find(b"\n")
            if index < 0:
                if len(self._buffer) > self._max_line:
                    # Discard the oversized prefix but remember we did: the
                    # eventual newline must still produce exactly one
                    # (invalid) line, not silently resynchronize.
                    self._overflowed = True
                    del self._buffer[:]
                break
            raw = bytes(self._buffer[:index])
            del self._buffer[: index + 1]
            lines.append(self._decode(raw))
        return lines

    def flush(self) -> str | None:
        """Return the unterminated tail as a final line (``None`` if empty)."""
        if not self._buffer and not self._overflowed:
            return None
        raw = bytes(self._buffer)
        del self._buffer[:]
        line = self._decode(raw)
        return line if line.strip() else None

    def _decode(self, raw: bytes) -> str:
        if self._overflowed:
            self._overflowed = False
            return '"line exceeded the transport limit'  # cannot be valid JSON
        # errors="replace" keeps the framer total: undecodable bytes become
        # U+FFFD, fail JSON parsing downstream, and answer as an error
        # envelope — the same fate as any other junk line.
        text = raw.decode("utf-8", errors="replace")
        return text[:-1] if text.endswith("\r") else text
