"""The socket client: ``NetClient`` for programs, ``RemoteGateway`` for the sim.

:class:`NetClient` is deliberately synchronous — one socket, blocking I/O,
per-operation timeouts — because every caller of the gateway surface is
synchronous: the CLI, the simulator's mutator chains, the benchmark
harness.  Concurrency comes from *many* clients (the simulator opens one
per chain thread), matching how the server multiplexes connections.

Retry policy is bounded and honest about side effects.  A failure while
*connecting or sending* is always safe to retry: the server cannot have
seen the request.  A failure while *waiting for the answer* is retried
only when every request in flight is idempotent (``predict`` / ``report``
/ ``metrics``) — re-running an ``adapt`` would train the target twice,
so those surface as :class:`NetError` for the caller to decide.

:class:`RemoteGateway` wraps clients in the gateway submission surface
(``submit`` / ``submit_many`` / ``metrics_snapshot``) so the simulator and
CLI can point existing code at a live server unchanged.  It is also where
the network fault plans attach: :meth:`~RemoteGateway.schedule_churn`
drops every connection at its next safe point (the start of an operation,
never mid-exchange, so transcripts stay byte-identical) and
:meth:`~RemoteGateway.schedule_stall` parks one reader after sending, the
client-side half of the backpressure story.
"""

from __future__ import annotations

import json
import socket
import threading
import time

from ..obs import MetricsRegistry
from ..serve.protocol import Envelope, MetricsRequest, Request, encode_request

__all__ = ["NetClient", "NetError", "RemoteGateway"]

#: Request kinds safe to re-send after a failure mid-exchange: re-running
#: them cannot change fleet state.  ``adapt`` and ``stream`` mutate.
IDEMPOTENT_KINDS = frozenset({"predict", "report", "metrics"})


class NetError(RuntimeError):
    """A network operation failed after exhausting its bounded retries."""


class NetClient:
    """One TCP connection speaking ``repro.serve/v1`` JSON lines.

    Not thread-safe by design — a connection's response order is its
    request order, so interleaving writers would scramble correlation.
    Use one client per thread (:class:`RemoteGateway` automates this).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        retries: int = 2,
        retry_delay: float = 0.05,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.retry_delay = float(retry_delay)
        self._sock: socket.socket | None = None
        self._rfile = None
        self._stall_seconds: float | None = None

    # -- connection lifecycle ---------------------------------------------
    def connect(self) -> None:
        """Open the connection if it is not already open."""
        if self._sock is not None:
            return
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        sock.settimeout(self.timeout)
        self._sock = sock
        self._rfile = sock.makefile("rb")

    def close(self) -> None:
        """Close the connection; the next operation reconnects."""
        sock, self._sock = self._sock, None
        rfile, self._rfile = self._rfile, None
        for closable in (rfile, sock):
            if closable is not None:
                try:
                    closable.close()
                except OSError:
                    pass

    def __enter__(self) -> "NetClient":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stall_next(self, seconds: float) -> None:
        """Sleep ``seconds`` after the next send, before reading the answer.

        The ``slow_client`` fault plan's hook: the server has produced the
        response but this client is not reading it, so the response (and
        anything queued behind it) backs up into the server's bounded
        queue and, past the hard cap, into the TCP window.
        """
        self._stall_seconds = float(seconds)

    # -- the exchange core -------------------------------------------------
    def _exchange(self, lines: list[str], n_responses: int, idempotent: bool) -> list[str]:
        """Send ``lines``, read ``n_responses`` answers, with bounded retry."""
        payload = "".join(line + "\n" for line in lines).encode("utf-8")
        attempts = self.retries + 1
        for attempt in range(attempts):
            sent = False
            try:
                self.connect()
                self._sock.sendall(payload)
                sent = True
                stall, self._stall_seconds = self._stall_seconds, None
                if stall:
                    time.sleep(stall)
                return [self._read_line() for _ in range(n_responses)]
            except (OSError, EOFError) as exc:
                # OSError covers refused connects, resets, and timeouts
                # (socket.timeout is a subclass); EOFError is the server
                # closing mid-read.  Either way this connection is done.
                self.close()
                retriable = not sent or idempotent
                if not retriable or attempt + 1 >= attempts:
                    raise NetError(
                        f"{self.host}:{self.port}: "
                        f"{'response' if sent else 'send'} failed after "
                        f"{attempt + 1} attempt(s): {exc}"
                    ) from exc
                time.sleep(self.retry_delay * (attempt + 1))
        raise AssertionError("unreachable: the retry loop returns or raises")

    def _read_line(self) -> str:
        raw = self._rfile.readline()
        if not raw:
            raise EOFError("server closed the connection")
        return raw.decode("utf-8", errors="replace")

    # -- typed operations ---------------------------------------------------
    def request(self, request: Request) -> Envelope:
        """Submit one request; return its envelope."""
        return self.request_many([request])[0]

    def request_many(self, requests: list[Request]) -> list[Envelope]:
        """Submit a burst as one server-side ``submit_many``.

        Blank lines bracket the burst — they are no-ops in the line codec,
        but the server reads them as burst markers and submits everything
        between them through one :meth:`~repro.serve.Gateway.submit_many`.
        That keeps micro-batch coalescing (and therefore the ``coalesced``
        flag in predict payloads) identical to an in-process burst,
        whatever TCP did to the segmentation.
        """
        if not requests:
            return []
        body = [_encode_line(request) for request in requests]
        if len(requests) == 1:
            lines = body  # submit(); markers would be pure overhead
        else:
            lines = ["", *body, ""]
        idempotent = all(request.kind in IDEMPOTENT_KINDS for request in requests)
        responses = self._exchange(lines, len(requests), idempotent)
        return [_parse_envelope(self, raw) for raw in responses]

    def request_line(self, line: str) -> str | None:
        """Raw passthrough for ``repro serve --connect``: one line, one answer.

        Blank lines return ``None`` without touching the wire (the stdio
        loop skips them too — and on the socket they would toggle burst
        framing, which a line-at-a-time pipe does not want).  Junk lines
        go through and come back as the server's ``"invalid"`` envelope.
        """
        if not line.strip():
            return None
        [response] = self._exchange([line.rstrip("\n")], 1, idempotent=False)
        return response.rstrip("\n")


def _encode_line(request: Request) -> str:
    return json.dumps(encode_request(request))


def _parse_envelope(client: NetClient, raw: str) -> Envelope:
    try:
        return Envelope.from_json(raw)
    except ValueError as exc:
        raise NetError(
            f"{client.host}:{client.port}: server sent a non-envelope line: "
            f"{raw[:200]!r}"
        ) from exc


class RemoteGateway:
    """The gateway submission surface, served by a remote ``NetServer``.

    Each calling thread gets its own :class:`NetClient` (connections are
    ordered, threads are not), created lazily and reused — the simulator's
    mutator-chain threads each hold a connection for their whole run, the
    shape a real multi-client fleet has.

    ``local`` optionally names the in-process gateway *behind* the server
    when both live in one process (tests, ``verify_transport``): invariant
    checks can then reach shards and metrics directly while all traffic
    still crosses the wire.  Without it, :attr:`shards` is empty and
    :attr:`metrics` is a disabled registry, which the invariant suite
    already treats as "nothing to check here".

    The :attr:`networked` class attribute is the duck-type marker the
    sim's accounting invariant keys on to reconcile ``net.*`` counters.
    """

    networked = True

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 30.0,
        retries: int = 2,
        local=None,
        n_shards: int | None = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.local = local
        self._n_shards_hint = int(n_shards) if n_shards else 0
        self._tls = threading.local()
        self._clients: list[NetClient] = []
        self._lock = threading.Lock()
        self._churn_generation = 0
        self._pending_stall: float | None = None
        self._disabled_metrics = MetricsRegistry(enabled=False)

    # -- gateway surface -----------------------------------------------------
    @property
    def metrics(self) -> MetricsRegistry:
        return self.local.metrics if self.local is not None else self._disabled_metrics

    @property
    def shards(self):
        return self.local.shards if self.local is not None else ()

    @property
    def train_batching(self) -> int:
        return getattr(self.local, "train_batching", 1)

    @property
    def n_shards(self) -> int:
        if self.local is not None:
            return self.local.n_shards
        return self._n_shards_hint

    def shard_for(self, target_id: str) -> int:
        """Rendezvous placement, computed locally — it is a pure function.

        With a ``local`` backing gateway this delegates; without one it
        needs the remote shard count (``n_shards=`` at construction, e.g.
        from the workload spec) to run the same argmax the server runs.
        """
        if self.local is not None:
            return self.local.shard_for(target_id)
        if self._n_shards_hint:
            from ..serve.gateway import _placement_weight

            return max(
                range(self._n_shards_hint),
                key=lambda shard: _placement_weight(target_id, shard),
            )
        raise NetError(
            "shard_for needs a local backing gateway or an n_shards hint"
        )

    def restart_shard_workers(self, shard: int) -> None:
        if self.local is None:
            raise NetError("restart_shard_workers needs a local backing gateway")
        self.local.restart_shard_workers(shard)

    def submit(self, request: Request) -> Envelope:
        return self._client().request(request)

    def submit_many(self, requests) -> list[Envelope]:
        return self._client().request_many(list(requests))

    def metrics_snapshot(self) -> dict:
        """The server-side merged snapshot, fetched over the wire."""
        envelope = self.submit(MetricsRequest())
        if not envelope.ok or not envelope.payload:
            raise NetError(f"metrics request failed: {envelope.error}")
        return envelope.payload["metrics"]

    def close(self) -> None:
        """Close every per-thread connection (the server stays up)."""
        with self._lock:
            clients, self._clients = list(self._clients), []
        for client in clients:
            client.close()
        if self.local is not None:
            self.local.close()

    # -- fault-plan hooks ----------------------------------------------------
    def schedule_churn(self, callback=None) -> bool:
        """Drop every connection at its next safe point.

        Each thread's client reconnects itself *before* its next exchange —
        never between sending a burst and reading its answers — so no
        request is lost or re-sent and transcripts stay byte-identical.
        The server meanwhile observes real disconnect/reconnect churn
        (``net.connections.*`` count it).
        """
        with self._lock:
            self._churn_generation += 1
        if callback is not None:
            callback()
        return True

    def schedule_stall(self, seconds: float, callback=None) -> bool:
        """Make the next exchange (any thread) stall before reading.

        The server keeps producing; this client stops consuming — the
        documented backpressure path, driven deterministically by the
        ``slow_client`` fault plan.  Content-neutral: only wall-clock
        timing changes, and transcripts scrub wall clocks.
        """
        with self._lock:
            self._pending_stall = float(seconds)
        if callback is not None:
            callback()
        return True

    # -- per-thread client management ---------------------------------------
    def _client(self) -> NetClient:
        client = getattr(self._tls, "client", None)
        if client is None:
            client = NetClient(
                self.host, self.port, timeout=self.timeout, retries=self.retries
            )
            self._tls.client = client
            self._tls.generation = self._churn_generation
            with self._lock:
                self._clients.append(client)
        with self._lock:
            generation = self._churn_generation
            stall, self._pending_stall = self._pending_stall, None
        if self._tls.generation != generation:
            # A scheduled churn: drop this thread's connection now, at an
            # operation boundary; _exchange reconnects before sending.
            client.close()
            self._tls.generation = generation
        if stall is not None:
            client.stall_next(stall)
        return client
