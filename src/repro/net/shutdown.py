"""Signal-driven graceful shutdown for the stdio serving loop.

The asyncio server gets drain-on-signal for free from
``loop.add_signal_handler``; the stdio loop is synchronous and needs the
same behavior built from raw signals.  The subtlety is *where* the signal
lands: raising out of the handler is the only way to interrupt a read that
is blocked in C (PEP 475 retries ``EINTR`` otherwise), but raising while a
request is mid-flight would drop its envelope — the opposite of draining.

:class:`GracefulShutdown` threads that needle with one flag: the loop wraps
its blocking read in :meth:`reading`, and the handler raises
:class:`ShutdownRequested` only inside that window.  A signal at any other
moment just sets :attr:`requested`, which the loop checks between requests
— the in-flight request finishes, its envelope flushes, and the loop exits
normally so metrics/trace flushing and pool teardown run as on EOF.
"""

from __future__ import annotations

import signal
from contextlib import contextmanager

__all__ = ["GracefulShutdown", "ShutdownRequested"]


class ShutdownRequested(BaseException):
    """Raised *only* out of a signal handler, *only* during a blocking read.

    A ``BaseException`` (like ``KeyboardInterrupt``) so no overly broad
    ``except Exception`` between the read and the loop can swallow it.
    """


class GracefulShutdown:
    """Install SIGINT/SIGTERM handlers that drain a synchronous serve loop."""

    def __init__(self) -> None:
        self.requested = False
        self.signum: int | None = None
        self._reading = False
        self._previous: dict[int, object] = {}

    # -- signal plumbing --------------------------------------------------
    def _handle(self, signum, frame) -> None:
        self.requested = True
        if self.signum is None:
            self.signum = signum
        if self._reading:
            raise ShutdownRequested()

    def install(self, signums=(signal.SIGINT, signal.SIGTERM)) -> "GracefulShutdown":
        """Install the handlers (main thread only); returns ``self``."""
        for signum in signums:
            self._previous[signum] = signal.signal(signum, self._handle)
        return self

    def uninstall(self) -> None:
        """Restore whatever handlers :meth:`install` replaced."""
        while self._previous:
            signum, previous = self._previous.popitem()
            signal.signal(signum, previous)

    # -- the loop's read window -------------------------------------------
    @contextmanager
    def reading(self):
        """Mark a blocking read: a signal inside raises ShutdownRequested."""
        self._reading = True
        try:
            if self.requested:
                # The signal beat us to the window; don't start a read that
                # nothing will interrupt again.
                raise ShutdownRequested()
            yield
        finally:
            self._reading = False

    def __enter__(self) -> "GracefulShutdown":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()
