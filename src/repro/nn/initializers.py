"""Weight initialization schemes for the numpy substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "he_uniform", "he_normal", "zeros", "constant"]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialization.

    ``shape`` is interpreted as ``(fan_in, fan_out, ...)``; the remaining
    dimensions (e.g. convolution kernel sizes) multiply into the fans.
    """
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialization (suited for ReLU networks)."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal initialization (suited for ReLU networks)."""
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros initialization (typically for biases)."""
    return np.zeros(shape, dtype=np.float64)


def constant(shape: tuple[int, ...], value: float) -> np.ndarray:
    """Constant initialization."""
    return np.full(shape, float(value), dtype=np.float64)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("initializer shape must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[0] * receptive
    fan_out = shape[1] * receptive
    return fan_in, fan_out
