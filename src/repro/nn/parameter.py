"""Trainable parameters for the numpy neural-network substrate.

A :class:`Parameter` bundles a value array with its gradient accumulator and a
human-readable name.  Modules expose their parameters through
``Module.parameters()`` so optimizers can update them in place.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A trainable tensor with an accumulated gradient.

    Parameters
    ----------
    data:
        Initial value.  It is converted to a ``float64`` numpy array and owned
        by the parameter (a copy is made).
    name:
        Optional identifier used in serialization and debugging output.
    trainable:
        When ``False`` the optimizer skips this parameter (useful for frozen
        layers, e.g. when adapting only part of a network).
    """

    def __init__(self, data: np.ndarray, name: str = "", trainable: bool = True):
        self.data = np.array(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name
        self.trainable = trainable

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying value array."""
        return self.data.shape

    @property
    def size(self) -> int:
        """Number of scalar entries in the parameter."""
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad.fill(0.0)

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` to the stored gradient.

        Raises
        ------
        ValueError
            If the gradient shape does not match the parameter shape.
        """
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter "
                f"shape {self.data.shape} for parameter '{self.name}'"
            )
        self.grad += grad

    def copy(self) -> "Parameter":
        """Return a deep copy (value and gradient) of this parameter."""
        clone = Parameter(self.data.copy(), name=self.name, trainable=self.trainable)
        clone.grad = self.grad.copy()
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Parameter(name={self.name!r}, shape={self.shape}, trainable={self.trainable})"
