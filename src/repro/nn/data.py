"""Minimal dataset and mini-batch loading utilities."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["ArrayDataset", "DataLoader", "train_test_split"]


@dataclass
class ArrayDataset:
    """Inputs, targets and optional per-sample weights held as arrays.

    ``inputs`` may have any shape whose first dimension is the sample count
    (tabular features, IMU windows, images).  ``targets`` is always 2-D
    ``(n_samples, label_dim)``; 1-D targets are promoted automatically.
    """

    inputs: np.ndarray
    targets: np.ndarray
    weights: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.inputs = np.asarray(self.inputs, dtype=np.float64)
        self.targets = np.asarray(self.targets, dtype=np.float64)
        if self.targets.ndim == 1:
            self.targets = self.targets[:, None]
        if len(self.inputs) != len(self.targets):
            raise ValueError(
                f"inputs ({len(self.inputs)}) and targets ({len(self.targets)}) "
                "must have the same number of samples"
            )
        if self.weights is not None:
            self.weights = np.asarray(self.weights, dtype=np.float64)
            if self.weights.shape != (len(self.inputs),):
                raise ValueError("weights must be 1-D with one entry per sample")

    def __len__(self) -> int:
        return len(self.inputs)

    @property
    def label_dim(self) -> int:
        """Dimension of each target vector."""
        return self.targets.shape[1]

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        """Return a new dataset restricted to ``indices``."""
        indices = np.asarray(indices)
        weights = self.weights[indices] if self.weights is not None else None
        return ArrayDataset(self.inputs[indices], self.targets[indices], weights)

    def with_weights(self, weights: np.ndarray) -> "ArrayDataset":
        """Return a copy of this dataset carrying the given per-sample weights."""
        return ArrayDataset(self.inputs, self.targets, np.asarray(weights, dtype=np.float64))


class DataLoader:
    """Iterate over mini-batches of an :class:`ArrayDataset`.

    Parameters
    ----------
    dataset:
        Source dataset.
    batch_size:
        Number of samples per batch; the final batch may be smaller.
    shuffle:
        Whether to reshuffle sample order at the start of each iteration.
    rng:
        Random generator used for shuffling.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 32,
        shuffle: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def __len__(self) -> int:
        return int(np.ceil(len(self.dataset) / self.batch_size))

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray | None]]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self.rng.shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            batch = indices[start : start + self.batch_size]
            weights = self.dataset.weights[batch] if self.dataset.weights is not None else None
            yield self.dataset.inputs[batch], self.dataset.targets[batch], weights


def train_test_split(
    dataset: ArrayDataset,
    test_fraction: float = 0.2,
    rng: np.random.Generator | None = None,
    shuffle: bool = True,
) -> tuple[ArrayDataset, ArrayDataset]:
    """Split a dataset into train and test subsets.

    The paper uses an 80/20 split of each target scenario into an adaptation
    set and a test set; this helper reproduces that protocol.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = rng if rng is not None else np.random.default_rng(0)
    indices = np.arange(len(dataset))
    if shuffle:
        rng.shuffle(indices)
    n_test = max(1, int(round(len(dataset) * test_fraction)))
    test_idx = indices[:n_test]
    train_idx = indices[n_test:]
    return dataset.subset(train_idx), dataset.subset(test_idx)
