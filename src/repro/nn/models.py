"""Regression models used across the four evaluation tasks.

Every task model is a :class:`RegressionModel` made of an *encoder* (feature
extractor) and a *head* (regressor).  The split matters for the baselines:

* the MMD and adversarial (ADV) source-based UDA baselines align the encoder
  features of source and target batches;
* the ``Datafree`` baseline stores per-unit statistics of the encoder features;
* TASFAR itself never inspects features — it only needs forward passes with
  dropout — which is exactly the paper's "target-agnostic" claim.
"""

from __future__ import annotations

import numpy as np

from .activations import ReLU, Sigmoid
from .container import Sequential
from .conv import Conv1d, Conv2d, Flatten, GlobalAveragePool1d, GlobalAveragePool2d, MaxPool2d
from .dropout import Dropout
from .linear import Linear
from .module import Module
from .tcn import TemporalConvNet

__all__ = [
    "RegressionModel",
    "build_mlp",
    "build_tcn_regressor",
    "build_mcnn_counter",
    "build_domain_discriminator",
]


class RegressionModel(Module):
    """Encoder/head composite regression model.

    Parameters
    ----------
    encoder:
        Maps raw inputs to a flat feature vector ``(batch, feature_dim)``.
    head:
        Maps features to predictions ``(batch, label_dim)``.
    """

    def __init__(self, encoder: Module, head: Module) -> None:
        super().__init__()
        self.encoder = encoder
        self.head = head

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return self.head.forward(self.encoder.forward(inputs))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.encoder.backward(self.head.backward(grad_output))

    def features(self, inputs: np.ndarray) -> np.ndarray:
        """Encoder output for ``inputs`` (used by feature-aligning baselines)."""
        return self.encoder.forward(inputs)

    def backward_features(self, grad_features: np.ndarray) -> np.ndarray:
        """Backpropagate a gradient that applies directly to the encoder output."""
        return self.encoder.backward(grad_features)

    def dropout_layers(self) -> list[Dropout]:
        """All dropout layers in the model (used to toggle MC-dropout mode)."""
        return [module for module in self.modules() if isinstance(module, Dropout)]

    def set_mc_dropout(self, enabled: bool) -> None:
        """Enable or disable Monte-Carlo dropout on every dropout layer."""
        for layer in self.dropout_layers():
            layer.enable_mc(enabled)


def build_mlp(
    input_dim: int,
    output_dim: int = 1,
    hidden_dims: tuple[int, ...] = (64, 32),
    dropout: float = 0.2,
    seed: int = 0,
) -> RegressionModel:
    """MLP regressor used for the housing-price and taxi-duration tasks.

    Mirrors the MLP baseline of the paper's two prediction tasks ([53]): a few
    fully-connected layers with ReLU activations and dropout.
    """
    if not hidden_dims:
        raise ValueError("hidden_dims must contain at least one layer size")
    rng = np.random.default_rng(seed)
    layers: list[Module] = []
    previous = input_dim
    for index, width in enumerate(hidden_dims):
        layers.append(Linear(previous, width, rng=rng, name=f"mlp.fc{index}"))
        layers.append(ReLU())
        layers.append(Dropout(dropout, rng=rng))
        previous = width
    encoder = Sequential(*layers)
    head = Linear(previous, output_dim, rng=rng, name="mlp.head")
    return RegressionModel(encoder, head)


def build_tcn_regressor(
    in_channels: int,
    window_length: int,
    output_dim: int = 2,
    channel_sizes: tuple[int, ...] = (16, 16),
    kernel_size: int = 3,
    dropout: float = 0.2,
    head_hidden: int = 32,
    seed: int = 0,
) -> RegressionModel:
    """Temporal-convolution regressor standing in for RoNIN (PDR task).

    Consumes IMU-like windows of shape ``(batch, in_channels, window_length)``
    and outputs a 2-D step displacement.
    """
    del window_length  # the network is fully convolutional over time
    rng = np.random.default_rng(seed)
    encoder = Sequential(
        TemporalConvNet(in_channels, list(channel_sizes), kernel_size=kernel_size, dropout=dropout, rng=rng),
        GlobalAveragePool1d(),
    )
    head = Sequential(
        Linear(channel_sizes[-1], head_hidden, rng=rng, name="tcn.head0"),
        ReLU(),
        Dropout(dropout, rng=rng),
        Linear(head_hidden, output_dim, rng=rng, name="tcn.head1"),
    )
    return RegressionModel(encoder, head)


def build_mcnn_counter(
    image_size: int = 16,
    in_channels: int = 1,
    column_channels: tuple[int, ...] = (4, 6, 8),
    column_kernels: tuple[int, ...] = (3, 5, 7),
    dropout: float = 0.2,
    head_hidden: int = 32,
    seed: int = 0,
) -> RegressionModel:
    """Multi-column CNN crowd counter standing in for MCNN.

    Each column uses a different kernel size so it is sensitive to a different
    crowd density scale, which is the core idea of the original MCNN.  The
    columns are concatenated and regressed to a single count.
    """
    if len(column_channels) != len(column_kernels):
        raise ValueError("column_channels and column_kernels must have the same length")
    rng = np.random.default_rng(seed)
    encoder = _MultiColumnEncoder(image_size, in_channels, column_channels, column_kernels, rng)
    head = Sequential(
        Linear(sum(column_channels), head_hidden, rng=rng, name="mcnn.head0"),
        ReLU(),
        Dropout(dropout, rng=rng),
        Linear(head_hidden, 1, rng=rng, name="mcnn.head1"),
    )
    return RegressionModel(encoder, head)


class _MultiColumnEncoder(Module):
    """Parallel convolution columns concatenated into one feature vector."""

    def __init__(
        self,
        image_size: int,
        in_channels: int,
        column_channels: tuple[int, ...],
        column_kernels: tuple[int, ...],
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        del image_size  # global pooling makes the encoder size-agnostic
        self.columns = [
            Sequential(
                Conv2d(in_channels, channels, kernel, padding=kernel // 2, rng=rng, name=f"mcnn.col{idx}.conv1"),
                ReLU(),
                MaxPool2d(2),
                Conv2d(channels, channels, 3, padding=1, rng=rng, name=f"mcnn.col{idx}.conv2"),
                ReLU(),
                GlobalAveragePool2d(),
            )
            for idx, (channels, kernel) in enumerate(zip(column_channels, column_kernels))
        ]
        self.column_channels = list(column_channels)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        outputs = [column.forward(inputs) for column in self.columns]
        return np.concatenate(outputs, axis=1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_input = None
        offset = 0
        for column, channels in zip(self.columns, self.column_channels):
            grad_slice = grad_output[:, offset : offset + channels]
            grad = column.backward(grad_slice)
            grad_input = grad if grad_input is None else grad_input + grad
            offset += channels
        return grad_input


def build_domain_discriminator(feature_dim: int, hidden_dim: int = 32, seed: int = 1) -> Sequential:
    """Binary domain classifier used by the adversarial UDA baseline.

    Outputs a probability (sigmoid) that a feature vector comes from the
    source domain.
    """
    rng = np.random.default_rng(seed)
    return Sequential(
        Linear(feature_dim, hidden_dim, rng=rng, name="disc.fc0"),
        ReLU(),
        Linear(hidden_dim, 1, rng=rng, name="disc.fc1"),
        Sigmoid(),
    )


def flatten_encoder(input_dim: int) -> Sequential:
    """Trivial encoder that flattens inputs (useful in tests)."""
    del input_dim
    return Sequential(Flatten())
