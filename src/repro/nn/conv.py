"""Convolution, pooling and reshaping layers.

The convolutions are implemented with im2col-style matrix multiplication so
that the whole substrate stays within numpy.  Shapes follow the channels-first
convention used by most deep-learning frameworks:

* 1-D data: ``(batch, channels, length)``
* 2-D data: ``(batch, channels, height, width)``
"""

from __future__ import annotations

import numpy as np

from . import initializers
from .module import Module
from .parameter import Parameter

__all__ = ["Conv1d", "Conv2d", "MaxPool2d", "GlobalAveragePool2d", "Flatten", "GlobalAveragePool1d"]


class Conv1d(Module):
    """1-D convolution with optional dilation (used by the TCN blocks).

    Uses "same" padding when ``padding`` is ``None`` so that stacked layers
    preserve the sequence length, which keeps the temporal-convolution network
    simple to assemble.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        dilation: int = 1,
        padding: int | None = None,
        rng: np.random.Generator | None = None,
        name: str = "conv1d",
    ) -> None:
        super().__init__()
        if kernel_size <= 0 or dilation <= 0:
            raise ValueError("kernel_size and dilation must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.dilation = dilation
        self.padding = padding if padding is not None else dilation * (kernel_size - 1) // 2
        weight = initializers.he_normal((in_channels, out_channels, kernel_size), rng)
        self.weight = Parameter(weight, name=f"{name}.weight")
        self.bias = Parameter(np.zeros(out_channels), name=f"{name}.bias")
        self._cache: tuple[np.ndarray, int] | None = None

    def _output_length(self, length: int) -> int:
        effective = self.dilation * (self.kernel_size - 1) + 1
        return length + 2 * self.padding - effective + 1

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 3 or inputs.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv1d expects (batch, {self.in_channels}, length) inputs, got {inputs.shape}"
            )
        batch, _, length = inputs.shape
        out_length = self._output_length(length)
        if out_length <= 0:
            raise ValueError("input sequence too short for this kernel/dilation")
        padded = np.pad(inputs, ((0, 0), (0, 0), (self.padding, self.padding)))
        # columns: (batch, out_length, in_channels, kernel_size)
        columns = np.empty((batch, out_length, self.in_channels, self.kernel_size))
        for k in range(self.kernel_size):
            offset = k * self.dilation
            columns[:, :, :, k] = padded[:, :, offset : offset + out_length].transpose(0, 2, 1)
        self._cache = (columns, length)
        flat = columns.reshape(batch * out_length, self.in_channels * self.kernel_size)
        kernel = self.weight.data.transpose(0, 2, 1).reshape(
            self.in_channels * self.kernel_size, self.out_channels
        )
        output = flat @ kernel + self.bias.data
        return output.reshape(batch, out_length, self.out_channels).transpose(0, 2, 1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        columns, length = self._cache
        batch, out_length = columns.shape[0], columns.shape[1]
        grad_flat = grad_output.transpose(0, 2, 1).reshape(batch * out_length, self.out_channels)
        flat_columns = columns.reshape(batch * out_length, self.in_channels * self.kernel_size)
        grad_kernel = flat_columns.T @ grad_flat
        grad_weight = grad_kernel.reshape(self.in_channels, self.kernel_size, self.out_channels).transpose(0, 2, 1)
        self.weight.accumulate_grad(grad_weight)
        self.bias.accumulate_grad(grad_flat.sum(axis=0))

        kernel = self.weight.data.transpose(0, 2, 1).reshape(
            self.in_channels * self.kernel_size, self.out_channels
        )
        grad_columns = (grad_flat @ kernel.T).reshape(
            batch, out_length, self.in_channels, self.kernel_size
        )
        grad_padded = np.zeros((batch, self.in_channels, length + 2 * self.padding))
        for k in range(self.kernel_size):
            offset = k * self.dilation
            grad_padded[:, :, offset : offset + out_length] += grad_columns[:, :, :, k].transpose(0, 2, 1)
        if self.padding:
            return grad_padded[:, :, self.padding : self.padding + length]
        return grad_padded


class Conv2d(Module):
    """2-D convolution with stride support, implemented via im2col."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng: np.random.Generator | None = None,
        name: str = "conv2d",
    ) -> None:
        super().__init__()
        if kernel_size <= 0 or stride <= 0:
            raise ValueError("kernel_size and stride must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        weight = initializers.he_normal((in_channels, out_channels, kernel_size, kernel_size), rng)
        self.weight = Parameter(weight, name=f"{name}.weight")
        self.bias = Parameter(np.zeros(out_channels), name=f"{name}.bias")
        self._cache: tuple[np.ndarray, tuple[int, int]] | None = None

    def _output_size(self, size: int) -> int:
        return (size + 2 * self.padding - self.kernel_size) // self.stride + 1

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 4 or inputs.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d expects (batch, {self.in_channels}, H, W) inputs, got {inputs.shape}"
            )
        batch, _, height, width = inputs.shape
        out_h, out_w = self._output_size(height), self._output_size(width)
        if out_h <= 0 or out_w <= 0:
            raise ValueError("input spatial size too small for this kernel")
        pad = self.padding
        padded = np.pad(inputs, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        k = self.kernel_size
        columns = np.empty((batch, out_h, out_w, self.in_channels, k, k))
        for i in range(k):
            for j in range(k):
                patch = padded[
                    :,
                    :,
                    i : i + out_h * self.stride : self.stride,
                    j : j + out_w * self.stride : self.stride,
                ]
                columns[:, :, :, :, i, j] = patch.transpose(0, 2, 3, 1)
        self._cache = (columns, (height, width))
        flat = columns.reshape(batch * out_h * out_w, self.in_channels * k * k)
        kernel = self.weight.data.transpose(0, 2, 3, 1).reshape(self.in_channels * k * k, self.out_channels)
        output = flat @ kernel + self.bias.data
        return output.reshape(batch, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        columns, (height, width) = self._cache
        batch, out_h, out_w = columns.shape[0], columns.shape[1], columns.shape[2]
        k = self.kernel_size
        grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(batch * out_h * out_w, self.out_channels)
        flat_columns = columns.reshape(batch * out_h * out_w, self.in_channels * k * k)
        grad_kernel = flat_columns.T @ grad_flat
        grad_weight = grad_kernel.reshape(self.in_channels, k, k, self.out_channels).transpose(0, 3, 1, 2)
        self.weight.accumulate_grad(grad_weight)
        self.bias.accumulate_grad(grad_flat.sum(axis=0))

        kernel = self.weight.data.transpose(0, 2, 3, 1).reshape(self.in_channels * k * k, self.out_channels)
        grad_columns = (grad_flat @ kernel.T).reshape(batch, out_h, out_w, self.in_channels, k, k)
        pad = self.padding
        grad_padded = np.zeros((batch, self.in_channels, height + 2 * pad, width + 2 * pad))
        for i in range(k):
            for j in range(k):
                grad_padded[
                    :,
                    :,
                    i : i + out_h * self.stride : self.stride,
                    j : j + out_w * self.stride : self.stride,
                ] += grad_columns[:, :, :, :, i, j].transpose(0, 3, 1, 2)
        if pad:
            return grad_padded[:, :, pad : pad + height, pad : pad + width]
        return grad_padded


class MaxPool2d(Module):
    """Non-overlapping 2-D max pooling."""

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = pool_size
        self._cache: tuple[np.ndarray, tuple[int, ...]] | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        batch, channels, height, width = inputs.shape
        p = self.pool_size
        out_h, out_w = height // p, width // p
        trimmed = inputs[:, :, : out_h * p, : out_w * p]
        windows = trimmed.reshape(batch, channels, out_h, p, out_w, p)
        output = windows.max(axis=(3, 5))
        mask = windows == output[:, :, :, None, :, None]
        # Break ties so the gradient is routed to exactly one element per window.
        counts = mask.sum(axis=(3, 5), keepdims=True)
        self._cache = (mask / counts, inputs.shape)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        mask, input_shape = self._cache
        batch, channels, height, width = input_shape
        p = self.pool_size
        out_h, out_w = height // p, width // p
        grad_windows = mask * grad_output[:, :, :, None, :, None]
        grad_trimmed = grad_windows.reshape(batch, channels, out_h * p, out_w * p)
        grad_input = np.zeros(input_shape)
        grad_input[:, :, : out_h * p, : out_w * p] = grad_trimmed
        return grad_input


class GlobalAveragePool2d(Module):
    """Average over the two spatial dimensions: ``(B, C, H, W) -> (B, C)``."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._shape = inputs.shape
        return inputs.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        batch, channels, height, width = self._shape
        scale = 1.0 / (height * width)
        return np.broadcast_to(
            grad_output[:, :, None, None] * scale, self._shape
        ).copy()


class GlobalAveragePool1d(Module):
    """Average over the temporal dimension: ``(B, C, L) -> (B, C)``."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._shape = inputs.shape
        return inputs.mean(axis=2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        batch, channels, length = self._shape
        return np.broadcast_to(
            grad_output[:, :, None] / length, self._shape
        ).copy()


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._shape)
