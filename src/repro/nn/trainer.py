"""Supervised training loop shared by source-model training and adaptation."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .data import ArrayDataset, DataLoader
from .losses import Loss, MSELoss
from .module import Module
from .optim import Adam, Optimizer, clip_gradients

__all__ = ["TrainingHistory", "Trainer"]


@dataclass
class TrainingHistory:
    """Per-epoch record of a training run."""

    losses: list[float] = field(default_factory=list)
    val_losses: list[float] = field(default_factory=list)
    stopped_epoch: int | None = None

    @property
    def final_loss(self) -> float:
        """Training loss of the last completed epoch."""
        if not self.losses:
            raise ValueError("no epochs recorded")
        return self.losses[-1]

    def loss_drop_rate(self, window: int = 5) -> float:
        """Average per-epoch loss decrease over the last ``window`` epochs.

        This is the quantity the paper's early-stop heuristic watches
        (Fig. 13): adaptation stops when the drop rate collapses relative to
        the initial epochs.
        """
        if len(self.losses) < 2:
            return 0.0
        window = min(window, len(self.losses) - 1)
        recent = self.losses[-(window + 1):]
        drops = [max(0.0, earlier - later) for earlier, later in zip(recent[:-1], recent[1:])]
        return float(np.mean(drops))


class Trainer:
    """Mini-batch gradient-descent trainer.

    Parameters
    ----------
    model:
        Any :class:`~repro.nn.module.Module` mapping inputs to predictions.
    loss:
        Loss object from :mod:`repro.nn.losses`; defaults to weighted MSE.
    optimizer:
        Optimizer; defaults to Adam over the model's parameters.
    grad_clip:
        Optional global-norm gradient clipping threshold.
    """

    def __init__(
        self,
        model: Module,
        loss: Loss | None = None,
        optimizer: Optimizer | None = None,
        lr: float = 1e-3,
        grad_clip: float | None = 5.0,
    ) -> None:
        self.model = model
        self.loss = loss if loss is not None else MSELoss()
        self.optimizer = optimizer if optimizer is not None else Adam(model.parameters(), lr=lr)
        self.grad_clip = grad_clip

    def train_epoch(self, loader: DataLoader) -> float:
        """Run one epoch and return the average (weighted) batch loss."""
        self.model.train()
        total, batches = 0.0, 0
        for inputs, targets, weights in loader:
            self.optimizer.zero_grad()
            predictions = self.model.forward(inputs)
            value, grad = self.loss(predictions, targets, weights)
            self.model.backward(grad)
            if self.grad_clip is not None:
                clip_gradients(self.optimizer.parameters, self.grad_clip)
            self.optimizer.step()
            total += value
            batches += 1
        return total / max(batches, 1)

    def evaluate(self, dataset: ArrayDataset, batch_size: int = 256) -> float:
        """Average loss over ``dataset`` in evaluation mode (no dropout)."""
        self.model.eval()
        loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
        total, batches = 0.0, 0
        for inputs, targets, weights in loader:
            predictions = self.model.forward(inputs)
            value, _ = self.loss(predictions, targets, weights)
            total += value
            batches += 1
        return total / max(batches, 1)

    def fit(
        self,
        dataset: ArrayDataset,
        epochs: int = 50,
        batch_size: int = 32,
        validation: ArrayDataset | None = None,
        rng: np.random.Generator | None = None,
        patience: int | None = None,
        min_delta: float = 1e-6,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for up to ``epochs`` epochs.

        When ``validation`` and ``patience`` are given, training stops early if
        the validation loss has not improved by ``min_delta`` for ``patience``
        consecutive epochs.
        """
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        loader = DataLoader(dataset, batch_size=batch_size, shuffle=True, rng=rng)
        history = TrainingHistory()
        best_val = np.inf
        stale = 0
        for epoch in range(epochs):
            train_loss = self.train_epoch(loader)
            history.losses.append(train_loss)
            if validation is not None:
                val_loss = self.evaluate(validation)
                history.val_losses.append(val_loss)
                if patience is not None:
                    if val_loss < best_val - min_delta:
                        best_val = val_loss
                        stale = 0
                    else:
                        stale += 1
                        if stale >= patience:
                            history.stopped_epoch = epoch
                            break
            if verbose:  # pragma: no cover - console output only
                message = f"epoch {epoch + 1}/{epochs}: loss={train_loss:.6f}"
                if validation is not None:
                    message += f" val={history.val_losses[-1]:.6f}"
                print(message)
        self.model.eval()
        return history

    def predict(self, inputs: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Deterministic predictions (dropout disabled)."""
        return predict_batched(self.model, inputs, batch_size)


def predict_batched(model, inputs: np.ndarray, batch_size: int = 256) -> np.ndarray:
    """Deterministic batched forward pass with dropout disabled."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be at least 1, got {batch_size}")
    model.eval()
    inputs = np.asarray(inputs, dtype=np.float64)
    outputs = []
    for start in range(0, len(inputs), batch_size):
        outputs.append(model.forward(inputs[start : start + batch_size]))
    return np.concatenate(outputs, axis=0)
