"""Normalization layers."""

from __future__ import annotations

import numpy as np

from .module import Module
from .parameter import Parameter

__all__ = ["BatchNorm1d", "LayerNorm"]


class BatchNorm1d(Module):
    """Batch normalization over the feature dimension of ``(batch, features)``.

    Keeps running estimates of the mean and variance for evaluation mode, as in
    the standard formulation.  The running statistics are also what the
    ``Datafree`` baseline snapshots as part of its stored source statistics.
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5, name: str = "bn") -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.gamma = Parameter(np.ones(num_features), name=f"{name}.gamma")
        self.beta = Parameter(np.zeros(num_features), name=f"{name}.beta")
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 2 or inputs.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm1d expects (batch, {self.num_features}) inputs, got {inputs.shape}"
            )
        if self.training:
            mean = inputs.mean(axis=0)
            var = inputs.var(axis=0)
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
        else:
            mean = self.running_mean
            var = self.running_var
        std = np.sqrt(var + self.eps)
        normalized = (inputs - mean) / std
        self._cache = (normalized, std, inputs - mean)
        return self.gamma.data * normalized + self.beta.data

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normalized, std, centered = self._cache
        batch = grad_output.shape[0]
        self.gamma.accumulate_grad((grad_output * normalized).sum(axis=0))
        self.beta.accumulate_grad(grad_output.sum(axis=0))
        grad_norm = grad_output * self.gamma.data
        if not self.training:
            return grad_norm / std
        grad_var = (-0.5 * (grad_norm * centered).sum(axis=0)) / std**3
        grad_mean = -grad_norm.sum(axis=0) / std + grad_var * (-2.0 * centered.mean(axis=0))
        return grad_norm / std + grad_var * 2.0 * centered / batch + grad_mean / batch


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, num_features: int, eps: float = 1e-5, name: str = "ln") -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = float(eps)
        self.gamma = Parameter(np.ones(num_features), name=f"{name}.gamma")
        self.beta = Parameter(np.zeros(num_features), name=f"{name}.beta")
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        mean = inputs.mean(axis=-1, keepdims=True)
        var = inputs.var(axis=-1, keepdims=True)
        std = np.sqrt(var + self.eps)
        normalized = (inputs - mean) / std
        self._cache = (normalized, std)
        return self.gamma.data * normalized + self.beta.data

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normalized, std = self._cache
        axes = tuple(range(grad_output.ndim - 1))
        self.gamma.accumulate_grad((grad_output * normalized).sum(axis=axes))
        self.beta.accumulate_grad(grad_output.sum(axis=axes))
        grad_norm = grad_output * self.gamma.data
        return (
            grad_norm
            - grad_norm.mean(axis=-1, keepdims=True)
            - normalized * (grad_norm * normalized).mean(axis=-1, keepdims=True)
        ) / std
