"""Gradient-descent optimizers."""

from __future__ import annotations

import numpy as np

from .parameter import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_gradients"]


class Optimizer:
    """Base class holding the parameter list and the learning rate."""

    def __init__(self, parameters: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = list(parameters)
        self.lr = float(lr)

    def step(self) -> None:
        """Apply one update using the currently accumulated gradients."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for param in self.parameters:
            param.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if not param.trainable:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with optional decoupled weight decay."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if not param.trainable:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * param.data
            param.data -= self.lr * update


def clip_gradients(parameters: list[Parameter], max_norm: float) -> float:
    """Clip the global gradient norm to ``max_norm``; return the original norm."""
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    for param in parameters:
        total += float((param.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in parameters:
            param.grad *= scale
    return norm
