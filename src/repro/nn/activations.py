"""Element-wise activation layers."""

from __future__ import annotations

import numpy as np

from .module import Module

__all__ = ["ReLU", "LeakyReLU", "Tanh", "Sigmoid", "Identity", "Softplus"]


class ReLU(Module):
    """Rectified linear unit: ``max(x, 0)``."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._mask = inputs > 0
        return np.where(self._mask, inputs, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class LeakyReLU(Module):
    """Leaky rectified linear unit with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = float(negative_slope)
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._mask = inputs > 0
        return np.where(self._mask, inputs, self.negative_slope * inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_output, self.negative_slope * grad_output)


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._output = np.tanh(inputs)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._output**2)


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._output = 1.0 / (1.0 + np.exp(-np.clip(inputs, -60.0, 60.0)))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._output * (1.0 - self._output)


class Softplus(Module):
    """Softplus activation ``log(1 + exp(x))`` (smooth, positive outputs)."""

    def __init__(self) -> None:
        super().__init__()
        self._inputs: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        self._inputs = inputs
        return np.logaddexp(0.0, inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise RuntimeError("backward called before forward")
        sigmoid = 1.0 / (1.0 + np.exp(-np.clip(self._inputs, -60.0, 60.0)))
        return grad_output * sigmoid


class Identity(Module):
    """Pass-through layer, useful as a placeholder."""

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return inputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output
