"""Base class for all layers and models in the numpy substrate.

The substrate uses explicit layer-wise backpropagation: every module caches
whatever it needs during ``forward`` and implements ``backward`` that maps the
gradient of the loss with respect to its output into the gradient with respect
to its input, accumulating parameter gradients along the way.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .parameter import Parameter

__all__ = ["Module"]


class Module:
    """Base class for layers, containers and models.

    Subclasses implement :meth:`forward` and :meth:`backward`.  The ``training``
    flag controls behaviour of stochastic layers (dropout, batch-norm); it is
    toggled through :meth:`train` and :meth:`eval`.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    # Interface
    # ------------------------------------------------------------------
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Compute the module output for ``inputs``."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_output`` and return the gradient w.r.t. inputs."""
        raise NotImplementedError

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.forward(inputs)

    # ------------------------------------------------------------------
    # Parameter handling
    # ------------------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        """Return all parameters of this module and its sub-modules."""
        params: list[Parameter] = []
        for value in self.__dict__.values():
            params.extend(_collect_parameters(value))
        return params

    def named_parameters(self) -> Iterator[tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs, using parameter names."""
        for param in self.parameters():
            yield param.name, param

    def zero_grad(self) -> None:
        """Reset all parameter gradients to zero."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar trainable values in the module."""
        return sum(param.size for param in self.parameters())

    # ------------------------------------------------------------------
    # Mode handling
    # ------------------------------------------------------------------
    def modules(self) -> list["Module"]:
        """Return this module and every sub-module (depth first)."""
        found: list[Module] = [self]
        for value in self.__dict__.values():
            found.extend(_collect_modules(value))
        return found

    def train(self) -> "Module":
        """Put the module (and sub-modules) in training mode."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Put the module (and sub-modules) in evaluation mode."""
        for module in self.modules():
            module.training = False
        return self

    # ------------------------------------------------------------------
    # State handling
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a flat mapping of parameter names to value copies.

        Parameter names are made unique by position when duplicated.
        """
        state: dict[str, np.ndarray] = {}
        for index, param in enumerate(self.parameters()):
            key = param.name or f"param_{index}"
            if key in state:
                key = f"{key}__{index}"
            state[key] = param.data.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values from :meth:`state_dict` output (by order)."""
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} entries but the module has "
                f"{len(params)} parameters"
            )
        for param, value in zip(params, state.values()):
            value = np.asarray(value, dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for parameter '{param.name}': "
                    f"{value.shape} vs {param.data.shape}"
                )
            param.data[...] = value


def _collect_parameters(value: object) -> list[Parameter]:
    if isinstance(value, Parameter):
        return [value]
    if isinstance(value, Module):
        return value.parameters()
    if isinstance(value, (list, tuple)):
        params: list[Parameter] = []
        for item in value:
            params.extend(_collect_parameters(item))
        return params
    return []


def _collect_modules(value: object) -> list[Module]:
    if isinstance(value, Module):
        return value.modules()
    if isinstance(value, (list, tuple)):
        modules: list[Module] = []
        for item in value:
            modules.extend(_collect_modules(item))
        return modules
    return []
