"""Saving and loading model parameters as ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from .module import Module

__all__ = ["save_model", "load_model", "copy_parameters"]


def save_model(model: Module, path: str | os.PathLike) -> None:
    """Serialize model parameters to ``path`` (numpy ``.npz``).

    Only parameter values are stored; the architecture must be reconstructed by
    the caller before :func:`load_model`.
    """
    arrays: dict[str, np.ndarray] = {}
    for index, param in enumerate(model.parameters()):
        arrays[f"{index:04d}::{param.name or 'param'}"] = param.data
    np.savez(path, **arrays)


def load_model(model: Module, path: str | os.PathLike) -> Module:
    """Load parameters saved by :func:`save_model` into ``model`` (in order)."""
    archive = np.load(path)
    keys = sorted(archive.files)
    params = model.parameters()
    if len(keys) != len(params):
        raise ValueError(
            f"checkpoint has {len(keys)} arrays but the model has {len(params)} parameters"
        )
    for key, param in zip(keys, params):
        value = archive[key]
        if value.shape != param.data.shape:
            raise ValueError(
                f"shape mismatch for {key}: checkpoint {value.shape} vs model {param.data.shape}"
            )
        param.data[...] = value
    return model


def copy_parameters(source: Module, destination: Module) -> Module:
    """Copy parameter values from ``source`` into ``destination`` (by order)."""
    src_params = source.parameters()
    dst_params = destination.parameters()
    if len(src_params) != len(dst_params):
        raise ValueError(
            f"source has {len(src_params)} parameters but destination has {len(dst_params)}"
        )
    for src, dst in zip(src_params, dst_params):
        if src.data.shape != dst.data.shape:
            raise ValueError(
                f"parameter shape mismatch: {src.data.shape} vs {dst.data.shape}"
            )
        dst.data[...] = src.data
    return destination
