"""Saving and loading model parameters, plus cross-process identity helpers.

``save_model``/``load_model`` persist parameters as ``.npz`` archives.
:func:`parameter_bytes` and :func:`model_digest` serve the process-backed
worker pools (:mod:`repro.runtime.workers`): weights cross the pool boundary
by pickle, and the digest is the oracle the determinism suites use to assert
that a model that went through a worker process carries *bit-identical*
parameters to one adapted in-process — float64 equality down to the byte,
not ``allclose``.
"""

from __future__ import annotations

import hashlib
import os

import numpy as np

from .module import Module

__all__ = [
    "save_model",
    "load_model",
    "copy_parameters",
    "parameter_bytes",
    "model_digest",
]


def save_model(model: Module, path: str | os.PathLike) -> None:
    """Serialize model parameters to ``path`` (numpy ``.npz``).

    Only parameter values are stored; the architecture must be reconstructed by
    the caller before :func:`load_model`.
    """
    arrays: dict[str, np.ndarray] = {}
    for index, param in enumerate(model.parameters()):
        arrays[f"{index:04d}::{param.name or 'param'}"] = param.data
    np.savez(path, **arrays)


def load_model(model: Module, path: str | os.PathLike) -> Module:
    """Load parameters saved by :func:`save_model` into ``model`` (in order)."""
    archive = np.load(path)
    keys = sorted(archive.files)
    params = model.parameters()
    if len(keys) != len(params):
        raise ValueError(
            f"checkpoint has {len(keys)} arrays but the model has {len(params)} parameters"
        )
    for key, param in zip(keys, params):
        value = archive[key]
        if value.shape != param.data.shape:
            raise ValueError(
                f"shape mismatch for {key}: checkpoint {value.shape} vs model {param.data.shape}"
            )
        param.data[...] = value
    return model


def parameter_bytes(model: Module) -> bytes:
    """The exact bytes of every parameter, in parameter order.

    Each array contributes its shape (so ``(2, 3)`` and ``(3, 2)`` of equal
    bytes can't collide) followed by its C-order raw data.  Two models map to
    the same bytes iff their parameters are bit-identical — the equality the
    cross-process determinism suite pins.
    """
    chunks: list[bytes] = []
    for param in model.parameters():
        data = np.ascontiguousarray(param.data)
        chunks.append(repr((data.shape, data.dtype.str)).encode("utf-8"))
        chunks.append(data.tobytes())
    return b"".join(chunks)


def model_digest(model: Module) -> str:
    """SHA-256 hex digest of :func:`parameter_bytes` — a compact identity.

    Cheap to compare and to carry across a process boundary; used to assert
    that serial, thread-pooled, and process-pooled adaptations of the same
    target produce the very same model.
    """
    return hashlib.sha256(parameter_bytes(model)).hexdigest()


def copy_parameters(source: Module, destination: Module) -> Module:
    """Copy parameter values from ``source`` into ``destination`` (by order)."""
    src_params = source.parameters()
    dst_params = destination.parameters()
    if len(src_params) != len(dst_params):
        raise ValueError(
            f"source has {len(src_params)} parameters but destination has {len(dst_params)}"
        )
    for src, dst in zip(src_params, dst_params):
        if src.data.shape != dst.data.shape:
            raise ValueError(
                f"parameter shape mismatch: {src.data.shape} vs {dst.data.shape}"
            )
        dst.data[...] = src.data
    return destination
