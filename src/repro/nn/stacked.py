"""Replica-stacked layers: K same-architecture models as one batched tree.

The serving side already established the house trick: give every tensor a
leading replica axis and let one ``(K, B, D) @ (K, D, H)`` batched gemm do
the work of K per-model 2-D gemms (``serve/batching.py`` for prediction,
``uncertainty/mc_dropout.py`` for stochastic forwards).  This module brings
the same trick to *training*: :func:`stack_modules` folds K structurally
identical model clones into a single stacked module tree whose parameters
carry a leading ``(K, ...)`` axis, with forward **and backward** passes that
are bit-identical, per replica, to running the K originals one at a time.

Why bit-identical rather than merely close: ``np.matmul`` on a 3-D operand
dispatches one independent 2-D BLAS gemm per leading-axis slice, so slice
``k`` of ``x @ W`` is computed by the very same kernel call as the serial
``x[k] @ W[k]`` — same shape, same blocking, same bits.  Every other stacked
op below is either elementwise (trivially per-replica), a per-replica
reduction with the same length and stride pattern as its serial counterpart
(same pairwise summation tree), or a gather (no arithmetic at all).  The one
thing deliberately *not* offered is batch-axis padding: zero-padding a
ragged batch changes the gemm shape a row is computed in, which is exactly
the ~1 ulp shape drift ``serve/batching.py`` documents.  Training therefore
only stacks replicas whose datasets have equal length — the fixed shape
lives on the replica axis — and callers group targets accordingly.

``unstack_modules`` copies the trained parameter slices back into the
original clones, so the rest of the system (caches, serialization, serving)
never sees a stacked model.
"""

from __future__ import annotations

import numpy as np

from .activations import Identity, LeakyReLU, ReLU, Sigmoid, Softplus, Tanh
from .container import Residual, Sequential
from .dropout import Dropout
from .gradient_reversal import GradientReversal
from .linear import Linear
from .losses import Loss
from .models import RegressionModel
from .module import Module
from .normalization import LayerNorm
from .optim import SGD, Adam
from .parameter import Parameter

__all__ = [
    "StackingError",
    "assert_stackable",
    "stack_modules",
    "unstack_modules",
    "StackedLinear",
    "StackedDropout",
    "StackedLayerNorm",
    "StackedRegressionModel",
    "StackedSGD",
    "StackedAdam",
    "stacked_clip_gradients",
    "PerReplicaLoss",
]


class StackingError(TypeError):
    """A module tree contains a layer with no stacked-execution equivalent."""


#: Stateless elementwise layers: a fresh instance of the same class computes
#: identical bits on ``(K, B, ...)`` inputs because every output element
#: depends only on its own input element.
_ELEMENTWISE_TYPES = (ReLU, Tanh, Sigmoid, Softplus, Identity)


def _require_uniform(values, what: str):
    first = values[0]
    for value in values[1:]:
        if value != first:
            raise StackingError(
                f"replicas disagree on {what}: {first!r} vs {value!r}"
            )
    return first


class StackedLinear(Module):
    """K :class:`~repro.nn.Linear` layers as one batched affine map.

    Weights are ``(K, in, out)`` and biases ``(K, out)``; forward/backward
    use 3-D ``np.matmul``, which runs one 2-D gemm per replica slice — the
    same kernel call, hence the same bits, as the serial layer.
    """

    def __init__(self, layers: list[Linear]) -> None:
        super().__init__()
        self.n_replicas = len(layers)
        first = layers[0]
        self.in_features = _require_uniform([l.in_features for l in layers], "in_features")
        self.out_features = _require_uniform([l.out_features for l in layers], "out_features")
        _require_uniform([l.bias is None for l in layers], "bias presence")
        self.weight = Parameter(
            np.stack([l.weight.data for l in layers]), name=f"stacked.{first.weight.name}"
        )
        if first.bias is not None:
            self.bias = Parameter(
                np.stack([l.bias.data for l in layers]), name=f"stacked.{first.bias.name}"
            )
        else:
            self.bias = None
        self._inputs: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 3 or inputs.shape[0] != self.n_replicas:
            raise ValueError(
                f"expected ({self.n_replicas}, batch, {self.in_features}) inputs, "
                f"got {inputs.shape}"
            )
        if inputs.shape[-1] != self.in_features:
            raise ValueError(
                f"expected input with {self.in_features} features, got {inputs.shape[-1]}"
            )
        self._inputs = inputs
        output = np.matmul(inputs, self.weight.data)
        if self.bias is not None:
            # (K, 1, out) broadcast: element (k, b, o) sees the same scalar
            # add as the serial layer's (out,) broadcast.
            output = output + self.bias.data[:, None, :]
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        # Per slice: (in, B) @ (B, out) — the serial layer's transposed-view
        # gemm, replica by replica.
        self.weight.accumulate_grad(
            np.matmul(self._inputs.transpose(0, 2, 1), grad_output)
        )
        if self.bias is not None:
            # sum over the batch axis of a C-contiguous (K, B, out) array:
            # per replica the same reduction length and stride pattern as
            # the serial (B, out).sum(axis=0).
            self.bias.accumulate_grad(grad_output.sum(axis=1))
        return np.matmul(grad_output, self.weight.data.transpose(0, 2, 1))


class StackedDropout(Module):
    """K :class:`~repro.nn.Dropout` layers sharing one rate, one mask tensor.

    Each replica draws its ``(B, ...)`` mask from *its own* generator — the
    generator object of the clone it was stacked from, so active replicas
    consume exactly the draws the serial fine-tune would have consumed.
    Replicas that early-stopped keep drawing (the stack never reshapes);
    nothing observes a model's dropout generator state after adaptation
    (MC-dropout probing installs its own seeded streams via ``set_mc_rng``),
    so the extra draws are invisible.
    """

    def __init__(self, layers: list[Dropout]) -> None:
        super().__init__()
        self.n_replicas = len(layers)
        self.rate = float(_require_uniform([l.rate for l in layers], "dropout rate"))
        self.rngs = [layer.rng for layer in layers]
        self._mask: np.ndarray | None = None

    @property
    def stochastic(self) -> bool:
        return self.training and self.rate > 0.0

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if not self.stochastic:
            self._mask = None
            return inputs
        keep = 1.0 - self.rate
        mask = np.empty(inputs.shape, dtype=np.float64)
        for index, rng in enumerate(self.rngs):
            # Same draw shape, same generator, same (< keep) / keep
            # arithmetic as the serial layer's per-replica forward.
            mask[index] = (rng.random(inputs.shape[1:]) < keep) / keep
        self._mask = mask
        return inputs * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class StackedLayerNorm(Module):
    """K :class:`~repro.nn.LayerNorm` layers with ``(K, features)`` affines.

    The serial backward reduces parameter gradients over *every* leading
    axis; on stacked inputs that would sum across replicas, so this class
    reduces over the batch axis only.
    """

    def __init__(self, layers: list[LayerNorm]) -> None:
        super().__init__()
        self.n_replicas = len(layers)
        first = layers[0]
        self.num_features = _require_uniform([l.num_features for l in layers], "num_features")
        self.eps = float(_require_uniform([l.eps for l in layers], "eps"))
        self.gamma = Parameter(
            np.stack([l.gamma.data for l in layers]), name=f"stacked.{first.gamma.name}"
        )
        self.beta = Parameter(
            np.stack([l.beta.data for l in layers]), name=f"stacked.{first.beta.name}"
        )
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        mean = inputs.mean(axis=-1, keepdims=True)
        var = inputs.var(axis=-1, keepdims=True)
        std = np.sqrt(var + self.eps)
        normalized = (inputs - mean) / std
        self._cache = (normalized, std)
        return self.gamma.data[:, None, :] * normalized + self.beta.data[:, None, :]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normalized, std = self._cache
        self.gamma.accumulate_grad((grad_output * normalized).sum(axis=1))
        self.beta.accumulate_grad(grad_output.sum(axis=1))
        grad_norm = grad_output * self.gamma.data[:, None, :]
        return (
            grad_norm
            - grad_norm.mean(axis=-1, keepdims=True)
            - normalized * (grad_norm * normalized).mean(axis=-1, keepdims=True)
        ) / std


class StackedRegressionModel(Module):
    """K :class:`~repro.nn.RegressionModel` clones as one stacked tree."""

    def __init__(self, encoder: Module, head: Module, n_replicas: int) -> None:
        super().__init__()
        self.encoder = encoder
        self.head = head
        self.n_replicas = int(n_replicas)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return self.head.forward(self.encoder.forward(inputs))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.encoder.backward(self.head.backward(grad_output))

    def features(self, inputs: np.ndarray) -> np.ndarray:
        return self.encoder.forward(inputs)

    def backward_features(self, grad_features: np.ndarray) -> np.ndarray:
        return self.encoder.backward(grad_features)

    def dropout_layers(self) -> list[StackedDropout]:
        return [m for m in self.modules() if isinstance(m, StackedDropout)]


def assert_stackable(module: Module) -> None:
    """Raise :class:`StackingError` if ``module``'s tree cannot be stacked.

    Type-only walk (no allocation), so callers can validate a knob like
    ``train_batching`` at construction time instead of failing mid-fleet.
    """
    if isinstance(module, RegressionModel):
        assert_stackable(module.encoder)
        assert_stackable(module.head)
    elif isinstance(module, Sequential):
        for layer in module.layers:
            assert_stackable(layer)
    elif isinstance(module, Residual):
        assert_stackable(module.body)
    elif isinstance(
        module,
        _ELEMENTWISE_TYPES + (LeakyReLU, GradientReversal, Linear, Dropout, LayerNorm),
    ):
        pass
    else:
        raise StackingError(
            f"layer type {type(module).__name__} has no stacked training "
            f"equivalent (only MLP-style trees of Linear/activation/Dropout/"
            f"LayerNorm layers can share a training stack)"
        )


def stack_modules(modules: list[Module]) -> Module:
    """Fold K structurally identical module trees into one stacked tree.

    The inputs are typically per-target model *clones* about to be
    fine-tuned; their parameter values may differ (warm starts), only the
    architecture must match.  Dropout layers keep a reference to each
    clone's generator, so the stacked tree consumes the clones' RNG streams
    exactly as serial training would.
    """
    if not modules:
        raise ValueError("cannot stack an empty list of modules")
    first = modules[0]
    for module in modules[1:]:
        if type(module) is not type(first):
            raise StackingError(
                f"replicas disagree on layer type: "
                f"{type(first).__name__} vs {type(module).__name__}"
            )
    if isinstance(first, RegressionModel):
        return StackedRegressionModel(
            stack_modules([m.encoder for m in modules]),
            stack_modules([m.head for m in modules]),
            len(modules),
        )
    if isinstance(first, Sequential):
        _require_uniform([len(m.layers) for m in modules], "Sequential depth")
        return Sequential(
            *[
                stack_modules([m.layers[i] for m in modules])
                for i in range(len(first.layers))
            ]
        )
    if isinstance(first, Residual):
        return Residual(stack_modules([m.body for m in modules]))
    if isinstance(first, Linear):
        return StackedLinear(modules)
    if isinstance(first, Dropout):
        return StackedDropout(modules)
    if isinstance(first, LayerNorm):
        return StackedLayerNorm(modules)
    if isinstance(first, LeakyReLU):
        return LeakyReLU(_require_uniform([m.negative_slope for m in modules], "negative_slope"))
    if isinstance(first, GradientReversal):
        return GradientReversal(_require_uniform([m.scale for m in modules], "scale"))
    if isinstance(first, _ELEMENTWISE_TYPES):
        return type(first)()
    raise StackingError(
        f"layer type {type(first).__name__} has no stacked training "
        f"equivalent (only MLP-style trees of Linear/activation/Dropout/"
        f"LayerNorm layers can share a training stack)"
    )


def unstack_modules(stacked: Module, modules: list[Module]) -> None:
    """Copy trained ``(K, ...)`` parameter slices back into the K originals.

    Pure data movement (fancy slicing, no arithmetic), so the written-back
    parameters are bitwise the stacked training result.
    """
    if isinstance(stacked, StackedRegressionModel):
        unstack_modules(stacked.encoder, [m.encoder for m in modules])
        unstack_modules(stacked.head, [m.head for m in modules])
    elif isinstance(stacked, Sequential):
        for index, layer in enumerate(stacked.layers):
            unstack_modules(layer, [m.layers[index] for m in modules])
    elif isinstance(stacked, Residual):
        unstack_modules(stacked.body, [m.body for m in modules])
    elif isinstance(stacked, StackedLinear):
        for index, layer in enumerate(modules):
            layer.weight.data[...] = stacked.weight.data[index]
            layer.weight.grad[...] = stacked.weight.grad[index]
            if layer.bias is not None:
                layer.bias.data[...] = stacked.bias.data[index]
                layer.bias.grad[...] = stacked.bias.grad[index]
    elif isinstance(stacked, StackedLayerNorm):
        for index, layer in enumerate(modules):
            layer.gamma.data[...] = stacked.gamma.data[index]
            layer.gamma.grad[...] = stacked.gamma.grad[index]
            layer.beta.data[...] = stacked.beta.data[index]
            layer.beta.grad[...] = stacked.beta.grad[index]
    # Parameter-free layers (activations, dropout, reversal): nothing to copy.


# ---------------------------------------------------------------------------
# Stacked optimization
# ---------------------------------------------------------------------------


class _ReplicaMaskMixin:
    """Shared replica-mask handling for stacked optimizers.

    ``replica_mask`` is a ``(K,)`` float array of 1.0 (active) / 0.0
    (early-stopped).  Masking multiplies the per-parameter update by the
    broadcast mask: for active replicas that is a multiply by exactly 1.0
    (an IEEE-754 identity, so their update bits are unchanged), for stopped
    replicas the update becomes exactly 0.0 and ``data -= lr * 0.0`` leaves
    the frozen parameters bit-for-bit intact.  With no mask installed (the
    common case) the update path is literally the serial optimizer's code.
    """

    replica_mask: np.ndarray | None = None
    n_replicas: int = 0

    def set_replica_mask(self, mask: np.ndarray | None) -> None:
        if mask is not None:
            mask = np.asarray(mask, dtype=np.float64)
            if mask.shape != (self.n_replicas,):
                raise ValueError(
                    f"replica mask must have shape ({self.n_replicas},), got {mask.shape}"
                )
        self.replica_mask = mask

    def _masked(self, update: np.ndarray) -> np.ndarray:
        mask = self.replica_mask
        if mask is None:
            return update
        return update * mask.reshape((self.n_replicas,) + (1,) * (update.ndim - 1))


class StackedSGD(_ReplicaMaskMixin, SGD):
    """SGD over ``(K, ...)`` stacked parameters; serial update math per slice."""

    def __init__(self, parameters, n_replicas: int, lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        SGD.__init__(self, parameters, lr, momentum, weight_decay)
        self.n_replicas = int(n_replicas)
        self.replica_mask = None

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if not param.trainable:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * self._masked(update)


class StackedAdam(_ReplicaMaskMixin, Adam):
    """Adam over ``(K, ...)`` stacked parameters; serial update math per slice.

    The shared ``_step_count`` is valid because replicas in one stack step in
    lockstep: a replica either takes the same numbered step as its serial run
    would, or is masked (its moments keep evolving, but its parameters are
    frozen, so the drift is unobservable).
    """

    def __init__(self, parameters, n_replicas: int, lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        Adam.__init__(self, parameters, lr, betas, eps, weight_decay)
        self.n_replicas = int(n_replicas)
        self.replica_mask = None

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if not param.trainable:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * param.data
            param.data -= self.lr * self._masked(update)


def stacked_clip_gradients(
    parameters: list[Parameter], max_norm: float, n_replicas: int
) -> np.ndarray:
    """Per-replica global-norm clipping; returns the ``(K,)`` original norms.

    Mirrors :func:`~repro.nn.clip_gradients` slice by slice: the squared sum
    of one replica's ``(...,)`` gradient block is the same contiguous
    pairwise reduction as the serial ``(grad**2).sum()``, the accumulation
    across parameters happens in the same order, and replicas below the
    threshold are not multiplied at all (the serial fast path).
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    totals = np.zeros(n_replicas, dtype=np.float64)
    for param in parameters:
        totals += (param.grad**2).reshape(n_replicas, -1).sum(axis=1)
    norms = np.sqrt(totals)
    clipping = (norms > max_norm) & (norms > 0)
    if np.any(clipping):
        scales = np.ones(n_replicas, dtype=np.float64)
        scales[clipping] = max_norm / norms[clipping]
        for param in parameters:
            param.grad *= scales.reshape((n_replicas,) + (1,) * (param.grad.ndim - 1))
    return norms


class PerReplicaLoss:
    """Adapter running one serial :class:`~repro.nn.Loss` per replica slice.

    Loss reductions fold the whole batch into one scalar with data-dependent
    control flow (weight normalization, Huber branches), so batching them
    across replicas is where bit drift would creep in.  Model forwards and
    backwards dominate the per-batch cost; the K small loss evaluations stay
    serial and bit-exact on contiguous ``(B, ...)`` slices of the stack.
    """

    def __init__(self, loss: Loss) -> None:
        self.loss = loss

    def __call__(
        self,
        predictions: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        n_replicas = predictions.shape[0]
        values = np.empty(n_replicas, dtype=np.float64)
        grads = np.empty_like(predictions)
        for k in range(n_replicas):
            value, grad = self.loss(
                predictions[k], targets[k], None if weights is None else weights[k]
            )
            values[k] = value
            grads[k] = grad
        return values, grads
