"""Temporal convolutional network (TCN) blocks.

RoNIN, the pedestrian-dead-reckoning baseline adapted in the paper, is a
temporal-convolution regressor over IMU windows.  The blocks here provide a
compact equivalent: dilated 1-D convolutions with residual connections and
dropout, followed by a global temporal pooling and a dense regression head
(assembled in :mod:`repro.nn.models`).
"""

from __future__ import annotations

import numpy as np

from .activations import ReLU
from .container import Sequential
from .conv import Conv1d
from .dropout import Dropout
from .module import Module

__all__ = ["TemporalBlock", "TemporalConvNet"]


class TemporalBlock(Module):
    """Two dilated convolutions with ReLUs, dropout and a residual connection.

    When the channel count changes, a 1x1 convolution matches the residual
    branch to the output width.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        dilation: int = 1,
        dropout: float = 0.1,
        rng: np.random.Generator | None = None,
        name: str = "tblock",
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.body = Sequential(
            Conv1d(in_channels, out_channels, kernel_size, dilation=dilation, rng=rng, name=f"{name}.conv1"),
            ReLU(),
            Dropout(dropout, rng=rng),
            Conv1d(out_channels, out_channels, kernel_size, dilation=dilation, rng=rng, name=f"{name}.conv2"),
            ReLU(),
            Dropout(dropout, rng=rng),
        )
        self.downsample: Conv1d | None = None
        if in_channels != out_channels:
            self.downsample = Conv1d(in_channels, out_channels, kernel_size=1, rng=rng, name=f"{name}.down")

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        branch = self.body.forward(inputs)
        shortcut = self.downsample.forward(inputs) if self.downsample is not None else inputs
        return branch + shortcut

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_branch = self.body.backward(grad_output)
        if self.downsample is not None:
            grad_shortcut = self.downsample.backward(grad_output)
        else:
            grad_shortcut = grad_output
        return grad_branch + grad_shortcut


class TemporalConvNet(Module):
    """Stack of :class:`TemporalBlock` layers with doubling dilation."""

    def __init__(
        self,
        in_channels: int,
        channel_sizes: list[int],
        kernel_size: int = 3,
        dropout: float = 0.1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        blocks: list[Module] = []
        previous = in_channels
        for level, channels in enumerate(channel_sizes):
            blocks.append(
                TemporalBlock(
                    previous,
                    channels,
                    kernel_size=kernel_size,
                    dilation=2**level,
                    dropout=dropout,
                    rng=rng,
                    name=f"tcn.block{level}",
                )
            )
            previous = channels
        self.blocks = Sequential(*blocks)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return self.blocks.forward(inputs)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.blocks.backward(grad_output)
