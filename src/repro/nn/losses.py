"""Regression losses with optional per-sample weights.

Per-sample weights are essential for TASFAR: the adaptation loss (Eq. 22 in the
paper) weighs every pseudo-labelled sample by its credibility ``beta_t``.
Every loss returns ``(value, grad)`` where ``grad`` has the same shape as the
predictions and already includes the normalization constant, so the caller can
feed it straight into ``model.backward``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Loss", "MSELoss", "MAELoss", "HuberLoss", "get_loss"]


def _prepare(
    predictions: np.ndarray,
    targets: np.ndarray,
    weights: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if predictions.ndim == 1:
        predictions = predictions[:, None]
    if targets.ndim == 1:
        targets = targets[:, None]
    if predictions.shape != targets.shape:
        raise ValueError(
            f"prediction shape {predictions.shape} does not match target shape {targets.shape}"
        )
    if weights is None:
        weights = np.ones(predictions.shape[0])
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (predictions.shape[0],):
        raise ValueError(
            f"weights must have shape ({predictions.shape[0]},), got {weights.shape}"
        )
    if np.any(weights < 0):
        raise ValueError("sample weights must be non-negative")
    return predictions, targets, weights


class Loss:
    """Base class for losses returning ``(value, gradient)``."""

    def __call__(
        self,
        predictions: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> tuple[float, np.ndarray]:
        raise NotImplementedError


class MSELoss(Loss):
    """Weighted mean squared error averaged over samples and output dims."""

    def __call__(self, predictions, targets, weights=None):
        predictions, targets, weights = _prepare(predictions, targets, weights)
        diff = predictions - targets
        weight_sum = weights.sum()
        if weight_sum <= 0:
            return 0.0, np.zeros_like(predictions)
        per_sample = (diff**2).mean(axis=1)
        value = float((weights * per_sample).sum() / weight_sum)
        grad = (2.0 * diff * weights[:, None]) / (weight_sum * predictions.shape[1])
        return value, grad


class MAELoss(Loss):
    """Weighted mean absolute error averaged over samples and output dims."""

    def __call__(self, predictions, targets, weights=None):
        predictions, targets, weights = _prepare(predictions, targets, weights)
        diff = predictions - targets
        weight_sum = weights.sum()
        if weight_sum <= 0:
            return 0.0, np.zeros_like(predictions)
        per_sample = np.abs(diff).mean(axis=1)
        value = float((weights * per_sample).sum() / weight_sum)
        grad = (np.sign(diff) * weights[:, None]) / (weight_sum * predictions.shape[1])
        return value, grad


class HuberLoss(Loss):
    """Weighted Huber (smooth-L1) loss with threshold ``delta``."""

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = float(delta)

    def __call__(self, predictions, targets, weights=None):
        predictions, targets, weights = _prepare(predictions, targets, weights)
        diff = predictions - targets
        weight_sum = weights.sum()
        if weight_sum <= 0:
            return 0.0, np.zeros_like(predictions)
        abs_diff = np.abs(diff)
        quadratic = abs_diff <= self.delta
        elementwise = np.where(
            quadratic,
            0.5 * diff**2,
            self.delta * (abs_diff - 0.5 * self.delta),
        )
        per_sample = elementwise.mean(axis=1)
        value = float((weights * per_sample).sum() / weight_sum)
        grad_elem = np.where(quadratic, diff, self.delta * np.sign(diff))
        grad = (grad_elem * weights[:, None]) / (weight_sum * predictions.shape[1])
        return value, grad


_LOSSES = {
    "mse": MSELoss,
    "mae": MAELoss,
    "huber": HuberLoss,
}


def get_loss(name: str, **kwargs) -> Loss:
    """Look up a loss by name (``"mse"``, ``"mae"`` or ``"huber"``)."""
    try:
        factory = _LOSSES[name.lower()]
    except KeyError as exc:
        raise ValueError(f"unknown loss {name!r}; expected one of {sorted(_LOSSES)}") from exc
    return factory(**kwargs)
