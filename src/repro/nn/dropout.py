"""Dropout layer with Monte-Carlo sampling support.

Dropout is central to the reproduction: TASFAR estimates prediction
uncertainty by keeping dropout active at inference time (MC dropout) and
reading the spread of repeated stochastic forward passes.
"""

from __future__ import annotations

import numpy as np

from .module import Module

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout.

    During training (or when ``mc_mode`` is enabled) each unit is zeroed with
    probability ``rate`` and survivors are scaled by ``1 / (1 - rate)`` so the
    expected activation is unchanged.  In plain evaluation mode the layer is a
    no-op.

    Parameters
    ----------
    rate:
        Drop probability in ``[0, 1)``.
    rng:
        Random generator used to draw dropout masks.
    """

    def __init__(self, rate: float = 0.2, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = float(rate)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.mc_mode = False
        self._mask: np.ndarray | None = None
        self._mc_rng: np.random.Generator | None = None

    def enable_mc(self, enabled: bool = True) -> None:
        """Keep dropout stochastic even in evaluation mode (MC dropout)."""
        self.mc_mode = enabled

    def set_mc_rng(self, rng: np.random.Generator | None) -> None:
        """Draw masks from a dedicated, layer-private generator.

        Used by :class:`~repro.uncertainty.MCDropoutPredictor`: giving every
        dropout layer its own stream makes stacked-replica forwards
        reproducible — ``rng.random`` fills arrays from the stream in C
        order, so one ``(n_replicas * batch, ...)`` draw is bit-identical to
        ``n_replicas`` consecutive ``(batch, ...)`` draws.  Pass ``None`` to
        restore the default shared-stream behaviour.
        """
        self._mc_rng = rng

    @property
    def stochastic(self) -> bool:
        """Whether the layer currently samples dropout masks."""
        return (self.training or self.mc_mode) and self.rate > 0.0

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        if not self.stochastic:
            self._mask = None
            return inputs
        keep = 1.0 - self.rate
        rng = self._mc_rng if self._mc_rng is not None else self.rng
        self._mask = (rng.random(inputs.shape) < keep) / keep
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
