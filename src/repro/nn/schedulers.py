"""Learning-rate schedulers operating on an :class:`~repro.nn.optim.Optimizer`."""

from __future__ import annotations

import math

from .optim import Optimizer

__all__ = ["StepDecay", "ExponentialDecay", "CosineAnnealing"]


class _Scheduler:
    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the new learning rate."""
        self.epoch += 1
        self.optimizer.lr = self._lr_at(self.epoch)
        return self.optimizer.lr

    def _lr_at(self, epoch: int) -> float:
        raise NotImplementedError


class StepDecay(_Scheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int = 10, gamma: float = 0.5) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.step_size = step_size
        self.gamma = gamma

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class ExponentialDecay(_Scheduler):
    """Multiply the learning rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95) -> None:
        super().__init__(optimizer)
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.gamma = gamma

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma**epoch


class CosineAnnealing(_Scheduler):
    """Cosine annealing from the base learning rate down to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def _lr_at(self, epoch: int) -> float:
        progress = min(epoch, self.total_epochs) / self.total_epochs
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + math.cos(math.pi * progress))
