"""Numpy neural-network substrate used by the TASFAR reproduction.

This package is a compact, self-contained replacement for the PyTorch layer
stack the paper builds on: explicit layer-wise backpropagation, SGD/Adam
optimizers, dropout with Monte-Carlo sampling, temporal and 2-D convolutions,
and a mini-batch trainer.
"""

from .activations import Identity, LeakyReLU, ReLU, Sigmoid, Softplus, Tanh
from .container import Residual, Sequential
from .conv import (
    Conv1d,
    Conv2d,
    Flatten,
    GlobalAveragePool1d,
    GlobalAveragePool2d,
    MaxPool2d,
)
from .data import ArrayDataset, DataLoader, train_test_split
from .dropout import Dropout
from .gradient_reversal import GradientReversal
from .linear import Linear
from .losses import HuberLoss, Loss, MAELoss, MSELoss, get_loss
from .models import (
    RegressionModel,
    build_domain_discriminator,
    build_mcnn_counter,
    build_mlp,
    build_tcn_regressor,
)
from .module import Module
from .normalization import BatchNorm1d, LayerNorm
from .optim import SGD, Adam, Optimizer, clip_gradients
from .parameter import Parameter
from .schedulers import CosineAnnealing, ExponentialDecay, StepDecay
from .stacked import (
    PerReplicaLoss,
    StackedAdam,
    StackedDropout,
    StackedLayerNorm,
    StackedLinear,
    StackedRegressionModel,
    StackedSGD,
    StackingError,
    assert_stackable,
    stack_modules,
    stacked_clip_gradients,
    unstack_modules,
)
from .serialization import (
    copy_parameters,
    load_model,
    model_digest,
    parameter_bytes,
    save_model,
)
from .tcn import TemporalBlock, TemporalConvNet
from .trainer import Trainer, TrainingHistory, predict_batched

__all__ = [
    "Adam",
    "ArrayDataset",
    "BatchNorm1d",
    "Conv1d",
    "Conv2d",
    "CosineAnnealing",
    "DataLoader",
    "Dropout",
    "ExponentialDecay",
    "Flatten",
    "GlobalAveragePool1d",
    "GlobalAveragePool2d",
    "GradientReversal",
    "HuberLoss",
    "Identity",
    "LayerNorm",
    "LeakyReLU",
    "Linear",
    "Loss",
    "MAELoss",
    "MSELoss",
    "MaxPool2d",
    "Module",
    "Optimizer",
    "Parameter",
    "ReLU",
    "RegressionModel",
    "Residual",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Softplus",
    "StackedAdam",
    "StackedDropout",
    "StackedLayerNorm",
    "StackedLinear",
    "StackedRegressionModel",
    "StackedSGD",
    "StackingError",
    "PerReplicaLoss",
    "StepDecay",
    "Tanh",
    "TemporalBlock",
    "TemporalConvNet",
    "Trainer",
    "predict_batched",
    "TrainingHistory",
    "build_domain_discriminator",
    "build_mcnn_counter",
    "build_mlp",
    "build_tcn_regressor",
    "assert_stackable",
    "clip_gradients",
    "copy_parameters",
    "stack_modules",
    "stacked_clip_gradients",
    "unstack_modules",
    "get_loss",
    "load_model",
    "model_digest",
    "parameter_bytes",
    "save_model",
    "train_test_split",
    "get_loss",
]
