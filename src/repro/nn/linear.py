"""Fully-connected (dense) layer."""

from __future__ import annotations

import numpy as np

from . import initializers
from .module import Module
from .parameter import Parameter

__all__ = ["Linear"]


class Linear(Module):
    """Affine transformation ``y = x W + b``.

    Parameters
    ----------
    in_features:
        Input feature dimension.
    out_features:
        Output feature dimension.
    bias:
        Whether a bias term is learned.
    rng:
        Random generator used for weight initialization.  A fixed default seed
        keeps model construction deterministic when no generator is supplied.
    init:
        Initialization scheme: ``"he"`` (default, ReLU-friendly) or ``"xavier"``.
    name:
        Prefix for parameter names.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
        init: str = "he",
        name: str = "linear",
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        if init == "he":
            weight = initializers.he_normal((in_features, out_features), rng)
        elif init == "xavier":
            weight = initializers.xavier_normal((in_features, out_features), rng)
        else:
            raise ValueError(f"unknown init scheme {init!r}")

        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(weight, name=f"{name}.weight")
        self.bias = Parameter(initializers.zeros((out_features,)), name=f"{name}.bias") if bias else None
        self._inputs: np.ndarray | None = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim == 1:
            inputs = inputs[None, :]
        if inputs.shape[-1] != self.in_features:
            raise ValueError(
                f"expected input with {self.in_features} features, got {inputs.shape[-1]}"
            )
        self._inputs = inputs
        output = inputs @ self.weight.data
        if self.bias is not None:
            output = output + self.bias.data
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        flat_inputs = self._inputs.reshape(-1, self.in_features)
        flat_grad = grad_output.reshape(-1, self.out_features)
        self.weight.accumulate_grad(flat_inputs.T @ flat_grad)
        if self.bias is not None:
            self.bias.accumulate_grad(flat_grad.sum(axis=0))
        return grad_output @ self.weight.data.T
