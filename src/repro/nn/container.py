"""Container modules that compose layers."""

from __future__ import annotations

import numpy as np

from .module import Module

__all__ = ["Sequential", "Residual"]


class Sequential(Module):
    """Run sub-modules in order, backpropagating in reverse order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def append(self, layer: Module) -> None:
        """Add ``layer`` to the end of the stack."""
        self.layers.append(layer)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def __iter__(self):
        return iter(self.layers)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output = inputs
        for layer in self.layers:
            output = layer.forward(output)
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad


class Residual(Module):
    """Residual wrapper: ``y = x + body(x)``.

    The wrapped body must preserve the input shape.  Used by the TCN blocks.
    """

    def __init__(self, body: Module) -> None:
        super().__init__()
        self.body = body

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        output = self.body.forward(inputs)
        if output.shape != inputs.shape:
            raise ValueError(
                f"residual body changed shape {inputs.shape} -> {output.shape}"
            )
        return inputs + output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output + self.body.backward(grad_output)
