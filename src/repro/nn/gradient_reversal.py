"""Gradient-reversal layer used by the adversarial UDA baseline (ADV).

During the forward pass the layer is the identity; during the backward pass it
multiplies the gradient by ``-lambda``.  Training a domain discriminator on top
of this layer pushes the feature extractor toward domain-invariant features,
which is the mechanism of adversarial domain adaptation (Ganin & Lempitsky;
Tzeng et al., the paper's ADV baseline [35]).
"""

from __future__ import annotations

import numpy as np

from .module import Module

__all__ = ["GradientReversal"]


class GradientReversal(Module):
    """Identity forward, sign-flipped (and scaled) gradient backward."""

    def __init__(self, scale: float = 1.0) -> None:
        super().__init__()
        if scale < 0:
            raise ValueError("scale must be non-negative")
        self.scale = float(scale)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return inputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return -self.scale * grad_output
