"""Command-line interface for running the reproduction experiments.

Examples
--------
List the available experiments::

    python -m repro.cli list

Run one experiment at the small (test) scale::

    python -m repro.cli run fig14_ste_reduction_seen --scale small

Run every experiment on four worker processes, persisting results so an
interrupted run can pick up where it left off::

    python -m repro.cli run-all --scale small --jobs 4 \
        --results-dir results --resume --output results.txt

Adapt every target scenario of a task through the multi-target
:class:`~repro.runtime.AdaptationService` (four worker threads, JSON report)::

    python -m repro.cli adapt-many --task pdr --scale small --jobs 4 \
        --report adaptation_reports.json

Serve any scheme from the strategy registry — not just TASFAR — through the
same service::

    python -m repro.cli adapt-many --task housing --scheme mmd --jobs 4

Replay a suddenly drifting stream for every PDR user through the streaming
service (online density maps, drift detection, warm re-adaptation)::

    python -m repro.cli stream --task pdr --drift sudden --steps 12 \
        --events stream_events.json

Serve the whole system over a JSON-lines pipe — one request per stdin line,
one versioned envelope per stdout line (see :mod:`repro.serve`)::

    printf '%s\n' \
        '{"kind": "adapt", "target_id": "u1", "inputs": [[0.1, 0.2]]}' \
        '{"kind": "report", "target_id": "u1"}' \
      | python -m repro.cli serve --task housing --scale tiny --shards 2

Replay a seeded, fault-injected workload through the whole stack and check
the system invariants (envelope transcript on stdout — byte-identical on
every rerun — summary and invariant verdict on stderr)::

    python -m repro.cli simulate --spec examples/specs/bursty_drift.json \
        --seed 7 --fault-plan wire_chaos --verify-replay > transcript.jsonl

Render a metrics snapshot (written by any ``--metrics-out`` flag) as
Prometheus text exposition, validating it against ``repro.metrics/v1``::

    python -m repro.cli simulate --spec examples/specs/bursty_drift.json \
        --metrics-out metrics.json > /dev/null
    python -m repro.cli metrics metrics.json --format prom

``adapt-many``, ``stream`` and ``serve`` are all thin clients of the
:class:`~repro.serve.Gateway`, and ``simulate`` drives the same gateway from
a :class:`~repro.sim.WorkloadSpec`; the ``--task`` choices (the
:class:`~repro.data.TaskSpec` registry), ``--scheme`` choices (the strategy
registry) and ``--fault-plan`` choices (the fault-plan registry) are all
extensible: registering a new task, scheme, or fault plan makes it available
here without touching this module.
"""

from __future__ import annotations

import argparse
import json
import sys
from concurrent.futures import ProcessPoolExecutor

from .experiments import SCALES, list_experiments, run_experiment

__all__ = ["main", "build_parser"]


def _executor_argument() -> dict:
    """Shared ``--executor`` definition for the gateway-fronted subcommands."""
    return dict(
        choices=("thread", "process"),
        default="thread",
        help=(
            "shard worker executor: 'process' runs adaptations in worker "
            "processes on real cores (source weights shipped once per worker, "
            "results bit-identical to 'thread')"
        ),
    )


def _train_batching_argument() -> dict:
    """Shared ``--train-batching`` definition for the gateway subcommands."""
    return dict(
        type=int,
        default=1,
        metavar="K",
        help=(
            "stack up to K concurrent adaptations into one batched training "
            "pass per shard (bit-identical to serial; requires a scheme and "
            "model with a stacked training path, rejected otherwise)"
        ),
    )


def _snapshot_dir_argument() -> dict:
    """Shared ``--snapshot-dir`` definition for the gateway subcommands."""
    return dict(
        default=None,
        metavar="DIR",
        help=(
            "warm snapshot tier: spill evicted adapted models (weights, "
            "report, streaming drift state) to repro.snapshot/v1 files under "
            "this directory (per-shard subdirectories) and warm-resume them "
            "on the next touch instead of cold-adapting"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the CLI."""
    from .data.drift import DRIFT_KINDS
    from .data.tasks import task_names
    from .engine.registry import strategy_names

    adapt_tasks = task_names()
    schemes = strategy_names()

    parser = argparse.ArgumentParser(
        prog="tasfar-repro",
        description="Reproduction experiments for TASFAR (ICDE 2024)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiment ids")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id (see `list`)")
    run_parser.add_argument("--scale", default="small", choices=tuple(SCALES))
    run_parser.add_argument("--seed", type=int, default=0)

    run_all_parser = subparsers.add_parser("run-all", help="run every experiment")
    run_all_parser.add_argument("--scale", default="small", choices=tuple(SCALES))
    run_all_parser.add_argument("--seed", type=int, default=0)
    run_all_parser.add_argument("--output", default=None, help="optional path for a text report")
    run_all_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for parallel experiment execution (default: 1, serial)",
    )
    run_all_parser.add_argument(
        "--results-dir",
        default=None,
        help="persist each experiment result as JSON under this directory",
    )
    run_all_parser.add_argument(
        "--resume",
        action="store_true",
        help="skip experiments already stored in --results-dir",
    )
    run_all_parser.add_argument(
        "--only",
        nargs="+",
        default=None,
        metavar="EXPERIMENT",
        help="restrict the run to these experiment ids",
    )

    adapt_parser = subparsers.add_parser(
        "adapt-many",
        help="adapt every target scenario of a task through the AdaptationService",
    )
    adapt_parser.add_argument("--task", default="pdr", choices=adapt_tasks)
    adapt_parser.add_argument("--scale", default="small", choices=tuple(SCALES))
    adapt_parser.add_argument("--seed", type=int, default=0)
    adapt_parser.add_argument(
        "--scheme",
        default="tasfar",
        choices=schemes,
        help="adaptation scheme served by the service (strategy registry)",
    )
    adapt_parser.add_argument(
        "--jobs", type=int, default=1, help="workers per gateway shard"
    )
    adapt_parser.add_argument("--executor", **_executor_argument())
    adapt_parser.add_argument("--train-batching", **_train_batching_argument())
    adapt_parser.add_argument(
        "--shards", type=int, default=1, help="gateway service shards (rendezvous-placed targets)"
    )
    adapt_parser.add_argument(
        "--targets",
        nargs="+",
        default=None,
        metavar="SCENARIO",
        help="restrict adaptation to these scenario names (default: all)",
    )
    adapt_parser.add_argument(
        "--max-cached",
        type=int,
        default=None,
        help=(
            "LRU capacity for adapted models held in memory "
            "(default: the number of selected targets, so every target's "
            "adapted model survives until evaluation)"
        ),
    )
    adapt_parser.add_argument("--snapshot-dir", **_snapshot_dir_argument())
    adapt_parser.add_argument(
        "--report", default=None, help="optional path for a JSON file with per-target reports"
    )

    stream_parser = subparsers.add_parser(
        "stream",
        help="replay non-stationary per-target streams through the StreamingAdaptationService",
    )
    stream_parser.add_argument("--task", default="pdr", choices=adapt_tasks)
    stream_parser.add_argument("--scale", default="small", choices=tuple(SCALES))
    stream_parser.add_argument("--seed", type=int, default=0)
    stream_parser.add_argument(
        "--scheme",
        default="tasfar",
        choices=schemes,
        help="adaptation scheme re-adapted on drift (strategy registry)",
    )
    stream_parser.add_argument(
        "--drift",
        default="sudden",
        choices=DRIFT_KINDS,
        help="drift kind injected into every target's stream",
    )
    stream_parser.add_argument("--steps", type=int, default=12, help="batches per target stream")
    stream_parser.add_argument("--batch-size", type=int, default=16, help="events per batch")
    stream_parser.add_argument(
        "--min-adapt",
        type=int,
        default=32,
        help="buffered events before a target's first (cold) adaptation",
    )
    stream_parser.add_argument(
        "--budget",
        type=int,
        default=96,
        help="buffered events that force a re-adaptation even without drift",
    )
    stream_parser.add_argument(
        "--warm-epochs",
        type=int,
        default=None,
        help="fine-tuning epochs for warm re-adaptations (default: a quarter of the cold budget)",
    )
    stream_parser.add_argument(
        "--drift-threshold",
        type=float,
        default=0.10,
        help="Page-Hinkley alarm threshold on the density divergence",
    )
    stream_parser.add_argument(
        "--jobs", type=int, default=1, help="workers per gateway shard"
    )
    stream_parser.add_argument("--executor", **_executor_argument())
    stream_parser.add_argument("--train-batching", **_train_batching_argument())
    stream_parser.add_argument(
        "--shards", type=int, default=1, help="gateway service shards (rendezvous-placed targets)"
    )
    stream_parser.add_argument(
        "--targets",
        nargs="+",
        default=None,
        metavar="SCENARIO",
        help="restrict streaming to these scenario names (default: all)",
    )
    stream_parser.add_argument("--snapshot-dir", **_snapshot_dir_argument())
    stream_parser.add_argument(
        "--events",
        default=None,
        help="optional path for a JSON file with the per-user event tables",
    )
    stream_parser.add_argument(
        "--metrics-out",
        default=None,
        help="write the fleet metrics snapshot (repro.metrics/v1 JSON) to this file",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="serve adapt/predict/stream/report/metrics requests as JSON lines (stdin -> stdout)",
    )
    serve_parser.add_argument("--task", default="pdr", choices=adapt_tasks)
    serve_parser.add_argument("--scale", default="small", choices=tuple(SCALES))
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument(
        "--scheme",
        default="tasfar",
        choices=schemes,
        help="adaptation scheme served by the gateway (strategy registry)",
    )
    serve_parser.add_argument(
        "--shards", type=int, default=1, help="gateway service shards"
    )
    serve_parser.add_argument(
        "--shard-workers", type=int, default=4, help="workers per shard"
    )
    serve_parser.add_argument("--executor", **_executor_argument())
    serve_parser.add_argument("--train-batching", **_train_batching_argument())
    serve_parser.add_argument(
        "--max-cached",
        type=int,
        default=8,
        help="LRU capacity for adapted models, per shard",
    )
    serve_parser.add_argument(
        "--min-adapt",
        type=int,
        default=32,
        help="buffered stream events before a target's first (cold) adaptation",
    )
    serve_parser.add_argument(
        "--budget",
        type=int,
        default=128,
        help="buffered stream events that force a re-adaptation even without drift",
    )
    serve_parser.add_argument("--snapshot-dir", **_snapshot_dir_argument())
    serve_parser.add_argument(
        "--metrics-out",
        default=None,
        help="write the fleet metrics snapshot (repro.metrics/v1 JSON) to this file at shutdown",
    )
    serve_parser.add_argument(
        "--trace",
        default=None,
        help="record per-request spans and write them as JSON lines to this file at shutdown",
    )
    serve_parser.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help=(
            "serve over TCP instead of stdin/stdout: concurrent connections, "
            "per-connection ordering, bounded queues (port 0 picks a free port)"
        ),
    )
    serve_parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help=(
            "client mode: forward stdin JSON lines to a --listen server and "
            "print its envelopes (no local gateway)"
        ),
    )
    serve_parser.add_argument(
        "--max-pending",
        type=int,
        default=64,
        metavar="N",
        help=(
            "per-connection admission bound under --listen; past it requests "
            "are answered with typed 'overloaded' error envelopes"
        ),
    )
    serve_parser.add_argument(
        "--node",
        default=None,
        help=(
            "cluster node name: stamped as a node= label on the transport's "
            "net.* metrics (set by 'repro cluster')"
        ),
    )
    serve_parser.add_argument(
        "--workload-spec",
        default=None,
        metavar="SPEC.json",
        help=(
            "build the gateway from a WorkloadSpec JSON file instead of the "
            "--task/--scale/... flags (what 'repro simulate --connect' "
            "expects on the other end)"
        ),
    )

    cluster_parser = subparsers.add_parser(
        "cluster",
        help=(
            "supervise a multi-process cluster of TCP gateway nodes described "
            "by a repro.cluster/v1 JSON map (one 'serve --listen' process per "
            "node; SIGINT/SIGTERM drains them all)"
        ),
    )
    cluster_parser.add_argument(
        "--spec", required=True, help="path to a repro.cluster/v1 cluster map JSON file"
    )
    cluster_parser.add_argument(
        "--placement",
        nargs="+",
        default=None,
        metavar="TARGET",
        help=(
            "print the rendezvous node placement for these target ids and "
            "exit without starting any process"
        ),
    )

    simulate_parser = subparsers.add_parser(
        "simulate",
        help=(
            "replay a seeded workload spec through the real serving stack with "
            "fault injection and invariant checks (JSON spec in, canonical "
            "envelope transcript + invariant report out)"
        ),
    )
    simulate_parser.add_argument(
        "--spec", required=True, help="path to a WorkloadSpec JSON file"
    )
    simulate_parser.add_argument(
        "--seed", type=int, default=None, help="override the spec's seed"
    )
    simulate_parser.add_argument(
        "--task", default=None, choices=adapt_tasks, help="override the spec's task"
    )
    simulate_parser.add_argument(
        "--scheme", default=None, choices=schemes, help="override the spec's scheme"
    )
    simulate_parser.add_argument(
        "--fault-plan", default=None, help="override the spec's fault plan (see repro.sim)"
    )
    simulate_parser.add_argument(
        "--executor",
        default=None,
        choices=("thread", "process"),
        help="override the spec's shard executor (process = adaptations in worker processes)",
    )
    simulate_parser.add_argument(
        "--train-batching",
        type=int,
        default=None,
        metavar="K",
        help="override the spec's train_batching (stacked adaptation width per shard)",
    )
    simulate_parser.add_argument(
        "--ticks", type=int, default=None, help="override the spec's virtual tick count"
    )
    simulate_parser.add_argument(
        "--transcript",
        default=None,
        help=(
            "write the canonical envelope transcript to this file "
            "(default: stdout, one JSON line per request)"
        ),
    )
    simulate_parser.add_argument(
        "--report",
        default=None,
        help="write the JSON invariant report to this file (default: summary on stderr only)",
    )
    simulate_parser.add_argument(
        "--verify-replay",
        action="store_true",
        help=(
            "run the workload twice and assert the transcripts are "
            "byte-identical (with --connect: once over TCP and once "
            "in-process, same assertion)"
        ),
    )
    simulate_parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help=(
            "drive a freshly started 'serve --listen' server speaking this "
            "spec (serve --workload-spec) instead of an in-process gateway; "
            "every request crosses the socket"
        ),
    )
    simulate_parser.add_argument(
        "--snapshot-dir",
        default=None,
        metavar="DIR",
        help=(
            "enable the warm snapshot tier (sets snapshots=true on the spec) "
            "and spill under this directory for a plain run; under "
            "--verify-replay each leg instead uses a fresh private temporary "
            "store, so both transcripts start from an empty tier and stay "
            "byte-comparable"
        ),
    )
    simulate_parser.add_argument(
        "--metrics-out",
        default=None,
        help="write the end-of-run fleet metrics snapshot (repro.metrics/v1 JSON) to this file",
    )
    simulate_parser.add_argument(
        "--trace",
        default=None,
        help=(
            "record per-request spans (first run only under --verify-replay) "
            "and write them as JSON lines to this file"
        ),
    )

    metrics_parser = subparsers.add_parser(
        "metrics",
        help="validate a repro.metrics/v1 snapshot file and render it (json or prometheus)",
    )
    metrics_parser.add_argument(
        "snapshot",
        help=(
            "path to a snapshot JSON file — any --metrics-out output, or a "
            "simulate --report file (the snapshot is read from its 'metrics' key)"
        ),
    )
    metrics_parser.add_argument(
        "--format",
        choices=("prom", "json"),
        default="prom",
        help="output format: Prometheus text exposition (default) or canonical JSON",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in list_experiments():
            print(experiment_id)
        return 0

    if args.command == "run":
        result = run_experiment(args.experiment, scale=args.scale, seed=args.seed)
        print(result.summary())
        return 0

    if args.command == "run-all":
        return _run_all(parser, args)

    if args.command == "adapt-many":
        return _adapt_many(parser, args)

    if args.command == "stream":
        return _stream(parser, args)

    if args.command == "serve":
        return _serve(parser, args)

    if args.command == "cluster":
        return _cluster(parser, args)

    if args.command == "simulate":
        return _simulate(parser, args)

    if args.command == "metrics":
        return _metrics(parser, args)

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 1


def _run_all(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """Run (a subset of) the experiments, optionally in parallel and resumable."""
    from .runtime import ResultStore

    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    if args.resume and args.results_dir is None:
        parser.error("--resume requires --results-dir")

    known = list_experiments()
    if args.only:
        unknown = [experiment_id for experiment_id in args.only if experiment_id not in known]
        if unknown:
            parser.error(f"unknown experiment ids: {', '.join(unknown)}")
        experiment_ids = list(args.only)
    else:
        experiment_ids = known

    store = ResultStore(args.results_dir) if args.results_dir else None
    results = {}
    to_run = []
    for experiment_id in experiment_ids:
        if args.resume and store is not None and store.has(experiment_id, args.scale, args.seed):
            results[experiment_id] = store.load(experiment_id, args.scale, args.seed)
            print(f"[resumed] {experiment_id}")
        else:
            to_run.append(experiment_id)

    if args.jobs > 1 and len(to_run) > 1:
        # Experiments are deterministic in (id, scale, seed), so process
        # workers give bitwise the same results as a serial run.  Processes
        # (not threads) because experiments mutate their models in place.
        with ProcessPoolExecutor(max_workers=args.jobs) as pool:
            futures = {
                experiment_id: pool.submit(
                    run_experiment, experiment_id, scale=args.scale, seed=args.seed
                )
                for experiment_id in to_run
            }
            for experiment_id in to_run:
                results[experiment_id] = futures[experiment_id].result()
    else:
        for experiment_id in to_run:
            results[experiment_id] = run_experiment(experiment_id, scale=args.scale, seed=args.seed)

    freshly_run = set(to_run)
    sections = []
    for experiment_id in experiment_ids:
        result = results[experiment_id]
        if store is not None and experiment_id in freshly_run:
            store.save(result, args.scale, args.seed)
        sections.append(result.summary())
        print(result.summary())
        print()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(sections) + "\n")
    return 0


def _select_scenarios(parser: argparse.ArgumentParser, args: argparse.Namespace):
    """Build the task bundle and resolve the ``--targets`` scenario selection.

    Shared by ``adapt-many`` and ``stream``; returns ``(bundle, selected)``
    with ``selected`` keyed by scenario name in task order (or ``--targets``
    order when given).
    """
    from .experiments import get_bundle

    bundle = get_bundle(args.task, args.scale, args.seed)
    scenarios = {scenario.name: scenario for scenario in bundle.task.scenarios}
    if args.targets:
        unknown = [name for name in args.targets if name not in scenarios]
        if unknown:
            parser.error(f"unknown scenarios: {', '.join(unknown)}")
        return bundle, {name: scenarios[name] for name in args.targets}
    return bundle, scenarios


def _build_strategy(args: argparse.Namespace, bundle, max_source_samples: int = 400):
    """Create and prepare the ``--scheme`` strategy against the task bundle."""
    from .core import TasfarConfig
    from .engine import create_strategy

    strategy = create_strategy(
        args.scheme,
        config=TasfarConfig(seed=args.seed),
        epochs=bundle.scale.baseline_epochs,
        seed=args.seed,
    )
    return strategy.prepare(
        bundle.source_model,
        bundle.resources(max_source_samples=max_source_samples, seed=args.seed),
    )


def _build_gateway(args: argparse.Namespace, bundle, max_cached: int, **service_options):
    """Construct the serving gateway every runtime subcommand fronts.

    Built from the already-selected bundle (not :meth:`Gateway.from_task`)
    so ``--targets`` filtering and the shared bundle cache are respected.
    """
    from .core import TasfarConfig
    from .serve import Gateway

    return Gateway(
        bundle.source_model,
        bundle.calibration,
        config=TasfarConfig(seed=args.seed),
        strategy=_build_strategy(args, bundle),
        n_shards=args.shards,
        shard_workers=args.jobs,
        executor=getattr(args, "executor", "thread"),
        train_batching=getattr(args, "train_batching", 1),
        max_cached_models=max_cached,
        base_seed=args.seed,
        service_options=service_options or None,
        snapshot_dir=getattr(args, "snapshot_dir", None),
    )


def _adapt_many(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """Adapt the target scenarios of one task through the serving gateway."""
    from .metrics import format_table, mse
    from .serve import AdaptRequest, PredictRequest

    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    if args.shards < 1:
        parser.error("--shards must be at least 1")

    bundle, selected = _select_scenarios(parser, args)

    # The per-shard cache must cover the whole fleet by default: an evicted
    # target would silently be evaluated with the unadapted source model.
    max_cached = len(selected) if args.max_cached is None else max(args.max_cached, 1)
    try:
        gateway = _build_gateway(args, bundle, max_cached)
    except ValueError as exc:
        # An incompatible --train-batching (unstackable scheme or model) is a
        # usage error, not a crash: surface the gateway's message verbatim.
        parser.error(str(exc))
    adapt_envelopes = gateway.submit_many(
        [AdaptRequest(name, scenario.adaptation.inputs) for name, scenario in selected.items()]
    )
    failed = [envelope for envelope in adapt_envelopes if not envelope.ok]
    if failed:
        first = failed[0]
        parser.error(
            f"adaptation failed for {first.target_id!r}: "
            f"{first.error['type']}: {first.error['message']}"
        )
    reports = {name: gateway.report_for(name) for name in selected}

    # Post-adaptation predictions go through submit_many too, so a fleet
    # evaluation exercises the same micro-batched path a serving burst does.
    cached = [name for name in selected if gateway.model_for(name) is not None]
    predictions = {
        envelope.target_id: envelope.payload["prediction"]
        for envelope in gateway.submit_many(
            [PredictRequest(name, selected[name].adaptation.inputs) for name in cached]
        )
    }

    # The gateway never sees labels; evaluation happens here, caller-side.
    rows = []
    for name, scenario in selected.items():
        report = reports[name]
        # Record the run-level seed next to the per-target derived seed, so a
        # stored report pins the exact CLI invocation that produced it.
        report.extra["run_seed"] = int(args.seed)
        before = mse(bundle.predict(scenario.adaptation.inputs), scenario.adaptation.targets)
        report.extra["mse_before"] = float(before)
        if name not in predictions:
            # Evicted by a caller-chosen small --max-cached: don't pass off
            # source-model numbers as post-adaptation performance.
            report.extra["mse_after"] = None
            after_cell = "evicted"
        else:
            after = mse(predictions[name], scenario.adaptation.targets)
            report.extra["mse_after"] = float(after)
            after_cell = round(after, 4)
        rows.append(
            [
                name,
                report.n_samples,
                report.n_confident,
                report.n_uncertain,
                len(report.losses),
                round(before, 4),
                after_cell,
                round(report.duration_seconds, 3),
            ]
        )
    print(f"[adapt-many] task={args.task} scheme={args.scheme} seed={args.seed}")
    print(
        format_table(
            ["target", "n", "confident", "uncertain", "epochs", "mse_before", "mse_after", "secs"],
            rows,
        )
    )
    if args.report:
        payload = {name: report.to_dict() for name, report in reports.items()}
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {len(payload)} reports to {args.report}")
    gateway.close()
    return 0


def _stream(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """Replay drifting per-target streams through the serving gateway."""
    from .data import make_drift_streams
    from .metrics import format_table, mse
    from .serve import StreamRequest

    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    if args.shards < 1:
        parser.error("--shards must be at least 1")
    if args.steps < 1:
        parser.error("--steps must be at least 1")
    if args.batch_size < 1:
        parser.error("--batch-size must be at least 1")
    if args.min_adapt < 1:
        parser.error("--min-adapt must be at least 1")
    if args.budget < 1:
        parser.error("--budget must be at least 1")
    if args.warm_epochs is not None and args.warm_epochs < 1:
        parser.error("--warm-epochs must be at least 1")
    if args.drift_threshold <= 0:
        parser.error("--drift-threshold must be positive")

    bundle, selected = _select_scenarios(parser, args)

    streams = make_drift_streams(
        bundle.task,
        kind=args.drift,
        n_steps=args.steps,
        batch_size=args.batch_size,
        seed=args.seed,
        only=list(selected),
    )
    try:
        gateway = _build_gateway(
            args,
            bundle,
            len(selected),
            min_adapt_events=args.min_adapt,
            readapt_budget=args.budget,
            warm_epochs=args.warm_epochs,
            drift_threshold=args.drift_threshold,
        )
    except ValueError as exc:
        parser.error(str(exc))

    # Interleave the streams step by step, the way a real ingest frontend
    # would see a fleet: every target contributes its batch for step t before
    # any target moves to step t+1.
    for step in range(args.steps):
        envelopes = gateway.submit_many(
            [
                StreamRequest(name, stream.batches[step].inputs)
                for name, stream in streams.items()
            ]
        )
        failed = [envelope for envelope in envelopes if not envelope.ok]
        if failed:
            first = failed[0]
            parser.error(
                f"stream ingest failed for {first.target_id!r}: "
                f"{first.error['type']}: {first.error['message']}"
            )

    rows = []
    for name, scenario in selected.items():
        stats = gateway.stream_stats(name)
        before = mse(bundle.predict(scenario.test.inputs), scenario.test.targets)
        after_cell: object = "never adapted"
        if gateway.report_for(name) is not None and gateway.model_for(name) is not None:
            after_cell = round(mse(gateway.predict(name, scenario.test.inputs), scenario.test.targets), 4)
        rows.append(
            [
                name,
                stats["total_events"],
                stats["cold_adaptations"],
                stats["warm_adaptations"],
                stats["buffered"],
                round(before, 4),
                after_cell,
            ]
        )
    print(
        f"[stream] task={args.task} scheme={args.scheme} drift={args.drift} "
        f"steps={args.steps} seed={args.seed}"
    )
    print(
        format_table(
            ["target", "events", "cold", "warm", "buffered", "mse_source", "mse_stream"],
            rows,
        )
    )
    if args.events:
        payload = {name: [event.to_dict() for event in gateway.events_for(name)] for name in selected}
        with open(args.events, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote event tables for {len(payload)} targets to {args.events}")
    if args.metrics_out:
        _write_metrics_snapshot(gateway.metrics_snapshot(), args.metrics_out)
    gateway.close()
    return 0


def _write_metrics_snapshot(snapshot: dict, path: str) -> None:
    """Write a ``repro.metrics/v1`` snapshot as canonical JSON and say so."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote metrics snapshot to {path}", file=sys.stderr)


def _serve(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """Run the gateway loop — stdio, TCP server, or TCP client mode.

    All three modes speak the same ``repro.serve/v1`` lines; only the
    transport differs.  SIGINT/SIGTERM drain rather than kill in both
    serving modes: in-flight requests finish, their envelopes flush,
    ``--metrics-out``/``--trace`` are written, shard pools close, exit 0.
    """
    from .net import GracefulShutdown, parse_address
    from .obs import Tracer
    from .serve import Gateway, serve_loop

    if args.listen and args.connect:
        parser.error("--listen and --connect are mutually exclusive")
    if args.connect and args.workload_spec:
        parser.error("--connect is client mode; --workload-spec needs a local gateway")
    if args.connect:
        return _serve_connect(parser, args)
    if args.shards < 1:
        parser.error("--shards must be at least 1")
    if args.shard_workers < 1:
        parser.error("--shard-workers must be at least 1")
    if args.max_cached < 1:
        parser.error("--max-cached must be at least 1")
    if args.min_adapt < 1:
        parser.error("--min-adapt must be at least 1")
    if args.budget < 1:
        parser.error("--budget must be at least 1")
    if args.max_pending < 0:
        parser.error("--max-pending must be non-negative")

    tracer = Tracer() if args.trace else None
    try:
        if args.workload_spec:
            from .sim import build_gateway, load_spec

            spec = load_spec(args.workload_spec)
            gateway = build_gateway(spec, tracer=tracer, snapshot_dir=args.snapshot_dir)
            described = f"spec={args.workload_spec}"
        else:
            gateway = Gateway.from_task(
                args.task,
                scheme=args.scheme,
                scale=args.scale,
                seed=args.seed,
                n_shards=args.shards,
                shard_workers=args.shard_workers,
                executor=args.executor,
                train_batching=args.train_batching,
                max_cached_models=args.max_cached,
                service_options={
                    "min_adapt_events": args.min_adapt,
                    "readapt_budget": args.budget,
                },
                tracer=tracer,
                snapshot_dir=args.snapshot_dir,
            )
            described = (
                f"task={args.task} scheme={args.scheme} scale={args.scale} "
                f"shards={args.shards}"
            )
    except (ValueError, OSError) as exc:
        parser.error(str(exc))

    if args.listen:
        from .net import NetServer

        try:
            host, port = parse_address(args.listen)
        except ValueError as exc:
            parser.error(str(exc))
        server = NetServer(
            gateway,
            host,
            port,
            max_pending=args.max_pending,
            node=args.node,
        )

        def ready(bound_host: str, bound_port: int) -> None:
            # Startup chatter goes to stderr; the stable "listening on"
            # marker is what scripts (and the CI smoke job) wait for.
            print(
                f"[serve] listening on {bound_host}:{bound_port} {described} "
                f"max_pending={args.max_pending}"
                + (f" node={args.node}" if args.node else ""),
                file=sys.stderr,
                flush=True,
            )

        server.run(ready=ready)  # blocks until SIGINT/SIGTERM, then drains
        served = server.stats["served"]
    else:
        # Startup chatter goes to stderr: stdout carries envelopes, nothing else.
        print(
            f"[serve] ready {described} (one JSON request per line; EOF to stop)",
            file=sys.stderr,
            flush=True,
        )
        shutdown = GracefulShutdown()
        try:
            shutdown.install()
        except ValueError:
            shutdown = None  # not the main thread; EOF remains the only stop
        try:
            served = serve_loop(gateway, sys.stdin, sys.stdout, shutdown=shutdown)
        finally:
            if shutdown is not None:
                shutdown.uninstall()
    print(f"[serve] done, {served} envelope(s)", file=sys.stderr)
    if args.metrics_out:
        _write_metrics_snapshot(gateway.metrics_snapshot(), args.metrics_out)
    if tracer is not None:
        n_spans = tracer.export(args.trace)
        print(f"wrote {n_spans} trace span(s) to {args.trace}", file=sys.stderr)
    gateway.close()
    return 0


def _serve_connect(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """Client mode: stdin lines → remote server → stdout envelopes."""
    from .net import NetClient, NetError, parse_address

    try:
        host, port = parse_address(args.connect)
    except ValueError as exc:
        parser.error(str(exc))
    client = NetClient(host, port)
    served = 0
    try:
        for line in sys.stdin:
            try:
                response = client.request_line(line)
            except NetError as exc:
                print(f"[serve] network error: {exc}", file=sys.stderr)
                return 1
            if response is None:
                continue
            try:
                sys.stdout.write(response + "\n")
                sys.stdout.flush()
            except BrokenPipeError:
                break
            served += 1
    finally:
        client.close()
    print(f"[serve] done, {served} envelope(s)", file=sys.stderr)
    return 0


def _cluster(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """Supervise one ``serve --listen`` subprocess per cluster-map node.

    Signals forward: SIGINT/SIGTERM here becomes SIGTERM to every node,
    each node drains and exits 0, and the supervisor follows.  A node
    dying on its own takes the cluster down (deliberately — a silently
    half-sized cluster would misroute every target the dead node owned).
    """
    import signal as signal_module
    import subprocess
    import time

    from .net import ClusterRouter, load_cluster_map, node_command

    try:
        cluster_map = load_cluster_map(args.spec)
    except (ValueError, OSError) as exc:
        parser.error(str(exc))

    if args.placement:
        router = ClusterRouter(cluster_map.names)
        for target in args.placement:
            print(f"{target}\t{router.node_for(target)}")
        return 0

    processes = []
    for node in cluster_map.nodes:
        command = node_command(cluster_map, node)
        print(
            f"[cluster] starting node {node.name} on {node.host}:{node.port}",
            file=sys.stderr,
            flush=True,
        )
        processes.append(subprocess.Popen(command))

    stopping = {"requested": False}

    def forward(signum, frame) -> None:
        stopping["requested"] = True
        for process in processes:
            if process.poll() is None:
                process.send_signal(signal_module.SIGTERM)

    previous = {
        signum: signal_module.signal(signum, forward)
        for signum in (signal_module.SIGINT, signal_module.SIGTERM)
    }
    try:
        while True:
            codes = [process.poll() for process in processes]
            if all(code is not None for code in codes):
                exit_code = 0 if all(code == 0 for code in codes) else 1
                break
            if not stopping["requested"] and any(code is not None for code in codes):
                print(
                    "[cluster] a node exited unexpectedly; draining the rest",
                    file=sys.stderr,
                    flush=True,
                )
                forward(None, None)
            time.sleep(0.1)
    finally:
        for signum, handler in previous.items():
            signal_module.signal(signum, handler)
    print(f"[cluster] all {len(processes)} node(s) exited", file=sys.stderr)
    return exit_code


def _simulate(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """Replay a workload spec through the stack; emit transcript + report.

    Output discipline mirrors ``serve``: the canonical envelope transcript
    is the *only* thing written to stdout (unless ``--transcript`` redirects
    it to a file), so two runs of the same spec and seed can be compared
    byte for byte with nothing but ``diff``.  The human summary and the
    invariant verdict go to stderr.  Exit status is 0 only when every
    invariant held (and, under ``--verify-replay``, the replay matched).
    """
    from .obs import Tracer
    from .sim import load_spec, run_simulation, verify_replay, verify_transport

    address = None
    if args.connect:
        from .net import parse_address

        try:
            address = parse_address(args.connect)
        except ValueError as exc:
            parser.error(str(exc))
    try:
        spec = load_spec(args.spec)
        overrides = {}
        if args.seed is not None:
            overrides["seed"] = args.seed
        if args.task is not None:
            overrides["task"] = args.task
        if args.scheme is not None:
            overrides["scheme"] = args.scheme
        if args.fault_plan is not None:
            overrides["fault_plan"] = args.fault_plan
        if args.executor is not None:
            overrides["executor"] = args.executor
        if args.train_batching is not None:
            overrides["train_batching"] = args.train_batching
        if args.ticks is not None:
            overrides["n_ticks"] = args.ticks
        if args.snapshot_dir is not None:
            overrides["snapshots"] = True
        if overrides:
            spec = spec.replace(**overrides)
    except (ValueError, OSError) as exc:
        parser.error(str(exc))

    tracer = Tracer() if args.trace else None
    replay_ok, replay_detail = True, None
    try:
        if address is not None and args.verify_replay:
            # Transport transparency: TCP leg against the live server,
            # in-process leg from scratch, byte-compared.
            replay_ok, replay_detail, result, _ = verify_transport(
                spec, address=address, tracer=tracer
            )
        elif address is not None:
            from .net import RemoteGateway

            remote = RemoteGateway(*address, n_shards=spec.n_shards)
            try:
                result = run_simulation(spec, gateway=remote)
            finally:
                remote.close()
        elif args.verify_replay:
            # Each leg builds its own gateway with a fresh private temp
            # store — a shared --snapshot-dir would let run 1's spills warm
            # run 2 and break byte-comparability by construction.
            replay_ok, replay_detail, result = verify_replay(spec, tracer=tracer)
        elif args.snapshot_dir is not None:
            from .sim import build_gateway

            gateway = build_gateway(spec, tracer=tracer, snapshot_dir=args.snapshot_dir)
            try:
                result = run_simulation(spec, gateway=gateway)
            finally:
                gateway.close()
        else:
            result = run_simulation(spec, tracer=tracer)
    except ValueError as exc:
        # Spec errors only trace compilation can catch (e.g. a fleet naming
        # a scenario the task does not have) surface as CLI errors too.
        parser.error(str(exc))

    if args.transcript:
        with open(args.transcript, "w", encoding="utf-8") as handle:
            handle.write(result.transcript_text)
        print(f"wrote {len(result.transcript_lines)} transcript lines to {args.transcript}",
              file=sys.stderr)
    else:
        sys.stdout.write(result.transcript_text)
        sys.stdout.flush()

    print(result.summary(), file=sys.stderr)
    determinism = "transport_determinism" if args.connect else "replay_determinism"
    if args.verify_replay:
        status = "ok (byte-identical)" if replay_ok else f"FAIL\n{replay_detail}"
        print(f"  invariant {determinism}: {status}", file=sys.stderr)

    if args.report:
        report = result.to_dict()
        report["replay_determinism"] = {
            "checked": bool(args.verify_replay),
            "mode": "transport" if args.connect else "replay",
            "ok": replay_ok,
            "detail": replay_detail,
        }
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote invariant report to {args.report}", file=sys.stderr)

    if args.metrics_out:
        _write_metrics_snapshot(result.metrics or {}, args.metrics_out)
    if tracer is not None:
        n_spans = tracer.export(args.trace)
        print(f"wrote {n_spans} trace span(s) to {args.trace}", file=sys.stderr)

    return 0 if (result.ok and replay_ok) else 1


def _metrics(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """Validate a metrics snapshot file and render it (Prometheus or JSON)."""
    from .obs import to_prometheus, validate_snapshot

    try:
        with open(args.snapshot, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        parser.error(f"cannot read snapshot {args.snapshot!r}: {exc}")

    # Accept either a bare snapshot or a wrapper holding one under a
    # "metrics" key (simulate --report files, metrics-request payloads).
    if isinstance(payload, dict) and "metrics" in payload and isinstance(payload["metrics"], dict):
        payload = payload["metrics"]

    try:
        validate_snapshot(payload)
    except ValueError as exc:
        parser.error(f"invalid metrics snapshot: {exc}")

    if args.format == "prom":
        sys.stdout.write(to_prometheus(payload))
    else:
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    sys.stdout.flush()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
