"""Command-line interface for running the reproduction experiments.

Examples
--------
List the available experiments::

    python -m repro.cli list

Run one experiment at the small (test) scale::

    python -m repro.cli run fig14_ste_reduction_seen --scale small

Run every experiment on four worker processes, persisting results so an
interrupted run can pick up where it left off::

    python -m repro.cli run-all --scale small --jobs 4 \
        --results-dir results --resume --output results.txt

Adapt every target scenario of a task through the multi-target
:class:`~repro.runtime.AdaptationService` (four worker threads, JSON report)::

    python -m repro.cli adapt-many --task pdr --scale small --jobs 4 \
        --report adaptation_reports.json
"""

from __future__ import annotations

import argparse
import json
import sys
from concurrent.futures import ProcessPoolExecutor

from .experiments import SCALES, list_experiments, run_experiment

__all__ = ["main", "build_parser"]

#: Tasks usable with ``adapt-many`` (the bundle builders of the harness).
ADAPT_TASKS = ("pdr", "crowd", "housing", "taxi")


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the CLI."""
    parser = argparse.ArgumentParser(
        prog="tasfar-repro",
        description="Reproduction experiments for TASFAR (ICDE 2024)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiment ids")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id (see `list`)")
    run_parser.add_argument("--scale", default="small", choices=tuple(SCALES))
    run_parser.add_argument("--seed", type=int, default=0)

    run_all_parser = subparsers.add_parser("run-all", help="run every experiment")
    run_all_parser.add_argument("--scale", default="small", choices=tuple(SCALES))
    run_all_parser.add_argument("--seed", type=int, default=0)
    run_all_parser.add_argument("--output", default=None, help="optional path for a text report")
    run_all_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for parallel experiment execution (default: 1, serial)",
    )
    run_all_parser.add_argument(
        "--results-dir",
        default=None,
        help="persist each experiment result as JSON under this directory",
    )
    run_all_parser.add_argument(
        "--resume",
        action="store_true",
        help="skip experiments already stored in --results-dir",
    )
    run_all_parser.add_argument(
        "--only",
        nargs="+",
        default=None,
        metavar="EXPERIMENT",
        help="restrict the run to these experiment ids",
    )

    adapt_parser = subparsers.add_parser(
        "adapt-many",
        help="adapt every target scenario of a task through the AdaptationService",
    )
    adapt_parser.add_argument("--task", default="pdr", choices=ADAPT_TASKS)
    adapt_parser.add_argument("--scale", default="small", choices=tuple(SCALES))
    adapt_parser.add_argument("--seed", type=int, default=0)
    adapt_parser.add_argument(
        "--jobs", type=int, default=1, help="worker threads for parallel target adaptation"
    )
    adapt_parser.add_argument(
        "--targets",
        nargs="+",
        default=None,
        metavar="SCENARIO",
        help="restrict adaptation to these scenario names (default: all)",
    )
    adapt_parser.add_argument(
        "--max-cached",
        type=int,
        default=None,
        help=(
            "LRU capacity for adapted models held in memory "
            "(default: the number of selected targets, so every target's "
            "adapted model survives until evaluation)"
        ),
    )
    adapt_parser.add_argument(
        "--report", default=None, help="optional path for a JSON file with per-target reports"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in list_experiments():
            print(experiment_id)
        return 0

    if args.command == "run":
        result = run_experiment(args.experiment, scale=args.scale, seed=args.seed)
        print(result.summary())
        return 0

    if args.command == "run-all":
        return _run_all(parser, args)

    if args.command == "adapt-many":
        return _adapt_many(parser, args)

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 1


def _run_all(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """Run (a subset of) the experiments, optionally in parallel and resumable."""
    from .runtime import ResultStore

    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    if args.resume and args.results_dir is None:
        parser.error("--resume requires --results-dir")

    known = list_experiments()
    if args.only:
        unknown = [experiment_id for experiment_id in args.only if experiment_id not in known]
        if unknown:
            parser.error(f"unknown experiment ids: {', '.join(unknown)}")
        experiment_ids = list(args.only)
    else:
        experiment_ids = known

    store = ResultStore(args.results_dir) if args.results_dir else None
    results = {}
    to_run = []
    for experiment_id in experiment_ids:
        if args.resume and store is not None and store.has(experiment_id, args.scale, args.seed):
            results[experiment_id] = store.load(experiment_id, args.scale, args.seed)
            print(f"[resumed] {experiment_id}")
        else:
            to_run.append(experiment_id)

    if args.jobs > 1 and len(to_run) > 1:
        # Experiments are deterministic in (id, scale, seed), so process
        # workers give bitwise the same results as a serial run.  Processes
        # (not threads) because experiments mutate their models in place.
        with ProcessPoolExecutor(max_workers=args.jobs) as pool:
            futures = {
                experiment_id: pool.submit(
                    run_experiment, experiment_id, scale=args.scale, seed=args.seed
                )
                for experiment_id in to_run
            }
            for experiment_id in to_run:
                results[experiment_id] = futures[experiment_id].result()
    else:
        for experiment_id in to_run:
            results[experiment_id] = run_experiment(experiment_id, scale=args.scale, seed=args.seed)

    freshly_run = set(to_run)
    sections = []
    for experiment_id in experiment_ids:
        result = results[experiment_id]
        if store is not None and experiment_id in freshly_run:
            store.save(result, args.scale, args.seed)
        sections.append(result.summary())
        print(result.summary())
        print()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write("\n\n".join(sections) + "\n")
    return 0


def _adapt_many(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """Adapt the target scenarios of one task through the AdaptationService."""
    from .core import TasfarConfig
    from .experiments import get_bundle
    from .metrics import format_table, mse
    from .runtime import AdaptationService

    if args.jobs < 1:
        parser.error("--jobs must be at least 1")

    bundle = get_bundle(args.task, args.scale, args.seed)
    scenarios = {scenario.name: scenario for scenario in bundle.task.scenarios}
    if args.targets:
        unknown = [name for name in args.targets if name not in scenarios]
        if unknown:
            parser.error(f"unknown scenarios: {', '.join(unknown)}")
        selected = {name: scenarios[name] for name in args.targets}
    else:
        selected = scenarios

    # The cache must cover the whole fleet by default: an evicted target
    # would silently be evaluated with the unadapted source model below.
    max_cached = len(selected) if args.max_cached is None else max(args.max_cached, 1)
    service = AdaptationService(
        bundle.source_model,
        bundle.calibration,
        config=TasfarConfig(seed=args.seed),
        max_cached_models=max_cached,
        base_seed=args.seed,
    )
    reports = service.adapt_many(
        {name: scenario.adaptation.inputs for name, scenario in selected.items()},
        jobs=args.jobs,
    )

    # The service never sees labels; evaluation happens here, caller-side.
    rows = []
    for name, scenario in selected.items():
        report = reports[name]
        before = mse(bundle.predict(scenario.adaptation.inputs), scenario.adaptation.targets)
        report.extra["mse_before"] = float(before)
        if service.model_for(name) is None:
            # Evicted by a caller-chosen small --max-cached: don't pass off
            # source-model numbers as post-adaptation performance.
            report.extra["mse_after"] = None
            after_cell = "evicted"
        else:
            after = mse(
                service.predict(name, scenario.adaptation.inputs), scenario.adaptation.targets
            )
            report.extra["mse_after"] = float(after)
            after_cell = round(after, 4)
        rows.append(
            [
                name,
                report.n_samples,
                report.n_confident,
                report.n_uncertain,
                len(report.losses),
                round(before, 4),
                after_cell,
                round(report.duration_seconds, 3),
            ]
        )
    print(
        format_table(
            ["target", "n", "confident", "uncertain", "epochs", "mse_before", "mse_after", "secs"],
            rows,
        )
    )
    if args.report:
        payload = {name: report.to_dict() for name, report in reports.items()}
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {len(payload)} reports to {args.report}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
