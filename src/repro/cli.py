"""Command-line interface for running the reproduction experiments.

Examples
--------
List the available experiments::

    python -m repro.cli list

Run one experiment at the small (test) scale::

    python -m repro.cli run fig14_ste_reduction_seen --scale small

Run every experiment and write a combined report::

    python -m repro.cli run-all --scale small --output results.txt
"""

from __future__ import annotations

import argparse
import sys

from .experiments import SCALES, list_experiments, run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the CLI."""
    parser = argparse.ArgumentParser(
        prog="tasfar-repro",
        description="Reproduction experiments for TASFAR (ICDE 2024)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiment ids")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", help="experiment id (see `list`)")
    run_parser.add_argument("--scale", default="small", choices=tuple(SCALES))
    run_parser.add_argument("--seed", type=int, default=0)

    run_all_parser = subparsers.add_parser("run-all", help="run every experiment")
    run_all_parser.add_argument("--scale", default="small", choices=tuple(SCALES))
    run_all_parser.add_argument("--seed", type=int, default=0)
    run_all_parser.add_argument("--output", default=None, help="optional path for a text report")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in list_experiments():
            print(experiment_id)
        return 0

    if args.command == "run":
        result = run_experiment(args.experiment, scale=args.scale, seed=args.seed)
        print(result.summary())
        return 0

    if args.command == "run-all":
        sections = []
        for experiment_id in list_experiments():
            result = run_experiment(experiment_id, scale=args.scale, seed=args.seed)
            sections.append(result.summary())
            print(result.summary())
            print()
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write("\n\n".join(sections) + "\n")
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
