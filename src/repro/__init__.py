"""TASFAR reproduction: target-agnostic source-free domain adaptation for regression.

The public API re-exports the most commonly used entry points:

* :class:`repro.core.Tasfar` — the adaptation algorithm.
* :class:`repro.core.TasfarConfig` — its configuration.
* :mod:`repro.nn` — the numpy neural-network substrate.
* :mod:`repro.engine` — the strategy engine: the shared ``FineTuneEngine``
  training hot path, the seeded RNG-stream plan, and the
  ``AdaptationStrategy`` registry putting every scheme behind one
  ``adapt()`` surface.
* :mod:`repro.data` — synthetic generators for the four evaluation tasks
  and the pluggable ``TaskSpec`` registry (a new task is one
  ``register_task`` call).
* :mod:`repro.baselines` — source-based and source-free UDA baselines.
* :mod:`repro.experiments` — per-figure/table experiment harness.
* :mod:`repro.runtime` — deployment-time multi-target adaptation service
  (worker-pooled ``adapt_many``, LRU-cached adapted models, JSON reports)
  and the disk-backed result store behind ``run-all --resume``.
* :mod:`repro.streaming` — the streaming layer on top of the runtime:
  online density maps with exponential decay, Page-Hinkley drift detection,
  and ``ingest``-driven warm-start re-adaptation; paired with the
  non-stationary stream generators in :mod:`repro.data.drift`.
* :mod:`repro.serve` — the serving gateway over both runtimes: typed
  request/response protocol with a versioned JSON envelope, sharded
  services with deterministic target placement, cross-target micro-batched
  prediction, and the ``repro serve`` JSON-lines front door.
* :mod:`repro.sim` — deterministic workload simulation and fault injection
  for the whole serving stack: seeded workload specs compiled to wire-line
  traces, a virtual-clock simulator driving a live gateway, pluggable
  fault plans, and the invariant suite behind ``repro simulate``.
* :mod:`repro.obs` — fleet observability: the thread-safe
  ``MetricsRegistry`` every layer reports into (``repro.metrics/v1``
  snapshots, Prometheus text exposition), deterministic per-request
  tracing, and the shared wall-clock helpers behind every
  ``duration_seconds`` field.

The gateway and simulator APIs are re-exported lazily at the top level
(``repro.Gateway``, ``repro.AdaptRequest``, ``repro.WorkloadSpec``,
``repro.Simulator``, ...), so client code needs one import and the
experiment harness stays import-light.
"""

from .version import __version__

__all__ = [
    "__version__",
    "AdaptRequest",
    "Envelope",
    "Gateway",
    "MetricsRegistry",
    "MetricsRequest",
    "PredictRequest",
    "ReportRequest",
    "Simulator",
    "StreamRequest",
    "Tracer",
    "WorkloadSpec",
]

_SIM_EXPORTS = frozenset({"Simulator", "WorkloadSpec"})
_OBS_EXPORTS = frozenset({"MetricsRegistry", "Tracer"})
_SERVE_EXPORTS = frozenset(__all__) - {"__version__"} - _SIM_EXPORTS - _OBS_EXPORTS


def __getattr__(name: str):
    if name in _SERVE_EXPORTS:
        from . import serve

        return getattr(serve, name)
    if name in _SIM_EXPORTS:
        from . import sim

        return getattr(sim, name)
    if name in _OBS_EXPORTS:
        from . import obs

        return getattr(obs, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
