"""Synthetic datasets reproducing the structure of the paper's four tasks."""

from .base import AdaptationTask, TargetScenario
from .crowd import CrowdGenerator, CrowdSceneProfile, make_crowd_task
from .drift import (
    DRIFT_KINDS,
    NonStationaryStream,
    StreamBatch,
    make_drift_stream,
    make_drift_streams,
)
from .housing import HOUSING_FEATURES, HousingGenerator, make_housing_task
from .partition import merge_scenarios, split_dataset_by_fraction, subsample_scenario
from .pdr import PdrGenerator, PdrTrajectory, PdrUserProfile, make_pdr_task
from .preprocessing import Standardizer, corrupt_features
from .tasks import (
    SCALES,
    ScaleProfile,
    TaskSpec,
    get_task_spec,
    register_task,
    task_names,
    unregister_task,
)
from .taxi import TAXI_FEATURES, TaxiGenerator, make_taxi_task

__all__ = [
    "AdaptationTask",
    "CrowdGenerator",
    "CrowdSceneProfile",
    "DRIFT_KINDS",
    "HOUSING_FEATURES",
    "HousingGenerator",
    "NonStationaryStream",
    "StreamBatch",
    "PdrGenerator",
    "PdrTrajectory",
    "PdrUserProfile",
    "SCALES",
    "ScaleProfile",
    "Standardizer",
    "TAXI_FEATURES",
    "TargetScenario",
    "TaskSpec",
    "TaxiGenerator",
    "get_task_spec",
    "register_task",
    "task_names",
    "unregister_task",
    "corrupt_features",
    "make_crowd_task",
    "make_drift_stream",
    "make_drift_streams",
    "make_housing_task",
    "make_pdr_task",
    "make_taxi_task",
    "merge_scenarios",
    "split_dataset_by_fraction",
    "subsample_scenario",
]
