"""Common data structures shared by the four task generators.

Every task produces the same shape of object — an :class:`AdaptationTask` —
so the experiment harness and the baselines can treat pedestrian dead
reckoning, crowd counting, housing prices and taxi durations uniformly:

* a labelled **source** training set (used to train the source model),
* a labelled **source calibration** set (held out from training; TASFAR fits
  ``Q_s`` and ``tau`` on it, the source-based baselines may use it as extra
  source data),
* one or more **target scenarios** (a user, a scene, a district), each with an
  unlabeled-at-adaptation-time adaptation split and a test split.  Labels are
  stored so experiments can *evaluate* the adaptation, but no algorithm under
  test reads target labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.data import ArrayDataset

__all__ = ["TargetScenario", "AdaptationTask"]


@dataclass
class TargetScenario:
    """One target domain instance (a user, a scene, a district).

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"seen_user_03"`` or ``"scene_1"``).
    adaptation:
        The data available for adaptation (80% of the scenario by default).
        Labels are present for evaluation only.
    test:
        Held-out data from the same scenario used to verify that adaptation
        generalizes beyond the adaptation set (Fig. 15).
    metadata:
        Free-form extras, e.g. per-sample trajectory ids for the PDR task or
        the true generating parameters of a synthetic user.
    """

    name: str
    adaptation: ArrayDataset
    test: ArrayDataset
    metadata: dict = field(default_factory=dict)

    @property
    def n_adaptation(self) -> int:
        """Number of adaptation samples."""
        return len(self.adaptation)

    @property
    def n_test(self) -> int:
        """Number of test samples."""
        return len(self.test)

    def pooled(self) -> ArrayDataset:
        """Adaptation and test data concatenated (used by Fig. 20's pooling study)."""
        inputs = np.concatenate([self.adaptation.inputs, self.test.inputs], axis=0)
        targets = np.concatenate([self.adaptation.targets, self.test.targets], axis=0)
        return ArrayDataset(inputs, targets)


@dataclass
class AdaptationTask:
    """A complete source-plus-targets task instance."""

    name: str
    source_train: ArrayDataset
    source_calibration: ArrayDataset
    scenarios: list[TargetScenario]
    label_dim: int = 1
    metadata: dict = field(default_factory=dict)

    def scenario(self, name: str) -> TargetScenario:
        """Look up a scenario by name."""
        for scenario in self.scenarios:
            if scenario.name == name:
                return scenario
        raise KeyError(f"no scenario named {name!r} in task {self.name!r}")

    def scenario_names(self) -> list[str]:
        """Names of all target scenarios."""
        return [scenario.name for scenario in self.scenarios]

    @property
    def n_scenarios(self) -> int:
        """Number of target scenarios."""
        return len(self.scenarios)
