"""Input preprocessing shared by the task generators.

All tasks standardize their inputs with statistics computed on the **source
training split only** — the same transform is then applied to the calibration
split and to every target scenario.  This mirrors real deployments (the scaler
ships with the source model) and never leaks target statistics into the
pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Standardizer", "corrupt_features"]


@dataclass
class Standardizer:
    """Per-feature standardization fitted on source data.

    For tabular inputs ``(n, d)`` the statistics are per column; for windowed
    inputs ``(n, channels, ...)`` they are per channel.
    """

    mean: np.ndarray | None = None
    std: np.ndarray | None = None

    def fit(self, inputs: np.ndarray) -> "Standardizer":
        """Compute the mean and standard deviation of ``inputs``."""
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim < 2:
            raise ValueError("inputs must have at least two dimensions")
        if inputs.ndim == 2:
            axes: tuple[int, ...] = (0,)
        else:
            # (n, channels, ...): aggregate over samples and trailing axes.
            axes = (0,) + tuple(range(2, inputs.ndim))
        self.mean = inputs.mean(axis=axes, keepdims=True)[0]
        self.std = inputs.std(axis=axes, keepdims=True)[0]
        self.std = np.where(self.std < 1e-8, 1.0, self.std)
        return self

    def transform(self, inputs: np.ndarray) -> np.ndarray:
        """Standardize ``inputs`` with the fitted statistics."""
        if self.mean is None or self.std is None:
            raise RuntimeError("the standardizer must be fitted before transforming")
        inputs = np.asarray(inputs, dtype=np.float64)
        return (inputs - self.mean) / self.std

    def fit_transform(self, inputs: np.ndarray) -> np.ndarray:
        """Fit on ``inputs`` and return the standardized array."""
        return self.fit(inputs).transform(inputs)


def corrupt_features(
    features: np.ndarray,
    corruption_mask: np.ndarray,
    rng: np.random.Generator,
    feature_indices: list[int] | None = None,
    noise_scale: float = 2.5,
    attenuation: float = 0.3,
) -> np.ndarray:
    """Corrupt selected rows of a tabular feature matrix.

    Corruption models the "hard" samples every real dataset contains (sensor
    glitches, incomplete records, unusual properties): the informative columns
    of the affected rows lose most of their signal (attenuated toward the
    column mean) and are overlaid with large-magnitude noise, which pushes the
    row off the data manifold.  Labels are never touched, so the corrupted
    rows become the samples the source model is simultaneously *wrong* and
    *uncertain* about — the population TASFAR targets with pseudo-labels —
    while their labels still follow the scenario's label distribution.
    """
    features = np.array(features, dtype=np.float64, copy=True)
    corruption_mask = np.asarray(corruption_mask, dtype=bool)
    if corruption_mask.shape != (len(features),):
        raise ValueError("corruption_mask must have one entry per row")
    if not corruption_mask.any():
        return features
    columns = feature_indices if feature_indices is not None else list(range(features.shape[1]))
    column_mean = features[:, columns].mean(axis=0)
    column_std = features[:, columns].std(axis=0)
    column_std = np.where(column_std < 1e-8, 1.0, column_std)
    rows = np.flatnonzero(corruption_mask)
    original = features[np.ix_(rows, columns)]
    attenuated = column_mean + attenuation * (original - column_mean)
    noise = rng.normal(0.0, noise_scale * column_std, size=attenuated.shape)
    features[np.ix_(rows, columns)] = attenuated + noise
    return features
