"""Helpers for partitioning and pooling target scenarios.

The paper studies (Fig. 20) how TASFAR behaves when target data from several
scenes is pooled instead of adapted per scene, and the failure case of Fig. 22
mixes two users into a single target.  These helpers build such variants from
existing :class:`~repro.data.base.TargetScenario` objects.
"""

from __future__ import annotations

import numpy as np

from ..nn.data import ArrayDataset
from .base import TargetScenario

__all__ = ["merge_scenarios", "split_dataset_by_fraction", "subsample_scenario"]


def merge_scenarios(scenarios: list[TargetScenario], name: str = "merged") -> TargetScenario:
    """Concatenate several scenarios into a single pooled scenario.

    The per-sample scenario of origin is recorded in
    ``metadata["origin"]`` (aligned with the adaptation set) so experiments can
    still evaluate per origin after a pooled adaptation.
    """
    if not scenarios:
        raise ValueError("at least one scenario is required")
    adaptation_inputs = np.concatenate([s.adaptation.inputs for s in scenarios], axis=0)
    adaptation_targets = np.concatenate([s.adaptation.targets for s in scenarios], axis=0)
    test_inputs = np.concatenate([s.test.inputs for s in scenarios], axis=0)
    test_targets = np.concatenate([s.test.targets for s in scenarios], axis=0)
    origin = np.concatenate(
        [np.full(len(s.adaptation), index) for index, s in enumerate(scenarios)]
    )
    test_origin = np.concatenate(
        [np.full(len(s.test), index) for index, s in enumerate(scenarios)]
    )
    return TargetScenario(
        name=name,
        adaptation=ArrayDataset(adaptation_inputs, adaptation_targets),
        test=ArrayDataset(test_inputs, test_targets),
        metadata={
            "origin": origin,
            "test_origin": test_origin,
            "source_names": [s.name for s in scenarios],
        },
    )


def split_dataset_by_fraction(
    dataset: ArrayDataset,
    adaptation_fraction: float = 0.8,
    rng: np.random.Generator | None = None,
) -> tuple[ArrayDataset, ArrayDataset]:
    """Random split of a dataset into (adaptation, test) subsets."""
    if not 0.0 < adaptation_fraction < 1.0:
        raise ValueError("adaptation_fraction must be in (0, 1)")
    rng = rng if rng is not None else np.random.default_rng(0)
    indices = rng.permutation(len(dataset))
    n_adapt = max(1, int(round(len(dataset) * adaptation_fraction)))
    n_adapt = min(n_adapt, len(dataset) - 1)
    return dataset.subset(indices[:n_adapt]), dataset.subset(indices[n_adapt:])


def subsample_scenario(
    scenario: TargetScenario,
    n_adaptation: int,
    n_test: int | None = None,
    rng: np.random.Generator | None = None,
) -> TargetScenario:
    """Return a smaller copy of a scenario (used to keep benchmarks fast)."""
    rng = rng if rng is not None else np.random.default_rng(0)
    n_adaptation = min(n_adaptation, len(scenario.adaptation))
    adapt_idx = rng.choice(len(scenario.adaptation), size=n_adaptation, replace=False)
    if n_test is None:
        test = scenario.test
    else:
        n_test = min(n_test, len(scenario.test))
        test_idx = rng.choice(len(scenario.test), size=n_test, replace=False)
        test = scenario.test.subset(test_idx)
    return TargetScenario(
        name=scenario.name,
        adaptation=scenario.adaptation.subset(adapt_idx),
        test=test,
        metadata=dict(scenario.metadata),
    )
