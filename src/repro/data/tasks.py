"""Pluggable registry of adaptation-task scenarios.

A :class:`TaskSpec` bundles everything the harness layers need to stand a
task up end to end — the data generator, the source-model architecture, the
source-training recipe, and the metric names used to evaluate it.  The four
paper tasks (``pdr``, ``crowd``, ``housing``, ``taxi``) are registered below;
a new scenario is **one** :func:`register_task` call, after which it works
everywhere a task name is accepted: ``get_bundle``, every experiment that
takes a task, and the CLI's ``adapt-many``/``stream`` subcommands (whose
choices are read from this registry) — including the non-stationary stream
generators of :mod:`repro.data.drift`, which wrap any registered task's
scenarios.

The :class:`ScaleProfile` sizing table lives here too, next to the
generators it parameterizes; :mod:`repro.experiments.base` re-exports it for
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .. import nn
from .base import AdaptationTask
from .crowd import make_crowd_task
from .housing import make_housing_task
from .pdr import make_pdr_task
from .taxi import make_taxi_task

__all__ = [
    "ScaleProfile",
    "SCALES",
    "TaskSpec",
    "register_task",
    "unregister_task",
    "get_task_spec",
    "task_names",
    "on_task_registry_change",
]


@dataclass(frozen=True)
class ScaleProfile:
    """Sizes used when generating data and training models for experiments."""

    name: str
    # PDR
    pdr_seen_users: int
    pdr_unseen_users: int
    pdr_source_trajectories: int
    pdr_target_trajectories: int
    pdr_steps: int
    pdr_window: int
    pdr_channels: tuple[int, ...]
    pdr_epochs: int
    # Crowd counting
    crowd_source_images: int
    crowd_images_per_scene: int
    crowd_image_size: int
    crowd_epochs: int
    # Tabular tasks
    tabular_source: int
    tabular_target: int
    tabular_epochs: int
    # Baseline adaptation budgets
    baseline_epochs: int


SCALES: dict[str, ScaleProfile] = {
    "tiny": ScaleProfile(
        name="tiny",
        pdr_seen_users=2,
        pdr_unseen_users=1,
        pdr_source_trajectories=1,
        pdr_target_trajectories=2,
        pdr_steps=40,
        pdr_window=12,
        pdr_channels=(8, 8),
        pdr_epochs=15,
        crowd_source_images=60,
        crowd_images_per_scene=24,
        crowd_image_size=10,
        crowd_epochs=12,
        tabular_source=200,
        tabular_target=120,
        tabular_epochs=25,
        baseline_epochs=5,
    ),
    "small": ScaleProfile(
        name="small",
        pdr_seen_users=4,
        pdr_unseen_users=3,
        pdr_source_trajectories=3,
        pdr_target_trajectories=3,
        pdr_steps=80,
        pdr_window=20,
        pdr_channels=(16, 16),
        pdr_epochs=60,
        crowd_source_images=120,
        crowd_images_per_scene=45,
        crowd_image_size=12,
        crowd_epochs=30,
        tabular_source=500,
        tabular_target=250,
        tabular_epochs=50,
        baseline_epochs=12,
    ),
    "full": ScaleProfile(
        name="full",
        pdr_seen_users=15,
        pdr_unseen_users=10,
        pdr_source_trajectories=3,
        pdr_target_trajectories=5,
        pdr_steps=100,
        pdr_window=20,
        pdr_channels=(16, 16),
        pdr_epochs=80,
        crowd_source_images=400,
        crowd_images_per_scene=120,
        crowd_image_size=16,
        crowd_epochs=60,
        tabular_source=1500,
        tabular_target=600,
        tabular_epochs=80,
        baseline_epochs=20,
    ),
}


@dataclass(frozen=True)
class TaskSpec:
    """Everything needed to stand one adaptation task up end to end.

    Attributes
    ----------
    name:
        Registry key (``pdr``, ``crowd``, ...).
    build_task:
        ``(profile, seed) -> AdaptationTask`` data generator.
    build_model:
        ``(task, profile, seed) -> RegressionModel`` source architecture.
    epochs:
        ``profile -> int`` source-training epoch budget at that scale.
    lr, batch_size:
        Source-training recipe.
    metrics:
        Metric names the comparison harness evaluates this task with (see
        ``repro.experiments.comparison``); the first one is the headline.
    description:
        One-line human description (shown by introspection tooling).
    """

    name: str
    build_task: Callable[[ScaleProfile, int], AdaptationTask]
    build_model: Callable[[AdaptationTask, ScaleProfile, int], "nn.RegressionModel"]
    epochs: Callable[[ScaleProfile], int]
    lr: float = 2e-3
    batch_size: int = 32
    metrics: tuple[str, ...] = ("mse", "mae")
    description: str = ""


_TASKS: dict[str, TaskSpec] = {}

#: Callables invoked with a task name whenever its registration changes
#: (replaced or removed), so caches keyed by task name — e.g. the
#: experiments bundle cache — can evict stale entries.
_REGISTRY_LISTENERS: list[Callable[[str], None]] = []


def on_task_registry_change(listener: Callable[[str], None]) -> None:
    """Subscribe to task replace/unregister events (receives the task name)."""
    _REGISTRY_LISTENERS.append(listener)


def _notify_registry_change(name: str) -> None:
    for listener in _REGISTRY_LISTENERS:
        listener(name)


def register_task(spec: TaskSpec, replace: bool = False) -> TaskSpec:
    """Register a task spec; set ``replace=True`` to overwrite an existing name."""
    key = spec.name.lower()
    existing = key in _TASKS
    if not replace and existing:
        raise ValueError(f"task {spec.name!r} is already registered (pass replace=True)")
    _TASKS[key] = spec
    if existing:
        _notify_registry_change(key)
    return spec


def unregister_task(name: str) -> None:
    """Remove a registered task (mainly for tests registering throwaway tasks)."""
    if _TASKS.pop(name.lower(), None) is not None:
        _notify_registry_change(name.lower())


def get_task_spec(name: str) -> TaskSpec:
    """Look a task spec up by name."""
    try:
        return _TASKS[name.lower()]
    except KeyError as exc:
        raise ValueError(
            f"unknown task {name!r}; registered tasks: {', '.join(task_names())}"
        ) from exc


def task_names() -> tuple[str, ...]:
    """All registered task names, in registration order."""
    return tuple(_TASKS)


# ----------------------------------------------------------------------
# The four paper tasks
# ----------------------------------------------------------------------
def _build_pdr_task(profile: ScaleProfile, seed: int) -> AdaptationTask:
    return make_pdr_task(
        n_seen_users=profile.pdr_seen_users,
        n_unseen_users=profile.pdr_unseen_users,
        n_source_trajectories=profile.pdr_source_trajectories,
        n_target_trajectories=profile.pdr_target_trajectories,
        steps_per_trajectory=profile.pdr_steps,
        window=profile.pdr_window,
        seed=seed,
    )


def _build_pdr_model(task: AdaptationTask, profile: ScaleProfile, seed: int):
    return nn.build_tcn_regressor(
        in_channels=task.metadata["n_channels"],
        window_length=profile.pdr_window,
        output_dim=2,
        channel_sizes=profile.pdr_channels,
        dropout=0.2,
        seed=seed,
    )


def _build_crowd_task(profile: ScaleProfile, seed: int) -> AdaptationTask:
    return make_crowd_task(
        n_source_images=profile.crowd_source_images,
        n_target_images_per_scene=profile.crowd_images_per_scene,
        image_size=profile.crowd_image_size,
        seed=seed,
    )


def _build_crowd_model(task: AdaptationTask, profile: ScaleProfile, seed: int):
    return nn.build_mcnn_counter(
        image_size=profile.crowd_image_size,
        column_channels=(3, 4, 5),
        column_kernels=(3, 5, 7),
        dropout=0.2,
        seed=seed,
    )


def _build_housing_task(profile: ScaleProfile, seed: int) -> AdaptationTask:
    return make_housing_task(
        n_source=profile.tabular_source,
        n_target=profile.tabular_target,
        seed=seed,
    )


def _build_taxi_task(profile: ScaleProfile, seed: int) -> AdaptationTask:
    return make_taxi_task(
        n_source=profile.tabular_source,
        n_target=profile.tabular_target,
        seed=seed,
    )


def _build_tabular_model(task: AdaptationTask, profile: ScaleProfile, seed: int):
    return nn.build_mlp(
        input_dim=task.source_train.inputs.shape[1],
        output_dim=1,
        hidden_dims=(32, 16),
        dropout=0.2,
        seed=seed,
    )


register_task(
    TaskSpec(
        name="pdr",
        build_task=_build_pdr_task,
        build_model=_build_pdr_model,
        epochs=lambda profile: profile.pdr_epochs,
        lr=2e-3,
        batch_size=32,
        metrics=("ste",),
        description="pedestrian dead reckoning: per-user IMU-window displacement",
    )
)
register_task(
    TaskSpec(
        name="crowd",
        build_task=_build_crowd_task,
        build_model=_build_crowd_model,
        epochs=lambda profile: profile.crowd_epochs,
        lr=2e-3,
        batch_size=16,
        metrics=("mae", "mse"),
        description="crowd counting: per-scene synthetic density images",
    )
)
register_task(
    TaskSpec(
        name="housing",
        build_task=_build_housing_task,
        build_model=_build_tabular_model,
        epochs=lambda profile: profile.tabular_epochs,
        lr=3e-3,
        batch_size=32,
        metrics=("mse", "mae"),
        description="housing prices: per-segment tabular regression",
    )
)
register_task(
    TaskSpec(
        name="taxi",
        build_task=_build_taxi_task,
        build_model=_build_tabular_model,
        epochs=lambda profile: profile.tabular_epochs,
        lr=3e-3,
        batch_size=32,
        metrics=("rmsle", "mae"),
        description="taxi durations: per-district tabular regression",
    )
)
