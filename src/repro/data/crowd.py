"""Synthetic image-based people-counting task.

The paper adapts MCNN trained on Part A of the Shanghaitech dataset to
Part B, whose images come from different streets with different crowd
densities, and further partitions Part B into three scenes.  The images are
not available offline, so this module synthesizes low-resolution crowd
"images":

* every image is a grid on which each person contributes a small Gaussian
  blob; the label is the number of people;
* the **source** part mimics Part A: a broad mixture of densities rendered
  with a reference camera response;
* the **target** scenes mimic Part B: every scene has its own count
  distribution (scene 3 is the most crowded and most stable, as in the paper)
  and its own camera response (gain/background shift) — the domain gap;
* a share of the images are *hard*: an occlusion patch hides part of the crowd
  and the sensor noise is amplified, standing in for the occlusions, glare and
  motion blur of real footage.  The share is higher in the target scenes.  The
  count label still reflects everyone present, so on hard images the source
  model undercounts and is uncertain — while the scene's count distribution,
  estimated from the remaining images, is narrow and informative.  That is the
  structure TASFAR exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.data import ArrayDataset
from .base import AdaptationTask, TargetScenario

__all__ = ["CrowdSceneProfile", "CrowdGenerator", "make_crowd_task"]


@dataclass
class CrowdSceneProfile:
    """Rendering and crowd-density profile of one scene."""

    name: str
    count_mean: float
    count_std: float
    camera_gain: float
    background: float
    cluster_spread: float
    noise_level: float
    hard_fraction: float


# Target scene profiles loosely mirroring the paper's description: scene 3 is
# the most crowded and maintains the most stable pedestrian stream.
_DEFAULT_TARGET_SCENES = (
    {"name": "scene_1", "count_mean": 22.0, "count_std": 7.0, "camera_gain": 0.9},
    {"name": "scene_2", "count_mean": 45.0, "count_std": 9.0, "camera_gain": 1.12},
    {"name": "scene_3", "count_mean": 80.0, "count_std": 6.0, "camera_gain": 0.95},
)


@dataclass
class CrowdGenerator:
    """Generator of synthetic crowd-counting images."""

    image_size: int = 16
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.image_size < 8:
            raise ValueError("image_size must be at least 8")
        self._rng = np.random.default_rng(self.seed)

    def render_image(
        self,
        count: int,
        profile: CrowdSceneProfile,
        hard: bool = False,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Render one image containing ``count`` people."""
        rng = rng if rng is not None else self._rng
        size = self.image_size
        image = np.full((size, size), profile.background)
        if count > 0:
            # People cluster around a handful of scene-specific hot spots.
            n_clusters = max(1, int(rng.integers(1, 4)))
            centers = rng.uniform(0.15 * size, 0.85 * size, size=(n_clusters, 2))
            assignments = rng.integers(0, n_clusters, size=count)
            positions = centers[assignments] + rng.normal(
                0.0, profile.cluster_spread * size, size=(count, 2)
            )
            positions = np.clip(positions, 0, size - 1)
            grid_y, grid_x = np.mgrid[0:size, 0:size]
            blob_sigma = 0.8
            for person_y, person_x in positions:
                image += np.exp(
                    -((grid_y - person_y) ** 2 + (grid_x - person_x) ** 2) / (2 * blob_sigma**2)
                )
        image = profile.camera_gain * image
        noise_level = profile.noise_level
        if hard:
            image = self._occlude(image, rng)
            noise_level = noise_level * 4.0 + 0.5
        image += rng.normal(0.0, noise_level, size=image.shape)
        return image[None, :, :]

    def _occlude(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Replace a random block of the image with saturated glare.

        Glare (rather than a dark patch) both hides part of the crowd — so the
        count becomes hard to infer — and drives the activations of the
        counting network up, which is what makes its MC-dropout uncertainty
        visibly larger on these images.
        """
        size = self.image_size
        block = max(2, size // 2)
        top = int(rng.integers(0, size - block + 1))
        left = int(rng.integers(0, size - block + 1))
        occluded = image.copy()
        occluded[top : top + block, left : left + block] = 2.0
        return occluded

    def render_batch(
        self,
        counts: np.ndarray,
        profile: CrowdSceneProfile,
        rng: np.random.Generator | None = None,
    ) -> tuple[ArrayDataset, np.ndarray]:
        """Render a dataset of images; returns the dataset and the hard-image mask."""
        rng = rng if rng is not None else self._rng
        hard_mask = rng.random(len(counts)) < profile.hard_fraction
        images = np.stack(
            [
                self.render_image(int(count), profile, hard=bool(hard), rng=rng)
                for count, hard in zip(counts, hard_mask)
            ]
        )
        return ArrayDataset(images, np.asarray(counts, dtype=np.float64)), hard_mask

    def sample_counts(
        self,
        n_images: int,
        mean: float,
        std: float,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Sample per-image people counts from a truncated normal."""
        rng = rng if rng is not None else self._rng
        counts = rng.normal(mean, std, size=n_images)
        return np.clip(np.round(counts), 0, None).astype(int)


def make_crowd_task(
    n_source_images: int = 300,
    n_target_images_per_scene: int = 80,
    image_size: int = 16,
    adaptation_fraction: float = 0.8,
    seed: int = 0,
    target_scene_overrides: list[dict] | None = None,
) -> AdaptationTask:
    """Build the crowd-counting adaptation task.

    The source part covers a wide range of densities with a reference camera;
    each target scene is a :class:`TargetScenario` split 80/20 into adaptation
    and test sets.
    """
    generator = CrowdGenerator(image_size=image_size, seed=seed)
    rng = np.random.default_rng(seed + 1)

    source_profile = CrowdSceneProfile(
        name="part_a",
        count_mean=50.0,
        count_std=25.0,
        camera_gain=1.0,
        background=0.1,
        cluster_spread=0.18,
        noise_level=0.05,
        hard_fraction=0.10,
    )
    source_counts = generator.sample_counts(
        n_source_images, source_profile.count_mean, source_profile.count_std, rng
    )
    source_dataset, source_hard = generator.render_batch(source_counts, source_profile, rng)
    calibration_size = max(1, n_source_images // 5)
    calibration_indices = rng.choice(len(source_dataset), size=calibration_size, replace=False)
    train_indices = np.setdiff1d(np.arange(len(source_dataset)), calibration_indices)

    scene_configs = target_scene_overrides if target_scene_overrides is not None else list(_DEFAULT_TARGET_SCENES)
    scenarios: list[TargetScenario] = []
    for config in scene_configs:
        profile = CrowdSceneProfile(
            name=config["name"],
            count_mean=float(config["count_mean"]),
            count_std=float(config["count_std"]),
            camera_gain=float(config["camera_gain"]),
            background=float(config.get("background", 0.12)),
            cluster_spread=float(config.get("cluster_spread", 0.15)),
            noise_level=float(config.get("noise_level", 0.08)),
            hard_fraction=float(config.get("hard_fraction", 0.30)),
        )
        counts = generator.sample_counts(
            n_target_images_per_scene, profile.count_mean, profile.count_std, rng
        )
        dataset, hard_mask = generator.render_batch(counts, profile, rng)
        indices = rng.permutation(len(dataset))
        n_adapt = max(1, int(round(len(dataset) * adaptation_fraction)))
        n_adapt = min(n_adapt, len(dataset) - 1)
        adapt_idx, test_idx = indices[:n_adapt], indices[n_adapt:]
        scenarios.append(
            TargetScenario(
                name=profile.name,
                adaptation=dataset.subset(adapt_idx),
                test=dataset.subset(test_idx),
                metadata={
                    "count_mean": profile.count_mean,
                    "count_std": profile.count_std,
                    "camera_gain": profile.camera_gain,
                    "hard_mask": hard_mask[adapt_idx],
                    "test_hard_mask": hard_mask[test_idx],
                },
            )
        )

    return AdaptationTask(
        name="crowd_counting",
        source_train=source_dataset.subset(train_indices),
        source_calibration=source_dataset.subset(calibration_indices),
        scenarios=scenarios,
        label_dim=1,
        metadata={"image_size": image_size, "source_hard_mask": source_hard},
    )
