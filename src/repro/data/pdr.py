"""Synthetic pedestrian dead reckoning (PDR) task.

The paper adapts RoNIN — a temporal-convolution network that maps a window of
IMU readings to a 2-D step displacement — to 25 individual users (15 "seen"
during source training, 10 "unseen").  The real IMU recordings are not
available offline, so this module generates a statistically faithful
substitute:

* every user has a personal walking profile (stride length distribution, turn
  behaviour) that induces the ring-shaped 2-D displacement label distribution
  shown in the paper's Fig. 2 and Fig. 6;
* every user also has a carriage/device profile (sensor gain, gyroscope bias,
  noise level) that shifts the *input* distribution — the domain gap;
* a fraction of the steps are "hard": the informative channels are attenuated
  and the noise is amplified, which makes the source model both wrong and
  uncertain on them.  This reproduces the property TASFAR relies on (errors
  concentrate in uncertain data, Fig. 3 and Fig. 16) without encoding any
  knowledge of the adaptation algorithm into the generator.

Samples are IMU-like windows of shape ``(channels=6, window)`` with labels
``(dx, dy)`` in metres.  Trajectory structure is preserved through per-sample
trajectory identifiers so relative trajectory error (RTE) can be evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.data import ArrayDataset
from .base import AdaptationTask, TargetScenario

__all__ = ["PdrUserProfile", "PdrTrajectory", "PdrGenerator", "make_pdr_task"]

N_CHANNELS = 6


@dataclass
class PdrUserProfile:
    """Walking and device profile of one synthetic user."""

    user_id: str
    stride_mean: float
    stride_std: float
    turn_probability: float
    turn_scale: float
    drift_scale: float
    sensor_gain: float
    gyro_bias: float
    noise_level: float
    hard_step_probability: float
    seen: bool = True

    def describe(self) -> dict:
        """Dictionary form of the profile (stored in scenario metadata)."""
        return {
            "user_id": self.user_id,
            "stride_mean": self.stride_mean,
            "stride_std": self.stride_std,
            "turn_probability": self.turn_probability,
            "turn_scale": self.turn_scale,
            "sensor_gain": self.sensor_gain,
            "gyro_bias": self.gyro_bias,
            "noise_level": self.noise_level,
            "hard_step_probability": self.hard_step_probability,
            "seen": self.seen,
        }


@dataclass
class PdrTrajectory:
    """One walking trajectory: IMU windows, step displacements and positions."""

    windows: np.ndarray
    displacements: np.ndarray
    positions: np.ndarray
    hard_steps: np.ndarray

    def __len__(self) -> int:
        return len(self.windows)


@dataclass
class PdrGenerator:
    """Generator of synthetic PDR users and trajectories.

    Parameters
    ----------
    window:
        Number of IMU samples per step window.
    seed:
        Base seed; every user/trajectory derives its own stream from it.
    """

    window: int = 20
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    # Profiles
    # ------------------------------------------------------------------
    def sample_profile(self, user_id: str, seen: bool) -> PdrUserProfile:
        """Draw a user profile.

        Seen users have device parameters close to the source population;
        unseen users are drawn from a wider, shifted distribution so their
        domain gap is larger (matching the paper's seen/unseen grouping).
        """
        rng = self._rng
        stride_mean = float(rng.uniform(0.55, 0.80))
        stride_std = float(rng.uniform(0.03, 0.07))
        turn_probability = float(rng.uniform(0.05, 0.25))
        turn_scale = float(rng.uniform(0.6, 1.6))
        drift_scale = float(rng.uniform(0.05, 0.15))
        if seen:
            sensor_gain = float(rng.uniform(0.9, 1.1))
            gyro_bias = float(rng.normal(0.0, 0.02))
            noise_level = float(rng.uniform(0.03, 0.08))
            hard_step_probability = float(rng.uniform(0.10, 0.20))
        else:
            sensor_gain = float(rng.uniform(0.82, 1.22))
            gyro_bias = float(rng.normal(0.0, 0.03))
            noise_level = float(rng.uniform(0.06, 0.14))
            hard_step_probability = float(rng.uniform(0.20, 0.32))
        return PdrUserProfile(
            user_id=user_id,
            stride_mean=stride_mean,
            stride_std=stride_std,
            turn_probability=turn_probability,
            turn_scale=turn_scale,
            drift_scale=drift_scale,
            sensor_gain=sensor_gain,
            gyro_bias=gyro_bias,
            noise_level=noise_level,
            hard_step_probability=hard_step_probability,
            seen=seen,
        )

    # ------------------------------------------------------------------
    # Trajectories
    # ------------------------------------------------------------------
    def simulate_trajectory(
        self,
        profile: PdrUserProfile,
        n_steps: int,
        rng: np.random.Generator | None = None,
    ) -> PdrTrajectory:
        """Simulate one walking trajectory of ``n_steps`` steps."""
        if n_steps <= 0:
            raise ValueError("n_steps must be positive")
        rng = rng if rng is not None else self._rng

        headings = np.empty(n_steps)
        strides = np.empty(n_steps)
        turns = np.empty(n_steps)
        heading = float(rng.uniform(-np.pi, np.pi))
        for step in range(n_steps):
            if rng.random() < profile.turn_probability:
                turn = float(rng.normal(0.0, profile.turn_scale))
            else:
                turn = float(rng.normal(0.0, profile.drift_scale))
            heading += turn
            turns[step] = turn
            headings[step] = heading
            strides[step] = max(0.2, rng.normal(profile.stride_mean, profile.stride_std))

        displacements = np.column_stack(
            [strides * np.cos(headings), strides * np.sin(headings)]
        )
        positions = np.vstack([np.zeros(2), np.cumsum(displacements, axis=0)])
        hard_steps = rng.random(n_steps) < profile.hard_step_probability
        windows = self._build_windows(profile, strides, headings, turns, hard_steps, rng)
        return PdrTrajectory(
            windows=windows,
            displacements=displacements,
            positions=positions,
            hard_steps=hard_steps,
        )

    def _build_windows(
        self,
        profile: PdrUserProfile,
        strides: np.ndarray,
        headings: np.ndarray,
        turns: np.ndarray,
        hard_steps: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Construct the IMU-like window for every step."""
        n_steps = len(strides)
        phase = np.linspace(0.0, 2.0 * np.pi, self.window)
        windows = np.empty((n_steps, N_CHANNELS, self.window))

        previous_headings = np.concatenate([[headings[0] - turns[0]], headings[:-1]])
        gait = 1.0 + 0.5 * np.sin(2.0 * phase)
        bounce = np.abs(np.sin(phase))

        for step in range(n_steps):
            accel_noise = profile.noise_level
            other_noise = profile.noise_level
            accel_attenuation = 1.0
            if hard_steps[step]:
                # Hard steps: the phone is swinging or being handled, so the
                # accelerometer channels (which carry the stride-length
                # information) are mostly spurious motion, while the gyroscope
                # and orientation channels stay usable.  The large accelerometer
                # noise magnitude also makes the source model visibly uncertain
                # about these windows.
                accel_noise = profile.noise_level * 4.0 + 1.0
                accel_attenuation = 0.3
                other_noise = profile.noise_level * 2.0
            accel_forward = accel_attenuation * profile.sensor_gain * strides[step] * gait
            accel_vertical = accel_attenuation * profile.sensor_gain * (0.5 + strides[step]) * bounce
            gyro_z = (turns[step] / self.window + profile.gyro_bias) * np.ones(self.window)
            heading_cos = np.cos(previous_headings[step]) * np.ones(self.window)
            heading_sin = np.sin(previous_headings[step]) * np.ones(self.window)
            distractor = np.zeros(self.window)

            accel_block = np.vstack([accel_forward, accel_vertical])
            other_block = np.vstack([gyro_z, heading_cos, heading_sin, distractor])
            accel_block = accel_block + rng.normal(0.0, accel_noise, size=accel_block.shape)
            other_block = other_block + rng.normal(0.0, other_noise, size=other_block.shape)
            windows[step] = np.vstack([accel_block, other_block])
        return windows


def _trajectories_to_dataset(trajectories: list[PdrTrajectory]) -> tuple[ArrayDataset, np.ndarray]:
    """Stack trajectories into a dataset plus aligned trajectory ids."""
    windows = np.concatenate([t.windows for t in trajectories], axis=0)
    displacements = np.concatenate([t.displacements for t in trajectories], axis=0)
    trajectory_ids = np.concatenate(
        [np.full(len(t), index) for index, t in enumerate(trajectories)]
    )
    return ArrayDataset(windows, displacements), trajectory_ids


def make_pdr_task(
    n_seen_users: int = 15,
    n_unseen_users: int = 10,
    n_source_trajectories: int = 2,
    n_target_trajectories: int = 5,
    steps_per_trajectory: int = 60,
    window: int = 20,
    adaptation_fraction: float = 0.8,
    seed: int = 0,
) -> AdaptationTask:
    """Build the full PDR adaptation task.

    The source dataset pools trajectories from the seen users (their "source
    behaviour").  Each user — seen or unseen — then contributes a target
    scenario made of fresh trajectories; seen users keep their profile
    (small domain gap), unseen users were never part of source training
    (large gap).  Each scenario is split into adaptation and test trajectories
    following the paper's 80/20 protocol.
    """
    if not 0.0 < adaptation_fraction < 1.0:
        raise ValueError("adaptation_fraction must be in (0, 1)")
    generator = PdrGenerator(window=window, seed=seed)
    rng = np.random.default_rng(seed + 1)

    seen_profiles = [
        generator.sample_profile(f"seen_user_{index:02d}", seen=True)
        for index in range(n_seen_users)
    ]
    unseen_profiles = [
        generator.sample_profile(f"unseen_user_{index:02d}", seen=False)
        for index in range(n_unseen_users)
    ]

    # Source dataset: seen users' source-time trajectories.
    source_trajectories: list[PdrTrajectory] = []
    for profile in seen_profiles:
        for _ in range(n_source_trajectories):
            source_trajectories.append(
                generator.simulate_trajectory(profile, steps_per_trajectory, rng)
            )
    source_dataset, _ = _trajectories_to_dataset(source_trajectories)
    calibration_size = max(1, len(source_dataset) // 5)
    calibration_indices = rng.choice(len(source_dataset), size=calibration_size, replace=False)
    train_indices = np.setdiff1d(np.arange(len(source_dataset)), calibration_indices)

    scenarios: list[TargetScenario] = []
    for profile in seen_profiles + unseen_profiles:
        trajectories = [
            generator.simulate_trajectory(profile, steps_per_trajectory, rng)
            for _ in range(n_target_trajectories)
        ]
        n_adapt = max(1, int(round(n_target_trajectories * adaptation_fraction)))
        n_adapt = min(n_adapt, n_target_trajectories - 1) if n_target_trajectories > 1 else 1
        adaptation, adaptation_ids = _trajectories_to_dataset(trajectories[:n_adapt])
        test, test_ids = _trajectories_to_dataset(trajectories[n_adapt:] or trajectories[:1])
        hard_adapt = np.concatenate([t.hard_steps for t in trajectories[:n_adapt]])
        scenarios.append(
            TargetScenario(
                name=profile.user_id,
                adaptation=adaptation,
                test=test,
                metadata={
                    "profile": profile.describe(),
                    "group": "seen" if profile.seen else "unseen",
                    "trajectory_ids": adaptation_ids,
                    "test_trajectory_ids": test_ids,
                    "hard_steps": hard_adapt,
                },
            )
        )

    return AdaptationTask(
        name="pdr",
        source_train=source_dataset.subset(train_indices),
        source_calibration=source_dataset.subset(calibration_indices),
        scenarios=scenarios,
        label_dim=2,
        metadata={
            "window": window,
            "n_channels": N_CHANNELS,
            "seen_users": [p.user_id for p in seen_profiles],
            "unseen_users": [p.user_id for p in unseen_profiles],
        },
    )
