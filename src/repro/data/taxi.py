"""Synthetic NYC-taxi-style trip-duration prediction task.

The paper splits the NYC taxi dataset by departure point — Manhattan (target)
versus non-Manhattan (source) — because traffic conditions, and hence trip
durations, depend strongly on the departure district.  This module generates a
tabular substitute:

* features: trip distance, time-of-day encoding, weekday flag, passenger
  count, and pickup coordinates on a simplified city grid;
* the trip duration is distance divided by an effective speed; congestion
  increases smoothly toward the city centre (so the non-Manhattan model sees
  the trend and extrapolates it imperfectly into Manhattan) and during rush
  hours;
* a share of the trips are *hard* records with corrupted features (a stand-in
  for GPS glitches and incomplete meter records); the share is higher in the
  dense target district.  The source model is wrong and uncertain on those,
  while the Manhattan duration distribution estimated from the remaining trips
  is informative — the structure TASFAR exploits.

Inputs are standardized with statistics of the source training split.  The
duration label is kept in minutes; the evaluation uses RMSLE as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.data import ArrayDataset
from .base import AdaptationTask, TargetScenario
from .preprocessing import Standardizer, corrupt_features

__all__ = ["TaxiGenerator", "make_taxi_task", "TAXI_FEATURES"]

TAXI_FEATURES = (
    "trip_distance_km",
    "hour_sin",
    "hour_cos",
    "is_weekday",
    "passenger_count",
    "pickup_x",
    "pickup_y",
)

# Columns corrupted in "hard" records: distance and the time-of-day encoding.
_CORRUPTIBLE_COLUMNS = [0, 1, 2]


@dataclass
class TaxiGenerator:
    """Generator of synthetic taxi trips on a simplified city grid.

    The city is the unit square; "Manhattan" is a central box whose traffic is
    denser.  Durations are in minutes.
    """

    manhattan_box: tuple[float, float, float, float] = (0.4, 0.7, 0.35, 0.75)
    city_center: tuple[float, float] = (0.55, 0.55)
    congestion_strength: float = 0.55
    base_speed_kmh: float = 30.0
    noise_level: float = 0.06
    source_hard_fraction: float = 0.10
    target_hard_fraction: float = 0.30
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def in_manhattan(self, pickup_x: np.ndarray, pickup_y: np.ndarray) -> np.ndarray:
        """Boolean mask of pickups falling inside the Manhattan box."""
        x_low, x_high, y_low, y_high = self.manhattan_box
        return (pickup_x >= x_low) & (pickup_x <= x_high) & (pickup_y >= y_low) & (pickup_y <= y_high)

    def sample_features(
        self, n_samples: int, manhattan: bool, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Sample trip features for the requested district."""
        rng = rng if rng is not None else self._rng
        if manhattan:
            # Trips departing from the dense city centre are mostly short hops,
            # so the target duration distribution is concentrated — the
            # scenario property the label density map captures.
            distance = rng.gamma(shape=2.0, scale=0.9, size=n_samples).clip(0.3, 12.0)
        else:
            distance = rng.gamma(shape=2.2, scale=1.6, size=n_samples).clip(0.3, 30.0)
        hour = rng.uniform(0, 24, size=n_samples)
        hour_sin = np.sin(2 * np.pi * hour / 24.0)
        hour_cos = np.cos(2 * np.pi * hour / 24.0)
        weekday = (rng.random(n_samples) < 5.0 / 7.0).astype(float)
        passengers = rng.integers(1, 6, size=n_samples).astype(float)
        x_low, x_high, y_low, y_high = self.manhattan_box
        if manhattan:
            pickup_x = rng.uniform(x_low, x_high, size=n_samples)
            pickup_y = rng.uniform(y_low, y_high, size=n_samples)
        else:
            pickup_x = np.empty(n_samples)
            pickup_y = np.empty(n_samples)
            filled = 0
            while filled < n_samples:
                candidate_x = rng.uniform(0, 1, size=n_samples)
                candidate_y = rng.uniform(0, 1, size=n_samples)
                outside = ~self.in_manhattan(candidate_x, candidate_y)
                take = min(int(outside.sum()), n_samples - filled)
                pickup_x[filled : filled + take] = candidate_x[outside][:take]
                pickup_y[filled : filled + take] = candidate_y[outside][:take]
                filled += take
        return np.column_stack(
            [distance, hour_sin, hour_cos, weekday, passengers, pickup_x, pickup_y]
        )

    def duration_minutes(self, features: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        """Trip duration in minutes for the given features."""
        rng = rng if rng is not None else self._rng
        distance = features[:, 0]
        hour_sin = features[:, 1]
        hour_cos = features[:, 2]
        weekday = features[:, 3]
        pickup_x = features[:, 5]
        pickup_y = features[:, 6]

        hour = (np.arctan2(hour_sin, hour_cos) / (2 * np.pi) * 24.0) % 24.0
        rush = np.exp(-((hour - 8.5) ** 2) / 4.0) + np.exp(-((hour - 17.5) ** 2) / 4.0)
        center_x, center_y = self.city_center
        center_distance = np.sqrt((pickup_x - center_x) ** 2 + (pickup_y - center_y) ** 2)
        # Congestion grows smoothly toward the centre; trips from the centre of
        # Manhattan can be slowed down by more than half.
        congestion = 1.0 + self.congestion_strength * np.exp(-center_distance / 0.25)
        congestion *= 1.0 + 0.3 * rush * weekday
        speed = self.base_speed_kmh / congestion
        duration_hours = distance / np.maximum(speed, 3.0)
        duration = duration_hours * 60.0
        duration *= np.exp(rng.normal(0.0, self.noise_level, size=len(features)))
        return np.clip(duration, 1.0, 240.0)

    def sample_dataset(
        self,
        n_samples: int,
        manhattan: bool,
        hard_fraction: float,
        rng: np.random.Generator | None = None,
    ) -> tuple[ArrayDataset, np.ndarray]:
        """Sample a labelled dataset; returns the dataset and its hard-row mask."""
        rng = rng if rng is not None else self._rng
        features = self.sample_features(n_samples, manhattan, rng)
        durations = self.duration_minutes(features, rng)
        hard_mask = rng.random(n_samples) < hard_fraction
        observed = corrupt_features(
            features, hard_mask, rng, feature_indices=_CORRUPTIBLE_COLUMNS
        )
        return ArrayDataset(observed, durations), hard_mask


def make_taxi_task(
    n_source: int = 800,
    n_target: int = 400,
    adaptation_fraction: float = 0.8,
    seed: int = 0,
) -> AdaptationTask:
    """Build the taxi-duration adaptation task (source: non-Manhattan, target: Manhattan)."""
    generator = TaxiGenerator(seed=seed)
    rng = np.random.default_rng(seed + 1)

    source, source_hard = generator.sample_dataset(
        n_source, manhattan=False, hard_fraction=generator.source_hard_fraction, rng=rng
    )
    target, target_hard = generator.sample_dataset(
        n_target, manhattan=True, hard_fraction=generator.target_hard_fraction, rng=rng
    )

    scaler = Standardizer().fit(source.inputs)
    source = ArrayDataset(scaler.transform(source.inputs), source.targets)
    target = ArrayDataset(scaler.transform(target.inputs), target.targets)

    calibration_size = max(1, n_source // 5)
    calibration_indices = rng.choice(len(source), size=calibration_size, replace=False)
    train_indices = np.setdiff1d(np.arange(len(source)), calibration_indices)

    indices = rng.permutation(len(target))
    n_adapt = max(1, int(round(len(target) * adaptation_fraction)))
    n_adapt = min(n_adapt, len(target) - 1)
    adapt_idx, test_idx = indices[:n_adapt], indices[n_adapt:]
    scenario = TargetScenario(
        name="manhattan",
        adaptation=target.subset(adapt_idx),
        test=target.subset(test_idx),
        metadata={
            "district": "manhattan",
            "hard_mask": target_hard[adapt_idx],
            "test_hard_mask": target_hard[test_idx],
        },
    )
    return AdaptationTask(
        name="taxi",
        source_train=source.subset(train_indices),
        source_calibration=source.subset(calibration_indices),
        scenarios=[scenario],
        label_dim=1,
        metadata={
            "features": list(TAXI_FEATURES),
            "source_hard_mask": source_hard,
            "scaler": scaler,
        },
    )
