"""Non-stationary stream generators built from the existing adaptation tasks.

Every :class:`~repro.data.TargetScenario` (a PDR user, a crowd scene, a taxi
district, a housing segment) becomes a *stream* of event batches whose label
distribution changes over time.  The generator never fabricates labels: it
splits the scenario's own samples into two **regimes** by label magnitude
(the lower-label half vs. the upper-label half) and varies, per step, the
probability of drawing from the drifted regime.  Shifting between halves of
the real label distribution is a genuine label-distribution drift — exactly
what the streaming service's density-map drift monitor must catch — while
inputs and labels stay jointly realistic.

Drift kinds (``DRIFT_KINDS``):

* ``sudden`` — the stream switches regimes at ``drift_point`` in one step;
* ``gradual`` — the drifted-regime probability ramps linearly from 0 to 1;
* ``recurring`` — the regimes alternate with a fixed cycle length;
* ``noise_burst`` — the label distribution stays put, but a window of steps
  carries heavy input noise (a sensor glitch, not a regime change — a good
  false-alarm probe for drift detectors).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .base import AdaptationTask, TargetScenario

__all__ = [
    "DRIFT_KINDS",
    "StreamBatch",
    "NonStationaryStream",
    "make_drift_stream",
    "make_drift_streams",
]

DRIFT_KINDS = ("sudden", "gradual", "recurring", "noise_burst")


@dataclass
class StreamBatch:
    """One step of a non-stationary stream.

    ``targets`` are carried for *evaluation only* — the streaming service
    ingests ``inputs`` alone, mirroring the unlabeled-at-adaptation-time
    contract of the batch tasks.
    """

    step: int
    inputs: np.ndarray
    targets: np.ndarray
    mix: float  #: probability of the drifted regime at this step
    n_drifted: int  #: samples actually drawn from the drifted regime
    noisy: bool = False  #: whether this batch carries burst noise

    def __len__(self) -> int:
        return len(self.inputs)


@dataclass
class NonStationaryStream:
    """A full generated stream: ordered batches plus its provenance."""

    name: str
    kind: str
    batches: list[StreamBatch]
    metadata: dict = field(default_factory=dict)

    @property
    def n_steps(self) -> int:
        """Number of batches in the stream."""
        return len(self.batches)

    @property
    def n_events(self) -> int:
        """Total samples across all batches."""
        return sum(len(batch) for batch in self.batches)

    def all_inputs(self) -> np.ndarray:
        """Every input of the stream, concatenated in arrival order."""
        return np.concatenate([batch.inputs for batch in self.batches], axis=0)

    def all_targets(self) -> np.ndarray:
        """Every (evaluation-only) label, concatenated in arrival order."""
        return np.concatenate([batch.targets for batch in self.batches], axis=0)

    def mix_schedule(self) -> list[float]:
        """The drifted-regime probability at every step."""
        return [batch.mix for batch in self.batches]


def _mix_at(kind: str, step: int, n_steps: int, drift_point: float, cycle: int) -> float:
    """Probability of the drifted regime at ``step`` (0-based) for ``kind``."""
    if kind == "sudden":
        return 1.0 if step >= drift_point * n_steps else 0.0
    if kind == "gradual":
        return step / max(n_steps - 1, 1)
    if kind == "recurring":
        return 1.0 if (step // cycle) % 2 == 1 else 0.0
    if kind == "noise_burst":
        return 0.0
    raise ValueError(f"unknown drift kind {kind!r}; expected one of {DRIFT_KINDS}")


def make_drift_stream(
    scenario: TargetScenario,
    kind: str = "sudden",
    n_steps: int = 20,
    batch_size: int = 16,
    drift_point: float = 0.5,
    cycle: int | None = None,
    noise_scale: float = 2.0,
    seed: int = 0,
) -> NonStationaryStream:
    """Turn one target scenario into a non-stationary event stream.

    Parameters
    ----------
    scenario:
        Any existing target scenario; its pooled (adaptation + test)
        samples form the two regime pools.
    kind:
        One of :data:`DRIFT_KINDS`.
    n_steps, batch_size:
        Stream length in batches and samples per batch.  Samples are drawn
        with replacement, so any stream size works for any scenario.
    drift_point:
        For ``sudden``: fraction of the stream after which the drifted
        regime takes over.
    cycle:
        For ``recurring``: steps per regime phase (default: a quarter of
        the stream, at least one).
    noise_scale:
        For ``noise_burst``: input noise amplitude in units of the pooled
        per-feature standard deviation, applied to the middle third of the
        stream.
    seed:
        Generator seed; the stream is a pure function of
        ``(scenario, kind, sizes, seed)``.
    """
    if kind not in DRIFT_KINDS:
        raise ValueError(f"unknown drift kind {kind!r}; expected one of {DRIFT_KINDS}")
    if n_steps < 1:
        raise ValueError("n_steps must be at least 1")
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    pooled = scenario.pooled()
    if len(pooled) < 2:
        raise ValueError(f"scenario {scenario.name!r} has too few samples to stream")
    cycle = max(1, n_steps // 4) if cycle is None else max(1, int(cycle))

    # Two regimes: the lower- and upper-label halves of the scenario's own
    # (input, label) pairs.  Magnitude is the label norm, so the split works
    # for 1-D and multi-dimensional labels alike.
    magnitudes = np.linalg.norm(pooled.targets, axis=1)
    order = np.argsort(magnitudes, kind="stable")
    half = len(order) // 2
    base_pool, drift_pool = order[:half], order[half:]

    rng = np.random.default_rng(seed)
    noise_std = pooled.inputs.std(axis=0)
    burst_start, burst_stop = n_steps // 3, max(n_steps // 3 + 1, (2 * n_steps) // 3)

    batches: list[StreamBatch] = []
    for step in range(n_steps):
        mix = _mix_at(kind, step, n_steps, drift_point, cycle)
        n_drifted = int(rng.binomial(batch_size, mix))
        chosen = np.concatenate(
            [
                rng.choice(base_pool, size=batch_size - n_drifted, replace=True),
                rng.choice(drift_pool, size=n_drifted, replace=True),
            ]
        )
        rng.shuffle(chosen)
        inputs = pooled.inputs[chosen].copy()
        noisy = kind == "noise_burst" and burst_start <= step < burst_stop
        if noisy:
            inputs = inputs + noise_scale * noise_std * rng.standard_normal(inputs.shape)
        batches.append(
            StreamBatch(
                step=step,
                inputs=inputs,
                targets=pooled.targets[chosen].copy(),
                mix=float(mix),
                n_drifted=n_drifted,
                noisy=noisy,
            )
        )
    return NonStationaryStream(
        name=scenario.name,
        kind=kind,
        batches=batches,
        metadata={
            "seed": int(seed),
            "batch_size": int(batch_size),
            "drift_point": float(drift_point),
            "cycle": int(cycle),
            "noise_scale": float(noise_scale),
            "n_pool": int(len(pooled)),
        },
    )


def make_drift_streams(
    task: AdaptationTask,
    kind: str = "sudden",
    n_steps: int = 20,
    batch_size: int = 16,
    seed: int = 0,
    only: list[str] | None = None,
    **kwargs,
) -> dict[str, NonStationaryStream]:
    """One non-stationary stream per target scenario of ``task``.

    Each scenario gets its own seed derived from its position in the task,
    so streams are mutually independent, the fleet is reproducible from one
    ``seed``, and restricting to a subset (``only``) leaves the surviving
    scenarios' streams unchanged.
    """
    selected = None if only is None else set(only)
    return {
        scenario.name: make_drift_stream(
            scenario,
            kind=kind,
            n_steps=n_steps,
            batch_size=batch_size,
            seed=seed + index,
            **kwargs,
        )
        for index, scenario in enumerate(task.scenarios)
        if selected is None or scenario.name in selected
    }
