"""Synthetic California-housing-style price-prediction task.

The paper forms a domain gap by splitting the California housing dataset into
non-coastal (source) and coastal (target) districts: location is a strong
price factor, so a model trained inland degrades on coastal blocks.  The
Kaggle dataset is unavailable offline, so this module generates a tabular
substitute with the same structure:

* eight features mirroring the original schema (median income, house age,
  average rooms/bedrooms, population, occupancy, latitude, longitude);
* the price depends non-linearly on income and rooms and rises smoothly toward
  the coast (westward longitude gradient), so the inland model transfers
  imperfectly but not hopelessly to the coastal range it never saw;
* coastal blocks additionally have a different feature mix (higher incomes,
  older houses) and a higher share of *hard* records — rows whose informative
  columns are corrupted, standing in for incomplete or atypical listings.  The
  source model is both wrong and uncertain on those rows, while the coastal
  price distribution estimated from the remaining rows is informative: exactly
  the structure TASFAR exploits.

Inputs are standardized with statistics of the source training split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn.data import ArrayDataset
from .base import AdaptationTask, TargetScenario
from .preprocessing import Standardizer, corrupt_features

__all__ = ["HousingGenerator", "make_housing_task", "HOUSING_FEATURES"]

HOUSING_FEATURES = (
    "median_income",
    "house_age",
    "average_rooms",
    "average_bedrooms",
    "population",
    "average_occupancy",
    "latitude",
    "longitude",
)

# Columns corrupted in "hard" records: income, rooms, bedrooms, occupancy.
_CORRUPTIBLE_COLUMNS = [0, 2, 3, 5]


@dataclass
class HousingGenerator:
    """Generator of synthetic housing districts.

    Prices are expressed in units of 100k dollars, like the original dataset.
    """

    coastal_longitude_threshold: float = -121.0
    coast_gradient: float = 0.12
    noise_level: float = 0.2
    source_hard_fraction: float = 0.10
    target_hard_fraction: float = 0.30
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def sample_features(
        self, n_samples: int, coastal: bool, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Sample raw district features for coastal or inland blocks."""
        rng = rng if rng is not None else self._rng
        income_shift = 0.3 if coastal else 0.0
        income = rng.gamma(shape=2.5, scale=1.2, size=n_samples) + income_shift
        house_age = rng.uniform(2, 52, size=n_samples) + (3.0 if coastal else 0.0)
        rooms = rng.normal(5.4, 1.1, size=n_samples).clip(2.0, 10.0)
        bedrooms = (rooms / rng.normal(4.8, 0.5, size=n_samples).clip(3.0, 7.0)).clip(0.5, 3.0)
        population = rng.gamma(shape=2.0, scale=700.0, size=n_samples)
        occupancy = rng.normal(3.0, 0.7, size=n_samples).clip(1.0, 6.0)
        latitude = rng.uniform(32.5, 42.0, size=n_samples)
        if coastal:
            longitude = rng.uniform(-124.3, self.coastal_longitude_threshold, size=n_samples)
        else:
            longitude = rng.uniform(self.coastal_longitude_threshold, -114.0, size=n_samples)
        return np.column_stack(
            [income, house_age, rooms, bedrooms, population, occupancy, latitude, longitude]
        )

    def price(self, features: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        """Median house value (in 100k dollars) for the given features.

        The westward gradient term is continuous across the coastal threshold,
        so a model trained inland sees the trend and extrapolates it, while
        the non-linear income interactions still degrade under the coastal
        covariate shift.
        """
        rng = rng if rng is not None else self._rng
        income = features[:, 0]
        house_age = features[:, 1]
        rooms = features[:, 2]
        occupancy = features[:, 5]
        longitude = features[:, 7]

        base = 0.45 * income + 0.08 * np.sqrt(np.maximum(income, 0.0)) * rooms
        base += 0.004 * (52 - np.clip(house_age, 0, 60))
        base -= 0.05 * (occupancy - 3.0)
        # Westward gradient: -114 (east) contributes 0, -124.3 (coast) ~ +1.2.
        base += self.coast_gradient * (-114.0 - longitude)
        noise = rng.normal(0.0, self.noise_level, size=len(features))
        return np.clip(base + noise, 0.3, 15.0)

    def sample_dataset(
        self,
        n_samples: int,
        coastal: bool,
        hard_fraction: float,
        rng: np.random.Generator | None = None,
    ) -> tuple[ArrayDataset, np.ndarray]:
        """Sample a labelled dataset; returns the dataset and its hard-row mask.

        Prices are computed from the clean features; the hard rows are then
        corrupted in feature space only, so their labels remain faithful to
        the district's price distribution.
        """
        rng = rng if rng is not None else self._rng
        features = self.sample_features(n_samples, coastal, rng)
        prices = self.price(features, rng)
        hard_mask = rng.random(n_samples) < hard_fraction
        observed = corrupt_features(
            features, hard_mask, rng, feature_indices=_CORRUPTIBLE_COLUMNS
        )
        return ArrayDataset(observed, prices), hard_mask


def make_housing_task(
    n_source: int = 800,
    n_target: int = 400,
    adaptation_fraction: float = 0.8,
    seed: int = 0,
) -> AdaptationTask:
    """Build the housing-price adaptation task (source: inland, target: coastal)."""
    generator = HousingGenerator(seed=seed)
    rng = np.random.default_rng(seed + 1)

    source, source_hard = generator.sample_dataset(
        n_source, coastal=False, hard_fraction=generator.source_hard_fraction, rng=rng
    )
    target, target_hard = generator.sample_dataset(
        n_target, coastal=True, hard_fraction=generator.target_hard_fraction, rng=rng
    )

    scaler = Standardizer().fit(source.inputs)
    source = ArrayDataset(scaler.transform(source.inputs), source.targets)
    target = ArrayDataset(scaler.transform(target.inputs), target.targets)

    calibration_size = max(1, n_source // 5)
    calibration_indices = rng.choice(len(source), size=calibration_size, replace=False)
    train_indices = np.setdiff1d(np.arange(len(source)), calibration_indices)

    indices = rng.permutation(len(target))
    n_adapt = max(1, int(round(len(target) * adaptation_fraction)))
    n_adapt = min(n_adapt, len(target) - 1)
    adapt_idx, test_idx = indices[:n_adapt], indices[n_adapt:]
    scenario = TargetScenario(
        name="coastal",
        adaptation=target.subset(adapt_idx),
        test=target.subset(test_idx),
        metadata={
            "district": "coastal",
            "hard_mask": target_hard[adapt_idx],
            "test_hard_mask": target_hard[test_idx],
        },
    )
    return AdaptationTask(
        name="housing",
        source_train=source.subset(train_indices),
        source_calibration=source.subset(calibration_indices),
        scenarios=[scenario],
        label_dim=1,
        metadata={
            "features": list(HOUSING_FEATURES),
            "source_hard_mask": source_hard,
            "scaler": scaler,
        },
    )
