"""Crowd-counting experiments: Table I, Fig. 19 and Fig. 20.

* Table I — MAE/MSE of every scheme on the adaptation set (whole and uncertain
  subset) and on the test set, pooled over the target scenes.
* Fig. 19 — per-scene test-set comparison of the schemes.
* Fig. 20 — TASFAR with the target data partitioned by scene (one adaptation
  per scene) versus pooled across scenes (a single adaptation).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..baselines import TasfarAdapter
from ..core import TasfarConfig
from ..data import merge_scenarios
from ..metrics import mae
from .base import ExperimentResult, get_bundle
from .comparison import get_comparison

__all__ = ["table1_crowd_counting", "fig19_counting_scenes", "fig20_partitioning"]


def table1_crowd_counting(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Table I: MAE/MSE per scheme on adaptation (whole / uncertain) and test sets."""
    comparison = get_comparison("crowd", scale, seed)
    rows = []
    base = {
        split: {
            metric: comparison.mean_metric("baseline", split, metric)
            for metric in ("mae", "mse")
        }
        for split in ("adaptation", "adaptation_uncertain", "test")
    }
    for scheme in comparison.schemes:
        row: list[object] = [scheme]
        for split in ("adaptation", "adaptation_uncertain", "test"):
            for metric in ("mae", "mse"):
                value = comparison.mean_metric(scheme, split, metric)
                row.append(value)
        for split in ("adaptation", "adaptation_uncertain", "test"):
            for metric in ("mae", "mse"):
                value = comparison.mean_metric(scheme, split, metric)
                reference = base[split][metric]
                row.append((reference - value) / reference if reference else 0.0)
        rows.append(row)
    value_columns = [
        f"{metric}_{split}"
        for split in ("adapt", "adapt_unc", "test")
        for metric in ("mae", "mse")
    ]
    reduction_columns = [
        f"red_{metric}_{split}"
        for split in ("adapt", "adapt_unc", "test")
        for metric in ("mae", "mse")
    ]
    return ExperimentResult(
        experiment_id="table1_crowd_counting",
        description="Crowd counting: MAE/MSE per scheme on adaptation (whole/uncertain) and test sets",
        columns=["scheme"] + value_columns + reduction_columns,
        rows=rows,
        paper_expectation=(
            "the baseline is much worse on the uncertain subset; TASFAR clearly outperforms "
            "AUGfree/Datafree and is comparable to the source-based MMD/ADV schemes, with the "
            "largest reductions on the uncertain subset"
        ),
    )


def fig19_counting_scenes(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Per-scene test-set MAE reduction for a subset of schemes."""
    comparison = get_comparison("crowd", scale, seed)
    schemes = [scheme for scheme in comparison.schemes if scheme != "baseline"]
    rows = []
    for evaluation in comparison.evaluations:
        base = evaluation.metrics["baseline"]["test"]["mae"]
        row: list[object] = [evaluation.scenario]
        for scheme in schemes:
            value = evaluation.metrics[scheme]["test"]["mae"]
            row.append((base - value) / base if base else 0.0)
        rows.append(row)
    return ExperimentResult(
        experiment_id="fig19_counting_scenes",
        description="Test-set MAE reduction per crowd scene and scheme",
        columns=["scene"] + [f"red_{scheme}" for scheme in schemes],
        rows=rows,
        paper_expectation=(
            "TASFAR outperforms the source-free schemes in every scene and is comparable to "
            "source-based UDA; the most crowded, most regular scene benefits clearly"
        ),
    )


def fig20_partitioning(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """TASFAR with per-scene adaptation vs. one pooled adaptation over all scenes."""
    bundle = get_bundle("crowd", scale, seed)
    config = TasfarConfig(seed=seed)

    # Partitioned: adapt separately per scene (re-use the cached comparison).
    comparison = get_comparison("crowd", scale, seed)

    # Pooled: one adaptation on the union of the scenes' adaptation sets.
    pooled_scenario = merge_scenarios(bundle.task.scenarios, name="pooled")
    adapter = TasfarAdapter(config)
    adapter.calibration = bundle.calibration
    pooled_result = adapter.adapt(bundle.source_model, pooled_scenario.adaptation.inputs)
    pooled_trainer = nn.Trainer(pooled_result.target_model)

    rows = []
    for scenario in bundle.task.scenarios:
        evaluation = comparison.scenario(scenario.name)
        base = evaluation.metrics["baseline"]["test"]["mae"]
        partitioned = evaluation.metrics["tasfar"]["test"]["mae"]
        pooled_pred = pooled_trainer.predict(scenario.test.inputs)
        pooled = mae(pooled_pred, scenario.test.targets)
        rows.append(
            [
                scenario.name,
                base,
                partitioned,
                pooled,
                (base - partitioned) / base if base else 0.0,
                (base - pooled) / base if base else 0.0,
            ]
        )
    return ExperimentResult(
        experiment_id="fig20_partitioning",
        description="TASFAR test MAE with per-scene adaptation vs. pooled adaptation",
        columns=["scene", "baseline_mae", "partitioned_mae", "pooled_mae", "red_partitioned", "red_pooled"],
        rows=rows,
        paper_expectation=(
            "per-scene (partitioned) adaptation beats pooled adaptation in every scene, "
            "though pooled adaptation still helps"
        ),
    )
