"""Fig. 21: the two tabular prediction tasks (housing prices, taxi durations).

The paper reports that TASFAR reduces 22% of the MSE on California housing
prices (coastal target district) and 28% of the RMSLE on NYC taxi-trip
durations (Manhattan target district), validating the approach beyond the two
sensing tasks.  This experiment reports the same reductions for every scheme.
"""

from __future__ import annotations

from .base import ExperimentResult
from .comparison import get_comparison

__all__ = ["fig21_prediction_tasks"]


def fig21_prediction_tasks(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Error reduction on the housing (MSE) and taxi (RMSLE) tasks per scheme."""
    housing = get_comparison("housing", scale, seed)
    taxi = get_comparison("taxi", scale, seed)
    rows = []
    for scheme in housing.schemes:
        if scheme == "baseline":
            continue
        rows.append(
            [
                scheme,
                housing.mean_reduction(scheme, "adaptation", "mse"),
                housing.mean_reduction(scheme, "test", "mse"),
                taxi.mean_reduction(scheme, "adaptation", "rmsle"),
                taxi.mean_reduction(scheme, "test", "rmsle"),
            ]
        )
    baseline_row = [
        "baseline_error",
        housing.mean_metric("baseline", "adaptation", "mse"),
        housing.mean_metric("baseline", "test", "mse"),
        taxi.mean_metric("baseline", "adaptation", "rmsle"),
        taxi.mean_metric("baseline", "test", "rmsle"),
    ]
    rows.append(baseline_row)
    return ExperimentResult(
        experiment_id="fig21_prediction_tasks",
        description="Housing MSE reduction and taxi RMSLE reduction per scheme",
        columns=[
            "scheme",
            "housing_mse_red_adapt",
            "housing_mse_red_test",
            "taxi_rmsle_red_adapt",
            "taxi_rmsle_red_test",
        ],
        rows=rows,
        paper_expectation=(
            "TASFAR reduces housing MSE (~22% in the paper) and taxi RMSLE (~28%), clearly "
            "outperforming the other source-free schemes"
        ),
    )
