"""Fig. 13: adaptation learning curves and the loss-drop early-stop heuristic.

The adaptation is unsupervised, so the paper stops training when the rate at
which the training loss drops collapses — the early large drops correspond to
fitting the high-credibility pseudo-labels.  This experiment records the
adaptation loss curves of two users and where the early-stop rule fires.
"""

from __future__ import annotations

import numpy as np

from ..core import LossDropEarlyStopper, TasfarConfig
from .base import ExperimentResult, get_bundle

__all__ = ["fig13_learning_curves"]


def fig13_learning_curves(
    scale: str = "small", seed: int = 0, n_users: int = 2, epochs: int = 20
) -> ExperimentResult:
    """Adaptation loss per epoch for a couple of users, with early-stop epochs."""
    bundle = get_bundle("pdr", scale, seed)
    config = TasfarConfig(adaptation_epochs=epochs, early_stop=False, seed=seed)
    tasfar = bundle.tasfar(config)

    curves: dict[str, list[float]] = {}
    stop_epochs: dict[str, int | None] = {}
    for scenario in bundle.task.scenarios[:n_users]:
        result = tasfar.adapt(bundle.source_model, scenario.adaptation.inputs, bundle.calibration)
        curves[scenario.name] = result.losses
        stopper = LossDropEarlyStopper(
            drop_fraction=config.early_stop_drop_fraction,
            patience=config.early_stop_patience,
            min_epochs=config.min_adaptation_epochs,
        )
        stop_epoch = None
        for epoch, loss in enumerate(result.losses):
            if stopper.update(loss):
                stop_epoch = epoch + 1
                break
        stop_epochs[scenario.name] = stop_epoch

    users = list(curves)
    max_epochs = max(len(curve) for curve in curves.values())
    rows = []
    for epoch in range(max_epochs):
        row: list[object] = [epoch + 1]
        for user in users:
            curve = curves[user]
            row.append(curve[epoch] if epoch < len(curve) else np.nan)
        rows.append(row)
    return ExperimentResult(
        experiment_id="fig13_learning_curves",
        description="Adaptation training-loss curves with loss-drop early stopping",
        columns=["epoch"] + [f"loss_{user}" for user in users],
        rows=rows,
        paper_expectation=(
            "losses drop steeply in the first epochs and flatten; the early-stop rule fires "
            "when the drop rate collapses"
        ),
        notes={"stop_epochs": stop_epochs},
    )
