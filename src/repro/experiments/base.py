"""Shared infrastructure for the per-figure experiment harness.

Every experiment in :mod:`repro.experiments` is a function taking a *scale*
(``"small"`` for tests/benchmarks, ``"full"`` for a closer-to-paper run) and
returning an :class:`ExperimentResult` — a structured record of the rows or
series the corresponding paper figure/table reports, plus a short note about
the expected shape from the paper.

Because several figures share the same expensive preparation (generate the
task, train the source model, calibrate TASFAR), the harness builds cached
:class:`TaskBundle` objects keyed by ``(task, scale, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..core import SourceCalibration, Tasfar, TasfarConfig
from ..data import (
    AdaptationTask,
    make_crowd_task,
    make_housing_task,
    make_pdr_task,
    make_taxi_task,
)
from ..metrics import format_table

__all__ = [
    "ScaleProfile",
    "SCALES",
    "ExperimentResult",
    "TaskBundle",
    "get_bundle",
    "clear_bundle_cache",
]


@dataclass(frozen=True)
class ScaleProfile:
    """Sizes used when generating data and training models for experiments."""

    name: str
    # PDR
    pdr_seen_users: int
    pdr_unseen_users: int
    pdr_source_trajectories: int
    pdr_target_trajectories: int
    pdr_steps: int
    pdr_window: int
    pdr_channels: tuple[int, ...]
    pdr_epochs: int
    # Crowd counting
    crowd_source_images: int
    crowd_images_per_scene: int
    crowd_image_size: int
    crowd_epochs: int
    # Tabular tasks
    tabular_source: int
    tabular_target: int
    tabular_epochs: int
    # Baseline adaptation budgets
    baseline_epochs: int


SCALES: dict[str, ScaleProfile] = {
    "tiny": ScaleProfile(
        name="tiny",
        pdr_seen_users=2,
        pdr_unseen_users=1,
        pdr_source_trajectories=1,
        pdr_target_trajectories=2,
        pdr_steps=40,
        pdr_window=12,
        pdr_channels=(8, 8),
        pdr_epochs=15,
        crowd_source_images=60,
        crowd_images_per_scene=24,
        crowd_image_size=10,
        crowd_epochs=12,
        tabular_source=200,
        tabular_target=120,
        tabular_epochs=25,
        baseline_epochs=5,
    ),
    "small": ScaleProfile(
        name="small",
        pdr_seen_users=4,
        pdr_unseen_users=3,
        pdr_source_trajectories=3,
        pdr_target_trajectories=3,
        pdr_steps=80,
        pdr_window=20,
        pdr_channels=(16, 16),
        pdr_epochs=60,
        crowd_source_images=120,
        crowd_images_per_scene=45,
        crowd_image_size=12,
        crowd_epochs=30,
        tabular_source=500,
        tabular_target=250,
        tabular_epochs=50,
        baseline_epochs=12,
    ),
    "full": ScaleProfile(
        name="full",
        pdr_seen_users=15,
        pdr_unseen_users=10,
        pdr_source_trajectories=3,
        pdr_target_trajectories=5,
        pdr_steps=100,
        pdr_window=20,
        pdr_channels=(16, 16),
        pdr_epochs=80,
        crowd_source_images=400,
        crowd_images_per_scene=120,
        crowd_image_size=16,
        crowd_epochs=60,
        tabular_source=1500,
        tabular_target=600,
        tabular_epochs=80,
        baseline_epochs=20,
    ),
}


@dataclass
class ExperimentResult:
    """Structured result of one reproduced figure or table."""

    experiment_id: str
    description: str
    columns: list[str]
    rows: list[list[object]]
    paper_expectation: str = ""
    notes: dict = field(default_factory=dict)

    def summary(self) -> str:
        """Human-readable rendering of the result (printed by the CLI and benches)."""
        header = f"[{self.experiment_id}] {self.description}"
        table = format_table(self.columns, self.rows)
        expectation = f"paper expectation: {self.paper_expectation}" if self.paper_expectation else ""
        return "\n".join(part for part in (header, table, expectation) if part)

    def row_dicts(self) -> list[dict[str, object]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]


@dataclass
class TaskBundle:
    """A prepared task: data, trained source model and TASFAR source calibration."""

    task: AdaptationTask
    source_model: nn.RegressionModel
    trainer: nn.Trainer
    calibration: SourceCalibration
    scale: ScaleProfile
    seed: int
    training_history: nn.TrainingHistory

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Deterministic source-model predictions."""
        return self.trainer.predict(inputs)

    def tasfar(self, config: TasfarConfig | None = None) -> Tasfar:
        """A TASFAR instance with a default or custom configuration."""
        return Tasfar(config if config is not None else TasfarConfig())


_BUNDLE_CACHE: dict[tuple[str, str, int], TaskBundle] = {}


def clear_bundle_cache() -> None:
    """Drop all cached bundles (used by tests to control memory)."""
    _BUNDLE_CACHE.clear()


def get_bundle(task_name: str, scale: str = "small", seed: int = 0) -> TaskBundle:
    """Build (or fetch from cache) the bundle for one of the four tasks."""
    key = (task_name, scale, seed)
    if key in _BUNDLE_CACHE:
        return _BUNDLE_CACHE[key]
    profile = SCALES[scale]
    builder = {
        "pdr": _build_pdr_bundle,
        "crowd": _build_crowd_bundle,
        "housing": _build_housing_bundle,
        "taxi": _build_taxi_bundle,
    }.get(task_name)
    if builder is None:
        raise ValueError(f"unknown task {task_name!r}; expected pdr, crowd, housing or taxi")
    bundle = builder(profile, seed)
    _BUNDLE_CACHE[key] = bundle
    return bundle


def _calibrate(
    model: nn.RegressionModel, task: AdaptationTask
) -> SourceCalibration:
    tasfar = Tasfar(TasfarConfig())
    return tasfar.calibrate_on_source(
        model, task.source_calibration.inputs, task.source_calibration.targets
    )


def _build_pdr_bundle(profile: ScaleProfile, seed: int) -> TaskBundle:
    task = make_pdr_task(
        n_seen_users=profile.pdr_seen_users,
        n_unseen_users=profile.pdr_unseen_users,
        n_source_trajectories=profile.pdr_source_trajectories,
        n_target_trajectories=profile.pdr_target_trajectories,
        steps_per_trajectory=profile.pdr_steps,
        window=profile.pdr_window,
        seed=seed,
    )
    model = nn.build_tcn_regressor(
        in_channels=task.metadata["n_channels"],
        window_length=profile.pdr_window,
        output_dim=2,
        channel_sizes=profile.pdr_channels,
        dropout=0.2,
        seed=seed,
    )
    trainer = nn.Trainer(model, lr=2e-3)
    history = trainer.fit(
        task.source_train,
        epochs=profile.pdr_epochs,
        batch_size=32,
        rng=np.random.default_rng(seed),
    )
    return TaskBundle(task, model, trainer, _calibrate(model, task), profile, seed, history)


def _build_crowd_bundle(profile: ScaleProfile, seed: int) -> TaskBundle:
    task = make_crowd_task(
        n_source_images=profile.crowd_source_images,
        n_target_images_per_scene=profile.crowd_images_per_scene,
        image_size=profile.crowd_image_size,
        seed=seed,
    )
    model = nn.build_mcnn_counter(
        image_size=profile.crowd_image_size,
        column_channels=(3, 4, 5),
        column_kernels=(3, 5, 7),
        dropout=0.2,
        seed=seed,
    )
    trainer = nn.Trainer(model, lr=2e-3)
    history = trainer.fit(
        task.source_train,
        epochs=profile.crowd_epochs,
        batch_size=16,
        rng=np.random.default_rng(seed),
    )
    return TaskBundle(task, model, trainer, _calibrate(model, task), profile, seed, history)


def _build_housing_bundle(profile: ScaleProfile, seed: int) -> TaskBundle:
    task = make_housing_task(
        n_source=profile.tabular_source,
        n_target=profile.tabular_target,
        seed=seed,
    )
    model = nn.build_mlp(
        input_dim=task.source_train.inputs.shape[1],
        output_dim=1,
        hidden_dims=(32, 16),
        dropout=0.2,
        seed=seed,
    )
    trainer = nn.Trainer(model, lr=3e-3)
    history = trainer.fit(
        task.source_train,
        epochs=profile.tabular_epochs,
        batch_size=32,
        rng=np.random.default_rng(seed),
    )
    return TaskBundle(task, model, trainer, _calibrate(model, task), profile, seed, history)


def _build_taxi_bundle(profile: ScaleProfile, seed: int) -> TaskBundle:
    task = make_taxi_task(
        n_source=profile.tabular_source,
        n_target=profile.tabular_target,
        seed=seed,
    )
    model = nn.build_mlp(
        input_dim=task.source_train.inputs.shape[1],
        output_dim=1,
        hidden_dims=(32, 16),
        dropout=0.2,
        seed=seed,
    )
    trainer = nn.Trainer(model, lr=3e-3)
    history = trainer.fit(
        task.source_train,
        epochs=profile.tabular_epochs,
        batch_size=32,
        rng=np.random.default_rng(seed),
    )
    return TaskBundle(task, model, trainer, _calibrate(model, task), profile, seed, history)
