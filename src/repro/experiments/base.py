"""Shared infrastructure for the per-figure experiment harness.

Every experiment in :mod:`repro.experiments` is a function taking a *scale*
(``"small"`` for tests/benchmarks, ``"full"`` for a closer-to-paper run) and
returning an :class:`ExperimentResult` — a structured record of the rows or
series the corresponding paper figure/table reports, plus a short note about
the expected shape from the paper.

Because several figures share the same expensive preparation (generate the
task, train the source model, calibrate TASFAR), the harness builds cached
:class:`TaskBundle` objects keyed by ``(task, scale, seed)``.  Which tasks
exist — and how their data, models, and training recipes are built — lives
in the :class:`~repro.data.TaskSpec` registry (:mod:`repro.data.tasks`);
this module only drives it, so registering a new task never requires an
experiments-layer edit.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..core import SourceCalibration, Tasfar, TasfarConfig
from ..data import AdaptationTask
from ..data.tasks import (
    SCALES,
    ScaleProfile,
    TaskSpec,
    get_task_spec,
    on_task_registry_change,
    task_names,
)
from ..metrics import format_table

__all__ = [
    "ScaleProfile",
    "SCALES",
    "ExperimentResult",
    "TaskBundle",
    "get_bundle",
    "clear_bundle_cache",
    "task_names",
]


@dataclass
class ExperimentResult:
    """Structured result of one reproduced figure or table."""

    experiment_id: str
    description: str
    columns: list[str]
    rows: list[list[object]]
    paper_expectation: str = ""
    notes: dict = field(default_factory=dict)

    def summary(self) -> str:
        """Human-readable rendering of the result (printed by the CLI and benches)."""
        header = f"[{self.experiment_id}] {self.description}"
        table = format_table(self.columns, self.rows)
        expectation = f"paper expectation: {self.paper_expectation}" if self.paper_expectation else ""
        return "\n".join(part for part in (header, table, expectation) if part)

    def row_dicts(self) -> list[dict[str, object]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]


@dataclass
class TaskBundle:
    """A prepared task: data, trained source model and TASFAR source calibration."""

    task: AdaptationTask
    source_model: nn.RegressionModel
    trainer: nn.Trainer
    calibration: SourceCalibration
    scale: ScaleProfile
    seed: int
    training_history: nn.TrainingHistory
    spec: TaskSpec | None = None

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Deterministic source-model predictions."""
        return self.trainer.predict(inputs)

    def tasfar(self, config: TasfarConfig | None = None) -> Tasfar:
        """A TASFAR instance with a default or custom configuration."""
        return Tasfar(config if config is not None else TasfarConfig())

    def resources(self, max_source_samples: int | None = None, seed: int = 0):
        """The :class:`~repro.engine.SourceResources` strategies prepare from.

        ``max_source_samples`` subsamples the labelled source data handed to
        source-based schemes (seeded, without replacement), keeping their
        re-training affordable at comparison scale.
        """
        from ..engine.strategy import SourceResources

        source_data = self.task.source_train
        if max_source_samples is not None and len(source_data) > max_source_samples:
            chosen = np.random.default_rng(seed).choice(
                len(source_data), size=max_source_samples, replace=False
            )
            source_data = source_data.subset(chosen)
        return SourceResources(
            source_data=source_data,
            calibration_data=self.task.source_calibration,
            calibration=self.calibration,
        )


_BUNDLE_CACHE: dict[tuple[str, str, int], TaskBundle] = {}
#: Guards the cache dict itself; builds happen outside it, under a per-key
#: lock, so two threads asking for *different* bundles build concurrently
#: while two asking for the *same* bundle build it exactly once.
_CACHE_LOCK = threading.Lock()
_BUILD_LOCKS: dict[tuple[str, str, int], threading.Lock] = {}


def clear_bundle_cache() -> None:
    """Drop all cached bundles (used by tests to control memory)."""
    with _CACHE_LOCK:
        _BUNDLE_CACHE.clear()
        _BUILD_LOCKS.clear()


def _evict_task_bundles(task_name: str) -> None:
    """Drop cached bundles of one task when its registration changes.

    Without this, ``register_task(spec, replace=True)`` would keep serving
    bundles built from the replaced spec.
    """
    with _CACHE_LOCK:
        for key in [key for key in _BUNDLE_CACHE if key[0] == task_name]:
            del _BUNDLE_CACHE[key]
        for key in [key for key in _BUILD_LOCKS if key[0] == task_name]:
            del _BUILD_LOCKS[key]


on_task_registry_change(_evict_task_bundles)


def get_bundle(task_name: str, scale: str = "small", seed: int = 0) -> TaskBundle:
    """Build (or fetch from cache) the bundle for one registered task.

    Thread-safe: the cache is shared by ``adapt_many``/``run-all`` workers,
    so lookups are locked and concurrent first requests for the same
    ``(task, scale, seed)`` key build one bundle, not several.
    """
    # Normalized like the registry key, so registry-change eviction matches.
    key = (task_name.lower(), scale, seed)
    with _CACHE_LOCK:
        bundle = _BUNDLE_CACHE.get(key)
        if bundle is not None:
            return bundle
        build_lock = _BUILD_LOCKS.setdefault(key, threading.Lock())
    with build_lock:
        with _CACHE_LOCK:
            bundle = _BUNDLE_CACHE.get(key)
            if bundle is not None:
                return bundle
        spec = get_task_spec(task_name)
        profile = SCALES[scale]
        bundle = _build_bundle(spec, profile, seed)
        with _CACHE_LOCK:
            try:
                current = get_task_spec(task_name)
            except ValueError:
                current = None
            # Cache only if the spec was not replaced/unregistered while the
            # build ran; the caller still gets the bundle it asked for, but a
            # stale-spec bundle must not outlive the registry change.
            if current is spec:
                _BUNDLE_CACHE[key] = bundle
            _BUILD_LOCKS.pop(key, None)
    return bundle


def _build_bundle(spec: TaskSpec, profile: ScaleProfile, seed: int) -> TaskBundle:
    """Generate the task, train the source model, calibrate TASFAR."""
    task = spec.build_task(profile, seed)
    model = spec.build_model(task, profile, seed)
    trainer = nn.Trainer(model, lr=spec.lr)
    history = trainer.fit(
        task.source_train,
        epochs=spec.epochs(profile),
        batch_size=spec.batch_size,
        rng=np.random.default_rng(seed),
    )
    return TaskBundle(
        task, model, trainer, _calibrate(model, task), profile, seed, history, spec=spec
    )


def _calibrate(model: nn.RegressionModel, task: AdaptationTask) -> SourceCalibration:
    tasfar = Tasfar(TasfarConfig())
    return tasfar.calibrate_on_source(
        model, task.source_calibration.inputs, task.source_calibration.targets
    )
