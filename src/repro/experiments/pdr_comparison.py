"""PDR comparison experiments: Figs. 14–18.

All five figures are views of the same scheme comparison (every adaptation
scheme run on every PDR user):

* Fig. 14 — per-user STE reduction on the seen group, per scheme;
* Fig. 15 — mean STE reduction on the adaptation set vs. the test set;
* Fig. 16 — ratio of uncertain data and their share of the total error, for
  the seen and unseen groups;
* Fig. 17 — fraction of seen-group test trajectories whose RTE reduction
  exceeds a threshold, per scheme;
* Fig. 18 — the same for the unseen group.
"""

from __future__ import annotations

import numpy as np

from ..metrics import fraction_above_threshold
from .base import ExperimentResult, get_bundle
from .comparison import DEFAULT_SCHEMES, get_comparison
from .helpers import scenario_mc_prediction

__all__ = [
    "fig14_ste_reduction_seen",
    "fig15_adaptation_vs_test",
    "fig16_uncertain_ratio",
    "fig17_rte_reduction_seen",
    "fig18_rte_reduction_unseen",
]


def fig14_ste_reduction_seen(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Per-user STE reduction on the adaptation set, seen group, per scheme."""
    comparison = get_comparison("pdr", scale, seed)
    schemes = [scheme for scheme in comparison.schemes if scheme != "baseline"]
    rows = []
    for evaluation in comparison.evaluations:
        if evaluation.group != "seen":
            continue
        base = evaluation.metrics["baseline"]["adaptation"]["ste"]
        row: list[object] = [evaluation.scenario]
        for scheme in schemes:
            adapted = evaluation.metrics[scheme]["adaptation"]["ste"]
            row.append((base - adapted) / base if base else 0.0)
        rows.append(row)
    mean_row: list[object] = ["mean"]
    for index, scheme in enumerate(schemes, start=1):
        mean_row.append(float(np.mean([row[index] for row in rows])) if rows else 0.0)
    rows.append(mean_row)
    return ExperimentResult(
        experiment_id="fig14_ste_reduction_seen",
        description="STE reduction rate per seen-group user and scheme (adaptation set)",
        columns=["user"] + [f"red_{scheme}" for scheme in schemes],
        rows=rows,
        paper_expectation=(
            "TASFAR reduces STE for each user, comparable to the source-based MMD/ADV schemes "
            "(~14% on average), while AUGfree/Datafree bring little"
        ),
    )


def fig15_adaptation_vs_test(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Mean STE reduction on the adaptation set vs. the test set, per scheme."""
    comparison = get_comparison("pdr", scale, seed)
    rows = []
    for scheme in comparison.schemes:
        if scheme == "baseline":
            continue
        rows.append(
            [
                scheme,
                comparison.mean_reduction(scheme, "adaptation", "ste", group="seen"),
                comparison.mean_reduction(scheme, "test", "ste", group="seen"),
            ]
        )
    return ExperimentResult(
        experiment_id="fig15_adaptation_vs_test",
        description="Mean STE reduction, adaptation vs. test split (seen group)",
        columns=["scheme", "reduction_adaptation", "reduction_test"],
        rows=rows,
        paper_expectation="each scheme reduces errors similarly on the adaptation and the test split",
    )


def fig16_uncertain_ratio(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Uncertain-data ratio and their share of the total error, per group."""
    bundle = get_bundle("pdr", scale, seed)
    comparison = get_comparison("pdr", scale, seed)
    rows = []
    for group in ("seen", "unseen"):
        data_ratios = []
        error_ratios = []
        for evaluation in comparison.evaluations:
            if evaluation.group != group:
                continue
            scenario = bundle.task.scenario(evaluation.scenario)
            prediction = scenario_mc_prediction(bundle, scenario)
            errors = np.linalg.norm(prediction.mean - scenario.adaptation.targets, axis=1)
            uncertain = evaluation.uncertain_indices
            data_ratios.append(evaluation.uncertain_ratio)
            total_error = errors.sum()
            error_ratios.append(errors[uncertain].sum() / total_error if total_error else 0.0)
        rows.append([group, float(np.mean(data_ratios)), float(np.mean(error_ratios))])
    return ExperimentResult(
        experiment_id="fig16_uncertain_ratio",
        description="Uncertain-data ratio and their share of the total error, seen vs. unseen group",
        columns=["group", "uncertain_data_ratio", "uncertain_error_share"],
        rows=rows,
        paper_expectation=(
            "the unseen group has a larger uncertain ratio than the seen group, and in both "
            "groups the error share of uncertain data far exceeds their data share"
        ),
    )


def _rte_reduction_rows(
    comparison, group: str, thresholds: tuple[float, ...]
) -> tuple[list[list[object]], dict[str, float]]:
    schemes = [scheme for scheme in comparison.schemes if scheme != "baseline"]
    reductions: dict[str, list[float]] = {scheme: [] for scheme in schemes}
    for evaluation in comparison.evaluations:
        if evaluation.group != group or "baseline" not in evaluation.rte:
            continue
        base_rte = evaluation.rte["baseline"]["test"]
        for scheme in schemes:
            scheme_rte = evaluation.rte[scheme]["test"]
            for trajectory, base_value in base_rte.items():
                reductions[scheme].append(base_value - scheme_rte[trajectory])
    rows = []
    for threshold in thresholds:
        row: list[object] = [threshold]
        for scheme in schemes:
            values = np.array(reductions[scheme]) if reductions[scheme] else np.zeros(1)
            row.append(float(fraction_above_threshold(values, np.array([threshold]))[0]))
        rows.append(row)
    mean_reductions = {
        scheme: float(np.mean(values)) if values else 0.0 for scheme, values in reductions.items()
    }
    return rows, mean_reductions


def fig17_rte_reduction_seen(
    scale: str = "small", seed: int = 0, thresholds: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0, 2.0)
) -> ExperimentResult:
    """Fraction of seen-group test trajectories above an RTE-reduction threshold."""
    comparison = get_comparison("pdr", scale, seed)
    rows, mean_reductions = _rte_reduction_rows(comparison, "seen", thresholds)
    schemes = [scheme for scheme in comparison.schemes if scheme != "baseline"]
    return ExperimentResult(
        experiment_id="fig17_rte_reduction_seen",
        description="Fraction of seen-group trajectories with RTE reduction >= threshold (test set)",
        columns=["threshold_m"] + [f"frac_{scheme}" for scheme in schemes],
        rows=rows,
        paper_expectation=(
            "TASFAR reduces RTE for most trajectories, comparable to source-based UDA and ahead "
            "of the other source-free schemes"
        ),
        notes={"mean_reduction_m": mean_reductions},
    )


def fig18_rte_reduction_unseen(
    scale: str = "small", seed: int = 0, thresholds: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0, 2.0)
) -> ExperimentResult:
    """Fraction of unseen-group test trajectories above an RTE-reduction threshold."""
    comparison = get_comparison("pdr", scale, seed)
    rows, mean_reductions = _rte_reduction_rows(comparison, "unseen", thresholds)
    schemes = [scheme for scheme in comparison.schemes if scheme != "baseline"]
    return ExperimentResult(
        experiment_id="fig18_rte_reduction_unseen",
        description="Fraction of unseen-group trajectories with RTE reduction >= threshold (test set)",
        columns=["threshold_m"] + [f"frac_{scheme}" for scheme in schemes],
        rows=rows,
        paper_expectation=(
            "TASFAR still achieves RTE reductions comparable to source-based UDA under the larger "
            "domain gap of unseen users"
        ),
        notes={"mean_reduction_m": mean_reductions},
    )
