"""Scheme-comparison machinery shared by the PDR, counting and prediction tables.

The paper compares TASFAR against a no-adaptation baseline, two source-based
UDA schemes (MMD, ADV) and two source-free schemes (AUGfree, Datafree) on
every target scenario.  This module runs that comparison once per task and
caches the result so the individual figure/table experiments (Fig. 14–21,
Table I) can all be derived from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..core import ConfidenceClassifier
from ..data import TargetScenario
from ..data.tasks import get_task_spec, on_task_registry_change
from ..engine import create_strategy
from ..metrics import mae, mse, per_trajectory_rte, rmsle, step_error
from ..uncertainty import MCDropoutPredictor
from .base import TaskBundle, get_bundle

__all__ = [
    "DEFAULT_SCHEMES",
    "METRIC_FNS",
    "ScenarioEvaluation",
    "SchemeComparison",
    "compare_task",
    "get_comparison",
    "clear_comparison_cache",
    "register_metric",
]

#: Schemes compared in the paper, in presentation order.
DEFAULT_SCHEMES = ("baseline", "mmd", "adv", "augfree", "datafree", "tasfar")


@dataclass
class ScenarioEvaluation:
    """Per-scenario, per-scheme evaluation record."""

    scenario: str
    group: str
    uncertain_indices: np.ndarray
    uncertain_ratio: float
    #: metrics[scheme][split][metric_name] -> float
    metrics: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)
    #: per-trajectory RTE values, when the task has trajectory structure
    rte: dict[str, dict[str, dict[int, float]]] = field(default_factory=dict)
    #: adaptation-loss curves per scheme
    losses: dict[str, list[float]] = field(default_factory=dict)
    diagnostics: dict[str, dict] = field(default_factory=dict)


@dataclass
class SchemeComparison:
    """Comparison of all schemes over all scenarios of one task."""

    task_name: str
    schemes: tuple[str, ...]
    evaluations: list[ScenarioEvaluation]

    def scenario(self, name: str) -> ScenarioEvaluation:
        """Look up one scenario's evaluation by name."""
        for evaluation in self.evaluations:
            if evaluation.scenario == name:
                return evaluation
        raise KeyError(f"no evaluation for scenario {name!r}")

    def mean_metric(self, scheme: str, split: str, metric: str, group: str | None = None) -> float:
        """Average a metric over scenarios (optionally restricted to a group)."""
        values = [
            evaluation.metrics[scheme][split][metric]
            for evaluation in self.evaluations
            if group is None or evaluation.group == group
        ]
        if not values:
            raise ValueError(f"no scenarios match group {group!r}")
        return float(np.mean(values))

    def mean_reduction(self, scheme: str, split: str, metric: str, group: str | None = None) -> float:
        """Average per-scenario relative error reduction of a scheme vs. the baseline."""
        reductions = []
        for evaluation in self.evaluations:
            if group is not None and evaluation.group != group:
                continue
            base = evaluation.metrics["baseline"][split][metric]
            adapted = evaluation.metrics[scheme][split][metric]
            reductions.append((base - adapted) / base if base else 0.0)
        if not reductions:
            raise ValueError(f"no scenarios match group {group!r}")
        return float(np.mean(reductions))


#: Metric callables resolvable from :attr:`repro.data.TaskSpec.metrics` names.
METRIC_FNS = {
    "ste": lambda p, t: step_error(p, t),
    "mae": mae,
    "mse": mse,
    "rmsle": rmsle,
}


def register_metric(name: str, fn) -> None:
    """Register (or replace) a metric callable ``fn(predictions, targets)``.

    A task registered with ``TaskSpec(metrics=("rmse", ...))`` needs its
    metric names resolvable here; one ``register_metric`` call completes the
    task's "one registration" contract for the comparison harness.
    """
    METRIC_FNS[name.lower()] = fn


def _task_metrics(bundle: TaskBundle):
    """Metric set used for a bundle's task, resolved from its registry spec."""
    spec = bundle.spec
    if spec is None:
        # Hand-constructed bundles: fall back to the registry by task name,
        # so the metric tuples live in exactly one place (data/tasks.py).
        task_name = bundle.task.name if bundle.task.name != "crowd_counting" else "crowd"
        spec = get_task_spec(task_name)
    try:
        return {name: METRIC_FNS[name] for name in spec.metrics}
    except KeyError as exc:
        raise ValueError(
            f"unknown metric {exc.args[0]!r}; known metrics: {sorted(METRIC_FNS)}"
        ) from exc


def _evaluate_splits(
    model: nn.RegressionModel,
    scenario: TargetScenario,
    uncertain_indices: np.ndarray,
    metric_fns: dict,
) -> tuple[dict[str, dict[str, float]], dict[str, dict[int, float]]]:
    """Evaluate one adapted model on the scenario's splits."""
    trainer = nn.Trainer(model)
    adapt_pred = trainer.predict(scenario.adaptation.inputs)
    test_pred = trainer.predict(scenario.test.inputs)

    metrics: dict[str, dict[str, float]] = {
        "adaptation": {name: fn(adapt_pred, scenario.adaptation.targets) for name, fn in metric_fns.items()},
        "test": {name: fn(test_pred, scenario.test.targets) for name, fn in metric_fns.items()},
    }
    if len(uncertain_indices):
        metrics["adaptation_uncertain"] = {
            name: fn(adapt_pred[uncertain_indices], scenario.adaptation.targets[uncertain_indices])
            for name, fn in metric_fns.items()
        }
    else:
        metrics["adaptation_uncertain"] = dict(metrics["adaptation"])

    rte: dict[str, dict[int, float]] = {}
    if "trajectory_ids" in scenario.metadata:
        rte["adaptation"] = per_trajectory_rte(
            adapt_pred, scenario.adaptation.targets, scenario.metadata["trajectory_ids"]
        )
        rte["test"] = per_trajectory_rte(
            test_pred, scenario.test.targets, scenario.metadata["test_trajectory_ids"]
        )
    return metrics, rte


def compare_task(
    bundle: TaskBundle,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    scenarios: list[TargetScenario] | None = None,
    seed: int = 0,
    max_source_samples: int = 400,
) -> SchemeComparison:
    """Run every scheme on every scenario of a prepared task bundle."""
    task = bundle.task
    metric_fns = _task_metrics(bundle)
    scenarios = scenarios if scenarios is not None else task.scenarios

    # One prepared strategy per scheme, shared across scenarios: preparation
    # (TASFAR calibration, Datafree statistics, capture of the — possibly
    # subsampled — labelled source data for the source-based schemes) runs
    # once, exactly like a real deployment.
    resources = bundle.resources(max_source_samples=max_source_samples, seed=seed)
    strategy_kwargs = {"epochs": bundle.scale.baseline_epochs, "seed": seed}
    strategies = {
        scheme: create_strategy(scheme, **strategy_kwargs).prepare(
            bundle.source_model, resources
        )
        for scheme in schemes
    }

    predictor = MCDropoutPredictor(bundle.source_model)
    classifier = ConfidenceClassifier()
    classifier.threshold = bundle.calibration.threshold

    evaluations: list[ScenarioEvaluation] = []
    for scenario in scenarios:
        prediction = predictor.predict(scenario.adaptation.inputs)
        split = classifier.split(prediction.uncertainty)
        evaluation = ScenarioEvaluation(
            scenario=scenario.name,
            group=str(scenario.metadata.get("group", "target")),
            uncertain_indices=split.uncertain_indices,
            uncertain_ratio=split.uncertain_ratio,
        )
        for scheme in schemes:
            outcome = strategies[scheme].adapt(bundle.source_model, scenario.adaptation.inputs)
            metrics, rte = _evaluate_splits(
                outcome.target_model, scenario, split.uncertain_indices, metric_fns
            )
            evaluation.metrics[scheme] = metrics
            if rte:
                evaluation.rte[scheme] = rte
            evaluation.losses[scheme] = outcome.losses
            evaluation.diagnostics[scheme] = dict(outcome.diagnostics)
        evaluations.append(evaluation)
    return SchemeComparison(task_name=task.name, schemes=tuple(schemes), evaluations=evaluations)


_COMPARISON_CACHE: dict[tuple[str, str, int, tuple[str, ...]], SchemeComparison] = {}


def clear_comparison_cache() -> None:
    """Drop cached comparisons (used by tests)."""
    _COMPARISON_CACHE.clear()


def _evict_task_comparisons(task_name: str) -> None:
    """Drop cached comparisons of one task when its registration changes,
    mirroring the bundle-cache eviction in :mod:`repro.experiments.base`."""
    for key in [key for key in _COMPARISON_CACHE if key[0] == task_name]:
        del _COMPARISON_CACHE[key]


on_task_registry_change(_evict_task_comparisons)


def get_comparison(
    task_name: str,
    scale: str = "small",
    seed: int = 0,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
) -> SchemeComparison:
    """Run (or fetch from cache) the full scheme comparison for one task."""
    key = (task_name.lower(), scale, seed, tuple(schemes))
    cached = _COMPARISON_CACHE.get(key)
    if cached is not None:
        return cached
    bundle = get_bundle(task_name, scale, seed)
    comparison = compare_task(bundle, schemes=schemes, seed=seed)
    try:
        current = get_task_spec(task_name)
    except ValueError:
        current = None
    # Cache only if the task's registration did not change while the
    # comparison ran (mirrors the stale-spec guard in get_bundle).
    if bundle.spec is not None and current is bundle.spec:
        _COMPARISON_CACHE[key] = comparison
    return comparison
