"""Scheme-comparison machinery shared by the PDR, counting and prediction tables.

The paper compares TASFAR against a no-adaptation baseline, two source-based
UDA schemes (MMD, ADV) and two source-free schemes (AUGfree, Datafree) on
every target scenario.  This module runs that comparison once per task and
caches the result so the individual figure/table experiments (Fig. 14–21,
Table I) can all be derived from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..baselines import DataFree, TasfarAdapter, make_adapter
from ..core import ConfidenceClassifier
from ..data import TargetScenario
from ..metrics import mae, mse, per_trajectory_rte, rmsle, step_error
from ..uncertainty import MCDropoutPredictor
from .base import TaskBundle, get_bundle

__all__ = [
    "DEFAULT_SCHEMES",
    "ScenarioEvaluation",
    "SchemeComparison",
    "compare_task",
    "get_comparison",
    "clear_comparison_cache",
]

#: Schemes compared in the paper, in presentation order.
DEFAULT_SCHEMES = ("baseline", "mmd", "adv", "augfree", "datafree", "tasfar")


@dataclass
class ScenarioEvaluation:
    """Per-scenario, per-scheme evaluation record."""

    scenario: str
    group: str
    uncertain_indices: np.ndarray
    uncertain_ratio: float
    #: metrics[scheme][split][metric_name] -> float
    metrics: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)
    #: per-trajectory RTE values, when the task has trajectory structure
    rte: dict[str, dict[str, dict[int, float]]] = field(default_factory=dict)
    #: adaptation-loss curves per scheme
    losses: dict[str, list[float]] = field(default_factory=dict)
    diagnostics: dict[str, dict] = field(default_factory=dict)


@dataclass
class SchemeComparison:
    """Comparison of all schemes over all scenarios of one task."""

    task_name: str
    schemes: tuple[str, ...]
    evaluations: list[ScenarioEvaluation]

    def scenario(self, name: str) -> ScenarioEvaluation:
        """Look up one scenario's evaluation by name."""
        for evaluation in self.evaluations:
            if evaluation.scenario == name:
                return evaluation
        raise KeyError(f"no evaluation for scenario {name!r}")

    def mean_metric(self, scheme: str, split: str, metric: str, group: str | None = None) -> float:
        """Average a metric over scenarios (optionally restricted to a group)."""
        values = [
            evaluation.metrics[scheme][split][metric]
            for evaluation in self.evaluations
            if group is None or evaluation.group == group
        ]
        if not values:
            raise ValueError(f"no scenarios match group {group!r}")
        return float(np.mean(values))

    def mean_reduction(self, scheme: str, split: str, metric: str, group: str | None = None) -> float:
        """Average per-scenario relative error reduction of a scheme vs. the baseline."""
        reductions = []
        for evaluation in self.evaluations:
            if group is not None and evaluation.group != group:
                continue
            base = evaluation.metrics["baseline"][split][metric]
            adapted = evaluation.metrics[scheme][split][metric]
            reductions.append((base - adapted) / base if base else 0.0)
        if not reductions:
            raise ValueError(f"no scenarios match group {group!r}")
        return float(np.mean(reductions))


def _task_metrics(task_name: str):
    """Metric set used for each task."""
    if task_name == "pdr":
        return {"ste": lambda p, t: step_error(p, t)}
    if task_name == "crowd":
        return {"mae": mae, "mse": mse}
    if task_name == "housing":
        return {"mse": mse, "mae": mae}
    if task_name == "taxi":
        return {"rmsle": rmsle, "mae": mae}
    raise ValueError(f"unknown task {task_name!r}")


def _evaluate_splits(
    model: nn.RegressionModel,
    scenario: TargetScenario,
    uncertain_indices: np.ndarray,
    metric_fns: dict,
) -> tuple[dict[str, dict[str, float]], dict[str, dict[int, float]]]:
    """Evaluate one adapted model on the scenario's splits."""
    trainer = nn.Trainer(model)
    adapt_pred = trainer.predict(scenario.adaptation.inputs)
    test_pred = trainer.predict(scenario.test.inputs)

    metrics: dict[str, dict[str, float]] = {
        "adaptation": {name: fn(adapt_pred, scenario.adaptation.targets) for name, fn in metric_fns.items()},
        "test": {name: fn(test_pred, scenario.test.targets) for name, fn in metric_fns.items()},
    }
    if len(uncertain_indices):
        metrics["adaptation_uncertain"] = {
            name: fn(adapt_pred[uncertain_indices], scenario.adaptation.targets[uncertain_indices])
            for name, fn in metric_fns.items()
        }
    else:
        metrics["adaptation_uncertain"] = dict(metrics["adaptation"])

    rte: dict[str, dict[int, float]] = {}
    if "trajectory_ids" in scenario.metadata:
        rte["adaptation"] = per_trajectory_rte(
            adapt_pred, scenario.adaptation.targets, scenario.metadata["trajectory_ids"]
        )
        rte["test"] = per_trajectory_rte(
            test_pred, scenario.test.targets, scenario.metadata["test_trajectory_ids"]
        )
    return metrics, rte


def compare_task(
    bundle: TaskBundle,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    scenarios: list[TargetScenario] | None = None,
    seed: int = 0,
    max_source_samples: int = 400,
) -> SchemeComparison:
    """Run every scheme on every scenario of a prepared task bundle."""
    task = bundle.task
    metric_fns = _task_metrics(task.name if task.name != "crowd_counting" else "crowd")
    scenarios = scenarios if scenarios is not None else task.scenarios
    rng = np.random.default_rng(seed)

    # Source data handed to the source-based schemes (possibly subsampled to
    # keep the comparison affordable on the simulator substrate).
    source_data = task.source_train
    if len(source_data) > max_source_samples:
        chosen = rng.choice(len(source_data), size=max_source_samples, replace=False)
        source_data = source_data.subset(chosen)

    predictor = MCDropoutPredictor(bundle.source_model)
    classifier = ConfidenceClassifier()
    classifier.threshold = bundle.calibration.threshold

    evaluations: list[ScenarioEvaluation] = []
    for scenario in scenarios:
        prediction = predictor.predict(scenario.adaptation.inputs)
        split = classifier.split(prediction.uncertainty)
        evaluation = ScenarioEvaluation(
            scenario=scenario.name,
            group=str(scenario.metadata.get("group", "target")),
            uncertain_indices=split.uncertain_indices,
            uncertain_ratio=split.uncertain_ratio,
        )
        for scheme in schemes:
            adapter = make_adapter(scheme, **_scheme_kwargs(scheme, bundle, seed))
            if isinstance(adapter, TasfarAdapter):
                adapter.calibration = bundle.calibration
            if isinstance(adapter, DataFree):
                adapter.fit_source_statistics(bundle.source_model, task.source_calibration.inputs)
            result = adapter.adapt(
                bundle.source_model,
                scenario.adaptation.inputs,
                source_data=source_data if adapter.requires_source_data else None,
            )
            metrics, rte = _evaluate_splits(
                result.target_model, scenario, split.uncertain_indices, metric_fns
            )
            evaluation.metrics[scheme] = metrics
            if rte:
                evaluation.rte[scheme] = rte
            evaluation.losses[scheme] = result.losses
            evaluation.diagnostics[scheme] = {
                key: value for key, value in result.diagnostics.items() if key != "adaptation_result"
            }
        evaluations.append(evaluation)
    return SchemeComparison(task_name=task.name, schemes=tuple(schemes), evaluations=evaluations)


def _scheme_kwargs(scheme: str, bundle: TaskBundle, seed: int) -> dict:
    """Construction keywords for each scheme, scaled to the bundle profile."""
    epochs = bundle.scale.baseline_epochs
    if scheme in ("mmd", "adv"):
        return {"epochs": epochs, "seed": seed}
    if scheme in ("augfree", "datafree"):
        return {"epochs": epochs, "seed": seed}
    return {}


_COMPARISON_CACHE: dict[tuple[str, str, int, tuple[str, ...]], SchemeComparison] = {}


def clear_comparison_cache() -> None:
    """Drop cached comparisons (used by tests)."""
    _COMPARISON_CACHE.clear()


def get_comparison(
    task_name: str,
    scale: str = "small",
    seed: int = 0,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
) -> SchemeComparison:
    """Run (or fetch from cache) the full scheme comparison for one task."""
    key = (task_name, scale, seed, tuple(schemes))
    if key not in _COMPARISON_CACHE:
        bundle = get_bundle(task_name, scale, seed)
        _COMPARISON_CACHE[key] = compare_task(bundle, schemes=schemes, seed=seed)
    return _COMPARISON_CACHE[key]
