"""Credibility-weight studies: Fig. 11 (correlation) and Fig. 12 (ablation).

Fig. 11 checks that the credibility ``beta_t`` assigned to a pseudo-label
correlates with how much that pseudo-label actually improves on the source
prediction, per user.  Fig. 12 ablates ``beta_t`` in the adaptation loss and
tracks the step error across training epochs with and without the weight.
"""

from __future__ import annotations

import copy

import numpy as np

from .. import nn
from ..core import ConfidenceClassifier, TasfarConfig, Tasfar
from ..metrics import pearson_correlation, step_error
from ..uncertainty import MCDropoutPredictor
from .base import ExperimentResult, TaskBundle, get_bundle
from .helpers import build_calibration, pseudo_label_scenario

__all__ = ["fig11_credibility_correlation", "fig12_credibility_ablation"]


def fig11_credibility_correlation(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Correlation between credibility and pseudo-label improvement, per user."""
    bundle = get_bundle("pdr", scale, seed)
    calibration = build_calibration(bundle)
    rows = []
    correlations = []
    for scenario in bundle.task.scenarios:
        pseudo_batch, uncertain_indices, _ = pseudo_label_scenario(bundle, scenario, calibration)
        if len(uncertain_indices) < 3:
            continue
        targets = scenario.adaptation.targets[uncertain_indices]
        prediction_error = np.linalg.norm(pseudo_batch.predictions - targets, axis=1)
        pseudo_error = np.linalg.norm(pseudo_batch.pseudo_labels - targets, axis=1)
        improvement = prediction_error - pseudo_error
        correlation = pearson_correlation(pseudo_batch.credibilities, improvement)
        correlations.append(correlation)
        rows.append([scenario.name, scenario.metadata["group"], correlation, len(uncertain_indices)])
    positive_fraction = float(np.mean([c > 0 for c in correlations])) if correlations else 0.0
    return ExperimentResult(
        experiment_id="fig11_credibility_correlation",
        description="Correlation between credibility beta_t and pseudo-label improvement per user",
        columns=["user", "group", "correlation", "n_uncertain"],
        rows=rows,
        paper_expectation="correlations are positive for (almost) all users, most above 0.5",
        notes={
            "mean_correlation": float(np.mean(correlations)) if correlations else 0.0,
            "positive_fraction": positive_fraction,
        },
    )


def _adapt_tracking_ste(
    bundle: TaskBundle,
    scenario,
    use_credibility: bool,
    epochs: int,
    seed: int,
) -> list[float]:
    """Fine-tune on pseudo-labels, recording the adaptation-set STE after every epoch."""
    config = TasfarConfig(
        use_credibility=use_credibility,
        adaptation_epochs=1,
        early_stop=False,
        seed=seed,
    )
    tasfar = Tasfar(config)
    calibration = bundle.calibration

    predictor = MCDropoutPredictor(bundle.source_model, n_samples=config.n_mc_samples)
    prediction = predictor.predict(scenario.adaptation.inputs)
    classifier = ConfidenceClassifier(config.confidence_ratio)
    classifier.threshold = calibration.threshold
    split = classifier.split(prediction.uncertainty)
    from ..core.estimator import LabelDistributionEstimator

    estimator = LabelDistributionEstimator(calibration.calibrators, auto_grid_bins=config.auto_grid_bins)
    density_map, pseudo_batch = tasfar._pseudo_label_uncertain(
        estimator, calibration, prediction, split
    )
    del density_map
    dataset = tasfar.build_adaptation_dataset(
        scenario.adaptation.inputs, prediction, split, pseudo_batch
    )

    model = copy.deepcopy(bundle.source_model)
    for layer in model.dropout_layers():
        layer.rate = 0.0
    optimizer = nn.Adam(model.parameters(), lr=config.adaptation_lr)
    loader = nn.DataLoader(dataset, batch_size=config.adaptation_batch_size, shuffle=True, rng=np.random.default_rng(seed))
    loss = nn.MSELoss()

    ste_per_epoch = []
    for _ in range(epochs):
        model.train()
        for inputs, labels, weights in loader:
            optimizer.zero_grad()
            value, grad = loss(model.forward(inputs), labels, weights)
            model.backward(grad)
            nn.clip_gradients(optimizer.parameters, 5.0)
            optimizer.step()
        model.eval()
        predictions = nn.Trainer(model).predict(scenario.adaptation.inputs)
        ste_per_epoch.append(step_error(predictions, scenario.adaptation.targets))
    return ste_per_epoch


def fig12_credibility_ablation(
    scale: str = "small", seed: int = 0, epochs: int = 12
) -> ExperimentResult:
    """Adaptation-set STE per epoch with and without the credibility weight."""
    bundle = get_bundle("pdr", scale, seed)
    scenario = bundle.task.scenarios[0]
    with_weight = _adapt_tracking_ste(bundle, scenario, True, epochs, seed)
    without_weight = _adapt_tracking_ste(bundle, scenario, False, epochs, seed)
    baseline = step_error(bundle.predict(scenario.adaptation.inputs), scenario.adaptation.targets)
    rows = [
        [epoch + 1, with_weight[epoch], without_weight[epoch]]
        for epoch in range(epochs)
    ]
    return ExperimentResult(
        experiment_id="fig12_credibility_ablation",
        description="STE vs. adaptation epoch with / without the credibility weight beta_t",
        columns=["epoch", "ste_with_beta", "ste_without_beta"],
        rows=rows,
        paper_expectation=(
            "the weighted variant reaches lower STE in early epochs; the gap narrows with "
            "more epochs, which motivates early stopping"
        ),
        notes={
            "baseline_ste": baseline,
            "best_with": float(np.min(with_weight)),
            "best_without": float(np.min(without_weight)),
        },
    )
