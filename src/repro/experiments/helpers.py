"""Shared helpers for the parameter-study experiments (Figs. 6–13).

The parameter studies sweep TASFAR's knobs (grid size, segment count, the
confidence ratio, the error model) on the PDR task.  All of them need the same
expensive ingredients — MC-dropout predictions on the source calibration split
and on a target scenario — so those are cached here per bundle/scenario.
"""

from __future__ import annotations

import numpy as np

from ..core import ConfidenceClassifier, LabelDensityMap, LabelDistributionEstimator, PseudoLabelGenerator
from ..core.adapter import SourceCalibration
from ..data import TargetScenario
from ..uncertainty import MCDropoutPredictor, UncertainPrediction, fit_sigma_curve
from .base import TaskBundle

__all__ = [
    "source_mc_prediction",
    "scenario_mc_prediction",
    "build_calibration",
    "estimate_scenario_density",
    "pseudo_label_scenario",
    "true_density_map",
    "pseudo_label_error",
]

_SOURCE_PREDICTION_CACHE: dict[int, UncertainPrediction] = {}
_SCENARIO_PREDICTION_CACHE: dict[tuple[int, str], UncertainPrediction] = {}


def source_mc_prediction(bundle: TaskBundle) -> UncertainPrediction:
    """MC-dropout prediction of the source model on the source calibration split."""
    key = id(bundle)
    if key not in _SOURCE_PREDICTION_CACHE:
        predictor = MCDropoutPredictor(bundle.source_model)
        _SOURCE_PREDICTION_CACHE[key] = predictor.predict(bundle.task.source_calibration.inputs)
    return _SOURCE_PREDICTION_CACHE[key]


def scenario_mc_prediction(bundle: TaskBundle, scenario: TargetScenario) -> UncertainPrediction:
    """MC-dropout prediction of the source model on a scenario's adaptation split."""
    key = (id(bundle), scenario.name)
    if key not in _SCENARIO_PREDICTION_CACHE:
        predictor = MCDropoutPredictor(bundle.source_model)
        _SCENARIO_PREDICTION_CACHE[key] = predictor.predict(scenario.adaptation.inputs)
    return _SCENARIO_PREDICTION_CACHE[key]


def build_calibration(
    bundle: TaskBundle,
    confidence_ratio: float = 0.9,
    n_segments: int = 40,
) -> SourceCalibration:
    """Re-fit ``Q_s`` and ``tau`` with custom ``eta``/``q`` from cached predictions."""
    prediction = source_mc_prediction(bundle)
    labels = bundle.task.source_calibration.targets
    errors = np.abs(prediction.mean - labels)
    calibrators = [
        fit_sigma_curve(prediction.uncertainty, errors[:, dim], n_segments=n_segments)
        for dim in range(labels.shape[1])
    ]
    classifier = ConfidenceClassifier(confidence_ratio)
    classifier.fit(prediction.uncertainty)
    return SourceCalibration(
        threshold=float(classifier.threshold),
        calibrators=calibrators,
        source_uncertainty_mean=float(prediction.uncertainty.mean()),
        source_error_mean=float(errors.mean()),
    )


def estimate_scenario_density(
    bundle: TaskBundle,
    scenario: TargetScenario,
    calibration: SourceCalibration,
    grid_size: float | None = None,
    auto_grid_bins: int = 25,
    error_model: str = "gaussian",
    grid: LabelDensityMap | None = None,
) -> tuple[LabelDensityMap, LabelDistributionEstimator, np.ndarray]:
    """Estimate the label density map of a scenario from its confident data.

    Returns ``(density_map, estimator, confident_indices)``.
    """
    prediction = scenario_mc_prediction(bundle, scenario)
    classifier = ConfidenceClassifier()
    classifier.threshold = calibration.threshold
    split = classifier.split(prediction.uncertainty)
    estimator = LabelDistributionEstimator(
        calibrators=calibration.calibrators,
        grid_size=grid_size,
        auto_grid_bins=auto_grid_bins,
        error_model=error_model,
    )
    density_map = estimator.estimate(
        prediction.mean[split.confident_indices],
        prediction.uncertainty[split.confident_indices],
        grid=grid,
    )
    return density_map, estimator, split.confident_indices


def pseudo_label_scenario(
    bundle: TaskBundle,
    scenario: TargetScenario,
    calibration: SourceCalibration,
    grid_size: float | None = None,
    auto_grid_bins: int = 25,
    error_model: str = "gaussian",
    locality_sigmas: float = 3.0,
    mode: str = "interpolate",
):
    """Run the density-estimation + pseudo-labelling half of TASFAR on a scenario.

    Returns ``(pseudo_batch, uncertain_indices, density_map)``.
    """
    prediction = scenario_mc_prediction(bundle, scenario)
    classifier = ConfidenceClassifier()
    classifier.threshold = calibration.threshold
    split = classifier.split(prediction.uncertainty)
    density_map, estimator, _ = estimate_scenario_density(
        bundle,
        scenario,
        calibration,
        grid_size=grid_size,
        auto_grid_bins=auto_grid_bins,
        error_model=error_model,
    )
    generator = PseudoLabelGenerator(
        estimator=estimator,
        threshold=calibration.threshold,
        locality_sigmas=locality_sigmas,
        mode=mode,
        error_model=error_model,
    )
    pseudo_batch = generator.pseudo_label(
        density_map,
        prediction.mean[split.uncertain_indices],
        prediction.uncertainty[split.uncertain_indices],
    )
    return pseudo_batch, split.uncertain_indices, density_map


def true_density_map(labels: np.ndarray, reference: LabelDensityMap) -> LabelDensityMap:
    """Ground-truth density map of ``labels`` on the same grid as ``reference``."""
    return LabelDensityMap.from_labels(labels, [edge.copy() for edge in reference.edges])


def pseudo_label_error(pseudo_labels: np.ndarray, targets: np.ndarray) -> float:
    """Mean Euclidean error of pseudo-labels against the (held-back) true labels."""
    pseudo_labels = np.atleast_2d(pseudo_labels)
    targets = np.atleast_2d(targets)
    if len(pseudo_labels) == 0:
        return 0.0
    return float(np.linalg.norm(pseudo_labels - targets, axis=1).mean())
