"""Experiment harness reproducing every figure and table of the paper's evaluation."""

from .base import (
    SCALES,
    ExperimentResult,
    ScaleProfile,
    TaskBundle,
    clear_bundle_cache,
    get_bundle,
    task_names,
)
from .comparison import (
    DEFAULT_SCHEMES,
    ScenarioEvaluation,
    SchemeComparison,
    clear_comparison_cache,
    compare_task,
    get_comparison,
    register_metric,
)
from .registry import EXPERIMENTS, list_experiments, run_experiment

__all__ = [
    "DEFAULT_SCHEMES",
    "EXPERIMENTS",
    "ExperimentResult",
    "SCALES",
    "ScaleProfile",
    "ScenarioEvaluation",
    "SchemeComparison",
    "TaskBundle",
    "clear_bundle_cache",
    "clear_comparison_cache",
    "compare_task",
    "get_bundle",
    "get_comparison",
    "list_experiments",
    "register_metric",
    "run_experiment",
    "task_names",
]
