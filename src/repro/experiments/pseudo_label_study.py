"""Pseudo-label parameter studies: Fig. 8 (grid size x error model), Fig. 9 (q), Fig. 10 (eta).

All three figures report the pseudo-label error on PDR while sweeping one
system parameter:

* Fig. 8 — the grid size, under Gaussian / Laplace / Uniform instance-label
  error models; small grids are fine (interpolation makes the method robust),
  very large grids degrade, and the error-model family barely matters.
* Fig. 9 — the number of uncertainty segments ``q`` used to fit ``Q_s``; the
  error converges quickly, so a handful of segments suffices.
* Fig. 10 — the confidence ratio ``eta``; a wide band of values works, with
  degradation only at the extremes.
"""

from __future__ import annotations

import numpy as np

from .base import ExperimentResult, get_bundle
from .helpers import build_calibration, pseudo_label_error, pseudo_label_scenario

__all__ = ["fig8_grid_size_pseudo_error", "fig9_segment_count", "fig10_confidence_ratio"]


def _scenario_pseudo_error(bundle, scenario, calibration, **kwargs) -> float:
    """Pseudo-label error of one scenario under the given TASFAR settings."""
    pseudo_batch, uncertain_indices, _ = pseudo_label_scenario(
        bundle, scenario, calibration, **kwargs
    )
    if len(uncertain_indices) == 0:
        return 0.0
    return pseudo_label_error(
        pseudo_batch.pseudo_labels, scenario.adaptation.targets[uncertain_indices]
    )


def fig8_grid_size_pseudo_error(
    scale: str = "small",
    seed: int = 0,
    grid_sizes: tuple[float, ...] = (0.05, 0.1, 0.2, 0.4, 0.8),
    error_models: tuple[str, ...] = ("gaussian", "laplace", "uniform"),
    n_users: int = 3,
) -> ExperimentResult:
    """Pseudo-label error vs. grid size for different error-model families."""
    bundle = get_bundle("pdr", scale, seed)
    calibration = build_calibration(bundle)
    scenarios = bundle.task.scenarios[:n_users]
    rows = []
    for grid_size in grid_sizes:
        row: list[object] = [grid_size]
        for error_model in error_models:
            errors = [
                _scenario_pseudo_error(
                    bundle, scenario, calibration, grid_size=grid_size, error_model=error_model
                )
                for scenario in scenarios
            ]
            row.append(float(np.mean(errors)))
        rows.append(row)
    return ExperimentResult(
        experiment_id="fig8_grid_size_pseudo_error",
        description="Pseudo-label error vs. grid size per instance-label error model",
        columns=["grid_size_m"] + [f"pseudo_err_{name}" for name in error_models],
        rows=rows,
        paper_expectation=(
            "error-model families behave similarly; small grids work well and only "
            "very large grids degrade the pseudo-labels"
        ),
    )


def fig9_segment_count(
    scale: str = "small",
    seed: int = 0,
    segment_counts: tuple[int, ...] = (2, 5, 10, 20, 40, 80),
    n_users: int = 3,
) -> ExperimentResult:
    """Pseudo-label error vs. the number of uncertainty segments ``q``."""
    bundle = get_bundle("pdr", scale, seed)
    scenarios = bundle.task.scenarios[:n_users]
    rows = []
    for n_segments in segment_counts:
        calibration = build_calibration(bundle, n_segments=n_segments)
        errors = [
            _scenario_pseudo_error(bundle, scenario, calibration) for scenario in scenarios
        ]
        rows.append([n_segments, float(np.mean(errors))])
    return ExperimentResult(
        experiment_id="fig9_segment_count",
        description="Pseudo-label error vs. segment quantity q used for the Q_s fit",
        columns=["q", "pseudo_error"],
        rows=rows,
        paper_expectation="the error converges with a small q; only very small q is noticeably worse",
    )


def fig10_confidence_ratio(
    scale: str = "small",
    seed: int = 0,
    ratios: tuple[float, ...] = (0.5, 0.7, 0.8, 0.9, 0.95, 0.99),
    n_users: int = 3,
) -> ExperimentResult:
    """Pseudo-label error vs. the confidence ratio ``eta``."""
    bundle = get_bundle("pdr", scale, seed)
    scenarios = bundle.task.scenarios[:n_users]
    rows = []
    for ratio in ratios:
        calibration = build_calibration(bundle, confidence_ratio=ratio)
        errors = []
        n_uncertain = []
        for scenario in scenarios:
            pseudo_batch, uncertain_indices, _ = pseudo_label_scenario(bundle, scenario, calibration)
            n_uncertain.append(len(uncertain_indices))
            if len(uncertain_indices):
                errors.append(
                    pseudo_label_error(
                        pseudo_batch.pseudo_labels,
                        scenario.adaptation.targets[uncertain_indices],
                    )
                )
        rows.append(
            [ratio, float(np.mean(errors)) if errors else 0.0, float(np.mean(n_uncertain))]
        )
    return ExperimentResult(
        experiment_id="fig10_confidence_ratio",
        description="Pseudo-label error vs. confidence ratio eta",
        columns=["eta", "pseudo_error", "mean_n_uncertain"],
        rows=rows,
        paper_expectation=(
            "a wide band of eta works; very small eta mixes accurate predictions into the "
            "uncertain set, very large eta leaves little data to adapt on"
        ),
    )
