"""Label-density-map studies: Fig. 6 (estimated vs. true maps) and Fig. 7 (grid size).

Fig. 6 visualizes the estimated and ground-truth 2-D displacement density maps
of two PDR users and observes that the estimator captures the ring shape and
its clusters.  Fig. 7 sweeps the grid size and reports the mean absolute error
of the estimated map, which falls as the grid gets coarser.
"""

from __future__ import annotations

import numpy as np

from ..core import LabelDensityMap
from .base import ExperimentResult, get_bundle
from .helpers import build_calibration, estimate_scenario_density, true_density_map

__all__ = ["fig6_density_maps", "fig7_grid_size_map_error", "map_similarity"]


def map_similarity(estimated: LabelDensityMap, truth: LabelDensityMap) -> dict[str, float]:
    """Similarity statistics between an estimated and a ground-truth map."""
    mae = estimated.mean_absolute_error(truth)
    est = estimated.densities.ravel()
    ref = truth.densities.ravel()
    if est.std() > 0 and ref.std() > 0:
        correlation = float(np.corrcoef(est, ref)[0, 1])
    else:
        correlation = 0.0
    overlap = float(np.minimum(est, ref).sum())
    return {"mae": mae, "correlation": correlation, "overlap": overlap}


def fig6_density_maps(scale: str = "small", seed: int = 0, n_users: int = 2) -> ExperimentResult:
    """Estimated vs. true 2-D label density maps for a couple of PDR users."""
    bundle = get_bundle("pdr", scale, seed)
    calibration = build_calibration(bundle)
    rows = []
    maps = {}
    for scenario in bundle.task.scenarios[:n_users]:
        estimated, _, _ = estimate_scenario_density(bundle, scenario, calibration)
        truth = true_density_map(scenario.adaptation.targets, estimated)
        similarity = map_similarity(estimated, truth)
        maps[scenario.name] = {"estimated": estimated, "true": truth}
        rows.append(
            [
                scenario.name,
                similarity["mae"],
                similarity["correlation"],
                similarity["overlap"],
                float(np.linalg.norm(scenario.adaptation.targets, axis=1).mean()),
            ]
        )
    return ExperimentResult(
        experiment_id="fig6_density_maps",
        description="Estimated vs. true label density maps (2-D PDR displacements)",
        columns=["user", "map_mae", "map_correlation", "map_overlap", "ring_radius"],
        rows=rows,
        paper_expectation=(
            "the estimated maps capture the ring-shaped pattern of the true maps "
            "(high correlation/overlap, low MAE)"
        ),
        notes={"maps": maps},
    )


def fig7_grid_size_map_error(
    scale: str = "small",
    seed: int = 0,
    grid_sizes: tuple[float, ...] = (0.05, 0.1, 0.2, 0.4, 0.8),
) -> ExperimentResult:
    """Density-map estimation error as a function of the grid size."""
    bundle = get_bundle("pdr", scale, seed)
    calibration = build_calibration(bundle)
    scenario = bundle.task.scenarios[0]
    rows = []
    for grid_size in grid_sizes:
        estimated, _, _ = estimate_scenario_density(
            bundle, scenario, calibration, grid_size=grid_size
        )
        truth = true_density_map(scenario.adaptation.targets, estimated)
        rows.append(
            [
                grid_size,
                estimated.mean_absolute_error(truth, per_unit=True),
                estimated.mean_absolute_error(truth),
                int(np.prod(estimated.shape)),
            ]
        )
    return ExperimentResult(
        experiment_id="fig7_grid_size_map_error",
        description="Label-density-map MAE vs. grid size",
        columns=["grid_size_m", "map_mae_per_unit", "map_mae_mass", "n_cells"],
        rows=rows,
        paper_expectation="larger grid sizes give lower map estimation error (MAE falls monotonically)",
    )
