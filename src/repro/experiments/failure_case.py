"""Fig. 22: the failure case — a target mixing the data of two different users.

When two users' data are pooled into one "target scenario", the label
distribution displays a double-ring shape: one user's distribution is not a
useful prior for the other, so TASFAR only marginally improves over the source
model (it degrades gracefully because pseudo-labels stay close to the source
predictions and the spread-out density map yields small credibility weights).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..baselines import TasfarAdapter
from ..core import TasfarConfig
from ..data import merge_scenarios
from ..metrics import step_error
from .base import ExperimentResult, get_bundle
from .comparison import get_comparison
from .helpers import build_calibration, estimate_scenario_density

__all__ = ["fig22_failure_case"]


def _pick_dissimilar_users(bundle) -> tuple:
    """Pick the two users whose stride-length distributions differ the most."""
    scenarios = bundle.task.scenarios
    means = [float(np.linalg.norm(s.adaptation.targets, axis=1).mean()) for s in scenarios]
    low = scenarios[int(np.argmin(means))]
    high = scenarios[int(np.argmax(means))]
    if low.name == high.name and len(scenarios) > 1:
        high = scenarios[1]
    return low, high


def fig22_failure_case(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Mix two users into one target and measure how much TASFAR still helps."""
    bundle = get_bundle("pdr", scale, seed)
    comparison = get_comparison("pdr", scale, seed)
    user_a, user_b = _pick_dissimilar_users(bundle)

    mixed = merge_scenarios([user_a, user_b], name="mixed_users")
    adapter = TasfarAdapter(TasfarConfig(seed=seed))
    adapter.calibration = bundle.calibration
    result = adapter.adapt(bundle.source_model, mixed.adaptation.inputs)
    trainer = nn.Trainer(result.target_model)

    base_mixed = step_error(bundle.predict(mixed.adaptation.inputs), mixed.adaptation.targets)
    adapted_mixed = step_error(trainer.predict(mixed.adaptation.inputs), mixed.adaptation.targets)
    mixed_reduction = (base_mixed - adapted_mixed) / base_mixed if base_mixed else 0.0

    per_user_reductions = []
    for user in (user_a, user_b):
        evaluation = comparison.scenario(user.name)
        base = evaluation.metrics["baseline"]["adaptation"]["ste"]
        adapted = evaluation.metrics["tasfar"]["adaptation"]["ste"]
        per_user_reductions.append((base - adapted) / base if base else 0.0)

    # Characterize the mixed label distribution: spread of step lengths shows the
    # double-ring structure (bimodality) relative to the single users.
    calibration = build_calibration(bundle)
    mixed_map, _, _ = estimate_scenario_density(bundle, mixed, calibration)
    rows = [
        ["mixed_target", mixed_reduction, base_mixed, adapted_mixed],
        [f"per_user_{user_a.name}", per_user_reductions[0], np.nan, np.nan],
        [f"per_user_{user_b.name}", per_user_reductions[1], np.nan, np.nan],
    ]
    return ExperimentResult(
        experiment_id="fig22_failure_case",
        description="Failure case: adapting to a target that mixes two users' data",
        columns=["setting", "ste_reduction", "baseline_ste", "adapted_ste"],
        rows=rows,
        paper_expectation=(
            "adaptation on the mixed target brings only a marginal improvement (~1% in the paper), "
            "well below the per-user adaptations, because the double-ring label distribution of one "
            "user cannot serve as the prior of the other"
        ),
        notes={
            "users": (user_a.name, user_b.name),
            "mixed_map_entropy": float(
                -(mixed_map.densities[mixed_map.densities > 0]
                  * np.log(mixed_map.densities[mixed_map.densities > 0])).sum()
            ),
            "per_user_mean_reduction": float(np.mean(per_user_reductions)),
        },
    )
