"""Motivating observations: Fig. 2 (label distributions) and Fig. 3 (uncertainty vs. error).

These two figures justify TASFAR's premises:

* Fig. 2 — the label distribution characterizes the target scenario: different
  PDR users have visibly different stride-length distributions.
* Fig. 3 — prediction uncertainty correlates with prediction error, so the
  uncertainty can drive both the confidence split and the ``Q_s`` calibration.
"""

from __future__ import annotations

import numpy as np

from ..metrics import pearson_correlation
from .base import ExperimentResult, get_bundle
from .helpers import scenario_mc_prediction

__all__ = ["fig2_label_distributions", "fig3_uncertainty_error"]


def fig2_label_distributions(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Per-user stride-length statistics (the 1-D shadow of Fig. 2)."""
    bundle = get_bundle("pdr", scale, seed)
    rows = []
    for scenario in bundle.task.scenarios:
        strides = np.linalg.norm(scenario.adaptation.targets, axis=1)
        rows.append(
            [
                scenario.name,
                scenario.metadata["group"],
                float(strides.mean()),
                float(strides.std()),
                float(np.quantile(strides, 0.1)),
                float(np.quantile(strides, 0.9)),
            ]
        )
    return ExperimentResult(
        experiment_id="fig2_label_distributions",
        description="Stride-length (label) distribution per PDR user",
        columns=["user", "group", "stride_mean", "stride_std", "q10", "q90"],
        rows=rows,
        paper_expectation=(
            "different users have clearly different stride-length distributions, "
            "so the label distribution characterizes the target scenario"
        ),
    )


def fig3_uncertainty_error(scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Prediction error grouped by uncertainty quantile (Fig. 3's trend)."""
    bundle = get_bundle("pdr", scale, seed)
    quantiles = (0.25, 0.5, 0.75, 1.0)
    rows = []
    correlations = []
    for scenario in bundle.task.scenarios:
        prediction = scenario_mc_prediction(bundle, scenario)
        errors = np.linalg.norm(prediction.mean - scenario.adaptation.targets, axis=1)
        correlations.append(pearson_correlation(prediction.uncertainty, errors))
        order = np.argsort(prediction.uncertainty)
        chunks = np.array_split(order, len(quantiles))
        rows.append(
            [scenario.name]
            + [float(errors[chunk].mean()) for chunk in chunks]
        )
    notes = {"mean_correlation": float(np.mean(correlations))}
    return ExperimentResult(
        experiment_id="fig3_uncertainty_error",
        description="Mean step error per uncertainty quartile (low to high)",
        columns=["user", "err_q1", "err_q2", "err_q3", "err_q4"],
        rows=rows,
        paper_expectation="error grows with prediction uncertainty (positive trend across quartiles)",
        notes=notes,
    )
