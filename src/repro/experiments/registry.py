"""Registry mapping experiment ids to their callables.

Every entry reproduces one figure or table of the paper (plus the two
motivating figures).  The callables all share the signature
``fn(scale="small", seed=0) -> ExperimentResult``.
"""

from __future__ import annotations

from typing import Callable

from .assumptions import fig2_label_distributions, fig3_uncertainty_error
from .base import ExperimentResult
from .counting import fig19_counting_scenes, fig20_partitioning, table1_crowd_counting
from .credibility_study import fig11_credibility_correlation, fig12_credibility_ablation
from .density_maps import fig6_density_maps, fig7_grid_size_map_error
from .failure_case import fig22_failure_case
from .learning_curves import fig13_learning_curves
from .pdr_comparison import (
    fig14_ste_reduction_seen,
    fig15_adaptation_vs_test,
    fig16_uncertain_ratio,
    fig17_rte_reduction_seen,
    fig18_rte_reduction_unseen,
)
from .prediction import fig21_prediction_tasks
from .pseudo_label_study import (
    fig8_grid_size_pseudo_error,
    fig9_segment_count,
    fig10_confidence_ratio,
)

__all__ = ["EXPERIMENTS", "run_experiment", "list_experiments"]

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig2_label_distributions": fig2_label_distributions,
    "fig3_uncertainty_error": fig3_uncertainty_error,
    "fig6_density_maps": fig6_density_maps,
    "fig7_grid_size_map_error": fig7_grid_size_map_error,
    "fig8_grid_size_pseudo_error": fig8_grid_size_pseudo_error,
    "fig9_segment_count": fig9_segment_count,
    "fig10_confidence_ratio": fig10_confidence_ratio,
    "fig11_credibility_correlation": fig11_credibility_correlation,
    "fig12_credibility_ablation": fig12_credibility_ablation,
    "fig13_learning_curves": fig13_learning_curves,
    "fig14_ste_reduction_seen": fig14_ste_reduction_seen,
    "fig15_adaptation_vs_test": fig15_adaptation_vs_test,
    "fig16_uncertain_ratio": fig16_uncertain_ratio,
    "fig17_rte_reduction_seen": fig17_rte_reduction_seen,
    "fig18_rte_reduction_unseen": fig18_rte_reduction_unseen,
    "table1_crowd_counting": table1_crowd_counting,
    "fig19_counting_scenes": fig19_counting_scenes,
    "fig20_partitioning": fig20_partitioning,
    "fig21_prediction_tasks": fig21_prediction_tasks,
    "fig22_failure_case": fig22_failure_case,
}


def list_experiments() -> list[str]:
    """Identifiers of all registered experiments."""
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str, scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Run one experiment by id."""
    try:
        experiment = EXPERIMENTS[experiment_id]
    except KeyError as exc:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; known ids: {', '.join(EXPERIMENTS)}"
        ) from exc
    return experiment(scale=scale, seed=seed)
