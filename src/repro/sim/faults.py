"""Pluggable fault plans injected into a simulated workload.

A :class:`FaultPlan` attacks the serving stack at two seams, both
deterministic under the simulation seed:

* **wire level** — :meth:`FaultPlan.mutate_trace` rewrites the compiled
  event trace before anything runs: duplicating stream events (client
  retries, replica fan-out), shuffling a tick's lines out of order, blanking
  lines into junk, and corrupting payload values so they fail the request
  codec.  Everything still flows through the real decode path, so the stack
  must answer every mutated line with a typed envelope and keep going.
* **state level** — :meth:`FaultPlan.before_tick` reaches into the live
  gateway between ticks: restarting a shard's worker pool (a crashed and
  respawned worker) or evicting the LRU model caches mid-burst (memory
  pressure), forcing source-model fallbacks and cold re-adaptations.

Plans live in a registry (:func:`register_fault_plan` /
:func:`create_fault_plan`), so a scenario file selects one by name — and a
future PR can ship a new failure mode as one registration call.

Shipped plans: ``none``, ``wire_chaos``, ``shard_crash``, ``cache_thrash``,
``conn_churn``, ``slow_client``, ``snapshot_chaos`` (``conn_churn`` and
``slow_client`` act on the *transport* and so only bite when the simulator
drives a live socket server; in-process they record ``applied=False`` and
change nothing).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Callable

import numpy as np

from .spec import TraceEvent, WorkloadTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .simulator import Simulator

__all__ = [
    "FaultPlan",
    "FAULT_PLANS",
    "register_fault_plan",
    "create_fault_plan",
    "fault_plan_names",
]


class FaultPlan:
    """Base fault plan: no faults.  Subclasses override one or both hooks."""

    name = "none"

    def __init__(self, **options) -> None:
        unknown = set(options) - set(self.option_defaults())
        if unknown:
            raise ValueError(
                f"unknown option(s) {sorted(unknown)} for fault plan {self.name!r}; "
                f"expected a subset of {sorted(self.option_defaults())}"
            )
        self.options = {**self.option_defaults(), **options}
        #: Chronological log of injected faults (goes into the invariant report).
        self.log: list[dict] = []

    @classmethod
    def option_defaults(cls) -> dict:
        """Recognized options and their defaults (subclasses override)."""
        return {}

    def record(self, **entry) -> None:
        """Append one fault occurrence to the plan's log."""
        self.log.append(entry)

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def mutate_trace(self, trace: WorkloadTrace, rng: np.random.Generator) -> WorkloadTrace:
        """Rewrite the compiled trace (wire-level faults).  Default: no-op."""
        return trace

    def before_tick(self, simulator: "Simulator", tick: int) -> None:
        """Inject state-level faults before a tick runs.  Default: no-op."""

    def describe(self) -> dict:
        """JSON-safe identity of the plan (name + resolved options)."""
        return {"name": self.name, "options": dict(self.options)}


class WireChaosPlan(FaultPlan):
    """Duplicate, reorder, junk, and corrupt wire lines.

    Every mutation produces traffic the stack must absorb without crashing:
    duplicates are byte-identical (so deduped predicts coalesce and repeated
    stream batches fold in deterministically whatever their relative order),
    junk lines and corrupted payloads must come back as typed error
    envelopes, and the shuffle delivers a tick's events out of order.
    """

    name = "wire_chaos"

    _JUNK_LINES = (
        "this is not json {",
        '{"kind": "warp", "target_id": "nobody"}',
        '{"kind": ["stream"], "target_id": "nobody"}',
        '{"kind": "stream", "target_id": "nobody", "batch": []}',
        "[1, 2, 3]",
        '{"kind": "predict", "target_id": "nobody"}',
    )

    @classmethod
    def option_defaults(cls) -> dict:
        return {
            "duplicate_rate": 0.25,
            "junk_rate": 0.15,
            "corrupt_rate": 0.15,
            "shuffle": True,
        }

    def mutate_trace(self, trace: WorkloadTrace, rng: np.random.Generator) -> WorkloadTrace:
        duplicate_rate = float(self.options["duplicate_rate"])
        junk_rate = float(self.options["junk_rate"])
        corrupt_rate = float(self.options["corrupt_rate"])
        for tick, events in enumerate(trace.ticks):
            mutated: list[TraceEvent] = []
            for event in events:
                if event.kind in ("stream", "predict") and rng.random() < corrupt_rate:
                    event = TraceEvent(
                        tick, 0, event.kind, event.user, _corrupt_line(event.line), "corrupt"
                    )
                    self.record(tick=tick, fault="corrupt", user=event.user)
                mutated.append(event)
                if event.kind in ("stream", "predict") and rng.random() < duplicate_rate:
                    mutated.append(
                        TraceEvent(tick, 0, event.kind, event.user, event.line, "duplicate")
                    )
                    self.record(tick=tick, fault="duplicate", user=event.user)
            n_junk = int(rng.binomial(max(1, len(mutated)), junk_rate))
            for _ in range(n_junk):
                junk = self._JUNK_LINES[int(rng.integers(len(self._JUNK_LINES)))]
                mutated.append(TraceEvent(tick, 0, "junk", None, junk, "junk"))
                self.record(tick=tick, fault="junk")
            if self.options["shuffle"]:
                order = rng.permutation(len(mutated))
                mutated = [mutated[i] for i in order]
            trace.ticks[tick] = mutated
        trace.resequence()
        return trace


def _corrupt_line(line: str) -> str:
    """Poison one numeric payload value so the request codec must reject it.

    The corruption targets the *decode boundary* on purpose: a non-numeric
    cell makes ``np.asarray(..., dtype=float64)`` raise inside
    :func:`repro.serve.decode_request`, which the loop must answer with an
    error envelope — the stack's state never sees the bad sample, mirroring
    a frontend that validates before it forwards.
    """
    payload = json.loads(line)
    for field in ("inputs", "batch"):
        block = payload.get(field)
        if isinstance(block, list) and block and isinstance(block[0], list) and block[0]:
            block[0][0] = "0xDEAD"
            return json.dumps(payload)
    return "corrupted " + line[:40]


class ShardCrashPlan(FaultPlan):
    """Crash (and respawn) one shard's worker pool every ``every`` ticks.

    Rotates through the shards so every pool dies at least once in a long
    enough run.  Under ``executor="process"`` this kills the shard's real
    worker *processes* (SIGTERM, fresh pool respawned, weights re-shipped);
    under threads it swaps the dispatch pool.  Either way requests queued at
    crash time resolve to error envelopes instead of hanging — but the plan
    fires *between* ticks, when the simulator has nothing in flight, so the
    shard's *service state* (cached models, stream buffers, reports)
    survives and the transcript must be byte-identical to a run without
    crashes.
    """

    name = "shard_crash"

    @classmethod
    def option_defaults(cls) -> dict:
        return {"every": 3}

    def before_tick(self, simulator: "Simulator", tick: int) -> None:
        every = int(self.options["every"])
        if tick == 0 or tick % every:
            return
        shard = (tick // every - 1) % simulator.gateway.n_shards
        simulator.gateway.restart_shard_workers(shard)
        self.record(tick=tick, fault="shard_crash", shard=shard)


class CacheThrashPlan(FaultPlan):
    """Evict every shard's LRU model cache every ``every`` ticks, mid-run.

    After an eviction the next predictions fall back to the source model
    (or error under ``strict``) and the next stream-triggered re-adaptation
    starts cold instead of warm — all of which the invariants must still
    hold under, and all of which replays exactly because the evictions are
    scheduled, not capacity-raced.
    """

    name = "cache_thrash"

    @classmethod
    def option_defaults(cls) -> dict:
        return {"every": 2}

    def before_tick(self, simulator: "Simulator", tick: int) -> None:
        every = int(self.options["every"])
        if tick == 0 or tick % every:
            return
        evicted: list[str] = []
        for service in simulator.gateway.shards:
            evicted.extend(service.evict())
        self.record(tick=tick, fault="cache_thrash", evicted=sorted(evicted))


class SnapshotChaosPlan(FaultPlan):
    """Thrash the warm snapshot tier: scheduled evictions plus file rot.

    Every ``every`` ticks the plan evicts every shard's LRU model cache —
    with a :class:`~repro.runtime.SnapshotStore` attached each eviction
    *spills* the adapted state to disk, so the next touch exercises the
    warm-resume path instead of a cold re-adaptation.  Every
    ``corrupt_every`` ticks it additionally **corrupts one snapshot file**
    in place (truncated junk that fails the checksum), so a later resume
    must detect the rot, count it (``snapshots.corrupt``), discard the
    file, and fall back to a cold adapt — the corruption oracle.

    Both halves are deterministic: evictions are scheduled by tick, and
    the corruption victim is picked by sorting every shard store's file
    list and indexing with tick arithmetic — no RNG, so two runs of the
    same spec rot the same file at the same tick and the transcripts stay
    byte-identical (which ``verify_replay`` checks with this plan active).

    Without ``spec.snapshots`` the stores are absent; evictions still
    fire (degrading to plain ``cache_thrash``) and corruption records
    ``applied=False``.
    """

    name = "snapshot_chaos"

    @classmethod
    def option_defaults(cls) -> dict:
        return {"every": 2, "corrupt_every": 4}

    def before_tick(self, simulator: "Simulator", tick: int) -> None:
        if tick == 0:
            return
        every = int(self.options["every"])
        corrupt_every = int(self.options["corrupt_every"])
        if every and tick % every == 0:
            evicted: list[str] = []
            for service in simulator.gateway.shards:
                evicted.extend(service.evict())
            self.record(tick=tick, fault="snapshot_evict", evicted=sorted(evicted))
        if corrupt_every and tick % corrupt_every == 0:
            victim = self._corrupt_one(simulator, tick)
            self.record(
                tick=tick,
                fault="snapshot_corrupt",
                applied=victim is not None,
                file=victim,
            )

    @staticmethod
    def _corrupt_one(simulator: "Simulator", tick: int) -> str | None:
        """Rot one spilled snapshot, chosen without randomness.

        Files are gathered per shard in shard order (each store's own list
        is already sorted), so the victim index depends only on the spill
        history — identical across replay runs of the same spec.
        """
        files = []
        for service in simulator.gateway.shards:
            store = getattr(service, "snapshot_store", None)
            if store is not None:
                files.extend(store.files())
        if not files:
            return None
        victim = files[tick % len(files)]
        victim.write_bytes(b'{"schema": "repro.snapshot/v1", "rotted": tru')
        return victim.name


class ConnChurnPlan(FaultPlan):
    """Drop every client connection every ``every`` ticks (network runs).

    Attacks the transport seam the other plans cannot reach: when the
    simulator drives a live socket server (``repro simulate --connect``),
    each mutator-chain thread holds its own TCP connection, and this plan
    severs all of them between ticks via the remote gateway's
    :meth:`~repro.net.RemoteGateway.schedule_churn` hook.  Connections are
    dropped at operation boundaries — never between sending a burst and
    reading its answers — so no request is lost or replayed and the
    transcript stays byte-identical to an unchurned (or in-process) run,
    while the server sees real disconnect/reconnect cycles
    (``net.connections.opened/closed`` count every one).

    In-process gateways have no connections to churn; the plan records
    ``applied=False`` so a transcript comparison across transports still
    sees identical *traffic* while the fault log stays honest.
    """

    name = "conn_churn"

    @classmethod
    def option_defaults(cls) -> dict:
        return {"every": 2}

    def before_tick(self, simulator: "Simulator", tick: int) -> None:
        every = int(self.options["every"])
        if tick == 0 or tick % every:
            return
        schedule = getattr(simulator.gateway, "schedule_churn", None)
        applied = bool(schedule()) if callable(schedule) else False
        self.record(tick=tick, fault="conn_churn", applied=applied)


class SlowClientPlan(FaultPlan):
    """Stall one client's reader every ``every`` ticks (network runs).

    The backpressure probe: via
    :meth:`~repro.net.RemoteGateway.schedule_stall`, one connection sends
    its next burst and then refuses to read answers for ``stall_seconds``.
    The server must keep every *other* connection flowing, park the
    stalled one's responses in its bounded queue (TCP window past the hard
    cap), and never drop or reorder anything — the stall is pure
    wall-clock, so the transcript is still byte-identical after
    wall-clock scrubbing.  Records ``applied=False`` in-process, where
    there is no reader to stall.
    """

    name = "slow_client"

    @classmethod
    def option_defaults(cls) -> dict:
        return {"every": 2, "stall_seconds": 0.2}

    def before_tick(self, simulator: "Simulator", tick: int) -> None:
        every = int(self.options["every"])
        if tick == 0 or tick % every:
            return
        schedule = getattr(simulator.gateway, "schedule_stall", None)
        stall = float(self.options["stall_seconds"])
        applied = bool(schedule(stall)) if callable(schedule) else False
        self.record(tick=tick, fault="slow_client", applied=applied, stall_seconds=stall)


FAULT_PLANS: dict[str, Callable[..., FaultPlan]] = {}


def register_fault_plan(name: str, factory: Callable[..., FaultPlan], replace: bool = False) -> None:
    """Register a fault plan factory under ``name`` (one call per new plan)."""
    if name in FAULT_PLANS and not replace:
        raise ValueError(f"fault plan {name!r} is already registered (pass replace=True)")
    FAULT_PLANS[name] = factory


def create_fault_plan(name: str, **options) -> FaultPlan:
    """Instantiate a registered fault plan with ``options``."""
    try:
        factory = FAULT_PLANS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown fault plan {name!r}; expected one of {fault_plan_names()}"
        ) from exc
    return factory(**options)


def fault_plan_names() -> tuple[str, ...]:
    """Registered fault plan names, registration order."""
    return tuple(FAULT_PLANS)


register_fault_plan("none", FaultPlan)
register_fault_plan("wire_chaos", WireChaosPlan)
register_fault_plan("shard_crash", ShardCrashPlan)
register_fault_plan("cache_thrash", CacheThrashPlan)
register_fault_plan("snapshot_chaos", SnapshotChaosPlan)
register_fault_plan("conn_churn", ConnChurnPlan)
register_fault_plan("slow_client", SlowClientPlan)
