"""System-level invariants checked after every simulated tick.

The simulator is only as useful as its oracle.  :class:`InvariantSuite`
watches the live gateway while a workload replays and checks the properties
every PR since the seed has promised:

* ``envelope_schema`` — every answer, success or failure, is a well-formed
  versioned envelope: exactly the documented keys, ``ok`` consistent with
  ``payload``/``error``, schema stamped.
* ``shard_placement`` — a target is served by the shard rendezvous hashing
  says it owns, and that placement never moves during a run (worker crashes
  and cache evictions included).
* ``coalesced_bit_identity`` — every prediction answered inside a
  micro-batched burst is re-submitted alone and must match **bit for bit**
  (shape, dtype, and bytes), the serving redesign's core guarantee.
* ``monotone_accounting`` — per-target stream counters (steps, events,
  cold/warm adaptations) and per-shard report counts only ever grow; an
  ingest can never un-happen, whatever faults fire.

A fifth property, **replay determinism** (same spec + seed → byte-identical
transcript), spans two runs and therefore lives in
:func:`repro.sim.simulator.verify_replay`; its result is merged into the
same report shape.

Violations carry the tick and a human-readable detail; the suite never
raises — the report is data, mirroring the envelope philosophy of the stack
it checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..serve.gateway import Gateway
from ..serve.protocol import SCHEMA, PredictRequest, Request
from ..streaming.service import StreamingAdaptationService
from .spec import TraceEvent

__all__ = ["INVARIANT_NAMES", "InvariantViolation", "RequestRecord", "InvariantSuite"]

#: Invariants the suite checks per tick (replay determinism is cross-run).
INVARIANT_NAMES = (
    "envelope_schema",
    "shard_placement",
    "coalesced_bit_identity",
    "monotone_accounting",
)

#: Exactly the keys of the wire form of an envelope (protocol v1).
ENVELOPE_KEYS = frozenset(
    {"schema", "ok", "kind", "target_id", "payload", "error", "duration_seconds"}
)

#: Stream-stat counters that must be non-decreasing over a target's life.
MONOTONE_COUNTERS = ("steps", "total_events", "cold_adaptations", "warm_adaptations")


@dataclass
class InvariantViolation:
    """One failed check: which invariant, when, and what went wrong."""

    invariant: str
    tick: int
    detail: str

    def to_dict(self) -> dict:
        return {"invariant": self.invariant, "tick": self.tick, "detail": self.detail}


@dataclass
class RequestRecord:
    """One wire line's journey: the trace event, its decoded request (or
    ``None`` when decoding failed), and the envelope that answered it."""

    event: TraceEvent
    request: Request | None
    envelope: object  # repro.serve.Envelope (in-process: payload may hold arrays)


class InvariantSuite:
    """Stateful checker fed one tick of :class:`RequestRecord`\\ s at a time.

    Parameters
    ----------
    gateway:
        The live gateway under test; placement and accounting checks read
        it directly.
    verify_coalescing:
        Re-submit every burst-answered prediction individually and compare
        bits.  Costs one extra forward per successful predict; scenario
        files can switch it off for throughput-oriented runs.
    """

    def __init__(self, gateway: Gateway, verify_coalescing: bool = True) -> None:
        self.gateway = gateway
        self.verify_coalescing = verify_coalescing
        self.violations: list[InvariantViolation] = []
        self.checks: dict[str, int] = {name: 0 for name in INVARIANT_NAMES}
        self._placements: dict[str, int] = {}
        self._last_stats: dict[str, dict] = {}
        self._last_report_counts: list[int] = [0] * gateway.n_shards

    # ------------------------------------------------------------------
    # Observation entry points
    # ------------------------------------------------------------------
    def observe_tick(self, tick: int, records: list[RequestRecord]) -> None:
        """Check every envelope of one tick, then the cross-request properties."""
        for record in records:
            self._check_envelope_schema(tick, record)
            self._check_shard_placement(tick, record)
        if self.verify_coalescing:
            # Byte-identical duplicates (retry/fan-out traffic) share one
            # answer by construction — verifying one representative per
            # distinct payload checks the same property for half the forwards.
            seen: set = set()
            for record in records:
                request = record.request
                if not isinstance(request, PredictRequest) or not record.envelope.ok:
                    continue
                key = (
                    request.target_id,
                    request.batch_size,
                    request.strict,
                    request.inputs.tobytes(),
                )
                if key in seen:
                    continue
                seen.add(key)
                self._check_coalesced_bits(tick, record)
        self._check_accounting(tick)

    def _fail(self, invariant: str, tick: int, detail: str) -> None:
        self.violations.append(InvariantViolation(invariant, tick, detail))

    # ------------------------------------------------------------------
    # Individual invariants
    # ------------------------------------------------------------------
    def _check_envelope_schema(self, tick: int, record: RequestRecord) -> None:
        self.checks["envelope_schema"] += 1
        wire = record.envelope.to_dict()
        name = "envelope_schema"
        keys = set(wire)
        if keys != ENVELOPE_KEYS:
            self._fail(name, tick, f"envelope keys {sorted(keys)} != {sorted(ENVELOPE_KEYS)}")
            return
        if wire["schema"] != SCHEMA:
            self._fail(name, tick, f"schema {wire['schema']!r} != {SCHEMA!r}")
        if not isinstance(wire["ok"], bool) or not isinstance(wire["kind"], str):
            self._fail(name, tick, f"ok/kind badly typed in {wire!r}")
            return
        if wire["target_id"] is not None and not isinstance(wire["target_id"], str):
            self._fail(name, tick, f"target_id not a string: {wire['target_id']!r}")
        if not isinstance(wire["duration_seconds"], float) or wire["duration_seconds"] < 0:
            self._fail(name, tick, f"bad duration_seconds {wire['duration_seconds']!r}")
        if wire["ok"]:
            if not isinstance(wire["payload"], dict) or wire["error"] is not None:
                self._fail(name, tick, f"ok envelope without payload-only body: {wire!r}")
        else:
            error = wire["error"]
            if wire["payload"] is not None or not isinstance(error, dict):
                self._fail(name, tick, f"error envelope without error-only body: {wire!r}")
            elif not isinstance(error.get("type"), str) or not isinstance(
                error.get("message"), str
            ):
                self._fail(name, tick, f"error body missing type/message: {error!r}")

    def _check_shard_placement(self, tick: int, record: RequestRecord) -> None:
        envelope = record.envelope
        payload = envelope.payload
        if not envelope.ok or not isinstance(payload, dict) or "shard" not in payload:
            return
        self.checks["shard_placement"] += 1
        target = envelope.target_id
        shard = payload["shard"]
        expected = self.gateway.shard_for(target)
        if shard != expected:
            self._fail(
                "shard_placement",
                tick,
                f"target {target!r} answered by shard {shard}, rendezvous says {expected}",
            )
        previous = self._placements.setdefault(target, shard)
        if previous != shard:
            self._fail(
                "shard_placement",
                tick,
                f"target {target!r} moved from shard {previous} to {shard} mid-run",
            )

    def _check_coalesced_bits(self, tick: int, record: RequestRecord) -> None:
        """Re-submit a burst-answered prediction alone and compare bits."""
        if not isinstance(record.request, PredictRequest) or not record.envelope.ok:
            return
        self.checks["coalesced_bit_identity"] += 1
        burst = record.envelope.payload
        solo = self.gateway.submit(record.request)
        if not solo.ok:
            self._fail(
                "coalesced_bit_identity",
                tick,
                f"solo re-submit for {record.request.target_id!r} failed: {solo.error}",
            )
            return
        a = np.asarray(burst["prediction"])
        b = np.asarray(solo.payload["prediction"])
        if a.shape != b.shape or a.dtype != b.dtype or a.tobytes() != b.tobytes():
            self._fail(
                "coalesced_bit_identity",
                tick,
                f"coalesced != solo prediction for {record.request.target_id!r} "
                f"(shapes {a.shape}/{b.shape})",
            )
        if burst["model"] != solo.payload["model"]:
            self._fail(
                "coalesced_bit_identity",
                tick,
                f"model attribution drifted for {record.request.target_id!r}: "
                f"{burst['model']} != {solo.payload['model']}",
            )

    def _check_accounting(self, tick: int) -> None:
        """Stream counters and report counts only ever grow."""
        name = "monotone_accounting"
        for shard_index, service in enumerate(self.gateway.shards):
            self.checks[name] += 1
            count = service.n_adapted
            if count < self._last_report_counts[shard_index]:
                self._fail(
                    name,
                    tick,
                    f"shard {shard_index} report count fell from "
                    f"{self._last_report_counts[shard_index]} to {count}",
                )
            self._last_report_counts[shard_index] = count
            if not isinstance(service, StreamingAdaptationService):
                continue
            for target in service.stream_ids():
                stats = service.stream_stats(target)
                self.checks[name] += 1
                previous = self._last_stats.get(target)
                if previous is not None:
                    for counter in MONOTONE_COUNTERS:
                        if stats[counter] < previous[counter]:
                            self._fail(
                                name,
                                tick,
                                f"{target!r} counter {counter} fell from "
                                f"{previous[counter]} to {stats[counter]}",
                            )
                if stats["buffered"] < 0:
                    self._fail(name, tick, f"{target!r} negative buffer {stats['buffered']}")
                adaptations = stats["cold_adaptations"] + stats["warm_adaptations"]
                if adaptations > stats["steps"]:
                    self._fail(
                        name,
                        tick,
                        f"{target!r} has more adaptations ({adaptations}) than "
                        f"ingest steps ({stats['steps']})",
                    )
                self._last_stats[target] = stats

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        """Whether every check so far passed."""
        return not self.violations

    def report(self, max_violations: int = 20) -> dict:
        """JSON-safe per-invariant summary (violations truncated per name)."""
        by_name: dict[str, list[InvariantViolation]] = {name: [] for name in INVARIANT_NAMES}
        for violation in self.violations:
            by_name.setdefault(violation.invariant, []).append(violation)
        return {
            "ok": self.ok,
            "invariants": {
                name: {
                    "ok": not broken,
                    "checks": self.checks.get(name, 0),
                    "violations": [v.to_dict() for v in broken[:max_violations]],
                    "n_violations": len(broken),
                }
                for name, broken in by_name.items()
            },
        }
