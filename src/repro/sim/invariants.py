"""System-level invariants checked after every simulated tick.

The simulator is only as useful as its oracle.  :class:`InvariantSuite`
watches the live gateway while a workload replays and checks the properties
every PR since the seed has promised:

* ``envelope_schema`` — every answer, success or failure, is a well-formed
  versioned envelope: exactly the documented keys, ``ok`` consistent with
  ``payload``/``error``, schema stamped.
* ``shard_placement`` — a target is served by the shard rendezvous hashing
  says it owns, and that placement never moves during a run (worker crashes
  and cache evictions included).
* ``coalesced_bit_identity`` — every prediction answered inside a
  micro-batched burst is re-submitted alone and must match **bit for bit**
  (shape, dtype, and bytes), the serving redesign's core guarantee.
* ``monotone_accounting`` — per-target stream counters (steps, events,
  cold/warm adaptations) and per-shard report counts only ever grow; an
  ingest can never un-happen, whatever faults fire.
* ``metrics_accounting`` — the :mod:`repro.obs` metric counters reconcile
  *exactly* with the envelope transcript: ``serve.requests{kind}`` equals
  the envelopes the gateway produced per kind (suite-induced coalescing
  re-submits included), errors match error envelopes, stream action
  counters match the actions the ok stream envelopes reported, adaptation
  counters match adapt envelopes plus stream-triggered adaptations, cache
  hit/miss counters match the ``model`` attribution of ok predictions,
  the snapshot-tier counters obey ``resumed + corrupt <= spilled`` (and
  stay zero when no store is attached), and every shard's queue-depth
  gauge is back to zero at tick end.  When
  the traffic crossed the socket transport (:mod:`repro.net`), the
  transport's per-connection ``net.*`` counters reconcile too: every wire
  line is exactly one of accepted/shed/invalid, accepted lines match the
  gateway-produced envelopes, shed lines match the typed ``overloaded``
  envelopes, and connection queues are empty at tick end.

A sixth property, **replay determinism** (same spec + seed → byte-identical
transcript), spans two runs and therefore lives in
:func:`repro.sim.simulator.verify_replay`; its result is merged into the
same report shape.

Violations carry the tick and a human-readable detail; the suite never
raises — the report is data, mirroring the envelope philosophy of the stack
it checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..serve.gateway import Gateway
from ..serve.protocol import SCHEMA, PredictRequest, Request
from ..streaming.service import StreamingAdaptationService
from .spec import TraceEvent

__all__ = ["INVARIANT_NAMES", "InvariantViolation", "RequestRecord", "InvariantSuite"]

#: Invariants the suite checks per tick (replay determinism is cross-run).
INVARIANT_NAMES = (
    "envelope_schema",
    "shard_placement",
    "coalesced_bit_identity",
    "monotone_accounting",
    "metrics_accounting",
)

#: Exactly the keys of the wire form of an envelope (protocol v1).
ENVELOPE_KEYS = frozenset(
    {"schema", "ok", "kind", "target_id", "payload", "error", "duration_seconds"}
)

#: Stream-stat counters that must be non-decreasing over a target's life.
MONOTONE_COUNTERS = ("steps", "total_events", "cold_adaptations", "warm_adaptations")


@dataclass
class InvariantViolation:
    """One failed check: which invariant, when, and what went wrong."""

    invariant: str
    tick: int
    detail: str

    def to_dict(self) -> dict:
        return {"invariant": self.invariant, "tick": self.tick, "detail": self.detail}


@dataclass
class RequestRecord:
    """One wire line's journey: the trace event, its decoded request (or
    ``None`` when decoding failed), and the envelope that answered it."""

    event: TraceEvent
    request: Request | None
    envelope: object  # repro.serve.Envelope (in-process: payload may hold arrays)


class InvariantSuite:
    """Stateful checker fed one tick of :class:`RequestRecord`\\ s at a time.

    Parameters
    ----------
    gateway:
        The live gateway under test; placement and accounting checks read
        it directly.
    verify_coalescing:
        Re-submit every burst-answered prediction individually and compare
        bits.  Costs one extra forward per successful predict; scenario
        files can switch it off for throughput-oriented runs.
    verify_metrics:
        Reconcile the :mod:`repro.obs` counters against the observed
        envelopes after every tick.  The suite tracks its *own* extra
        traffic (the coalescing re-submits) so the books still balance.
        Tests that feed the suite fabricated records (envelopes no gateway
        ever produced) must pass ``False`` — the counters cannot match
        traffic that never flowed.
    """

    def __init__(
        self,
        gateway: Gateway,
        verify_coalescing: bool = True,
        verify_metrics: bool = True,
    ) -> None:
        self.gateway = gateway
        self.verify_coalescing = verify_coalescing
        self.verify_metrics = verify_metrics
        self.violations: list[InvariantViolation] = []
        self.checks: dict[str, int] = {name: 0 for name in INVARIANT_NAMES}
        self._placements: dict[str, int] = {}
        self._last_stats: dict[str, dict] = {}
        self._last_report_counts: list[int] = [0] * gateway.n_shards
        # metrics_accounting state: what the transcript says *should* have
        # been counted, plus the counter totals that predate this suite
        # (a suite may attach to a gateway that already served traffic).
        self._expected_requests: dict[str, int] = {}
        self._expected_errors: dict[str, int] = {}
        self._expected_actions: dict[str, int] = {}
        self._expected_adapt_ok = 0
        self._expected_predict_models: dict[str, int] = {}
        self._expected_shed = 0
        self._metrics_baseline = self._metric_totals() if verify_metrics else {}

    # ------------------------------------------------------------------
    # Observation entry points
    # ------------------------------------------------------------------
    def observe_tick(self, tick: int, records: list[RequestRecord]) -> None:
        """Check every envelope of one tick, then the cross-request properties."""
        for record in records:
            self._check_envelope_schema(tick, record)
            self._check_shard_placement(tick, record)
            if self.verify_metrics:
                self._tally_expected(record)
        if self.verify_coalescing:
            # Byte-identical duplicates (retry/fan-out traffic) share one
            # answer by construction — verifying one representative per
            # distinct payload checks the same property for half the forwards.
            seen: set = set()
            for record in records:
                request = record.request
                if not isinstance(request, PredictRequest) or not record.envelope.ok:
                    continue
                key = (
                    request.target_id,
                    request.batch_size,
                    request.strict,
                    request.inputs.tobytes(),
                )
                if key in seen:
                    continue
                seen.add(key)
                self._check_coalesced_bits(tick, record)
        self._check_accounting(tick)
        if self.verify_metrics:
            self._check_metrics(tick)

    def _fail(self, invariant: str, tick: int, detail: str) -> None:
        self.violations.append(InvariantViolation(invariant, tick, detail))

    # ------------------------------------------------------------------
    # Metrics reconciliation bookkeeping
    # ------------------------------------------------------------------
    def _tally_expected(self, record: RequestRecord) -> None:
        """Fold one gateway-produced envelope into the expected counter totals.

        Decode failures (``record.request is None``) are answered by
        :func:`repro.serve.decode_line` *before* the gateway — they never
        touch its counters, so they never touch the expectations either.
        """
        if record.request is None:
            return
        envelope = record.envelope
        error = envelope.error if isinstance(envelope.error, dict) else None
        if error is not None and error.get("type") == "overloaded":
            # Shed at the transport's admission bound: the envelope is real
            # (the client got a typed answer) but the gateway never executed
            # the request, so it must not appear in the gateway's books —
            # it appears in the transport's (``net.shed``) instead.
            self._expected_shed += 1
            return
        kind = envelope.kind
        self._expected_requests[kind] = self._expected_requests.get(kind, 0) + 1
        if not envelope.ok:
            self._expected_errors[kind] = self._expected_errors.get(kind, 0) + 1
            return
        payload = envelope.payload if isinstance(envelope.payload, dict) else {}
        if kind == "stream":
            event = payload.get("event")
            if isinstance(event, dict) and isinstance(event.get("action"), str):
                action = event["action"]
                self._expected_actions[action] = self._expected_actions.get(action, 0) + 1
        elif kind == "adapt":
            self._expected_adapt_ok += 1
        elif kind == "predict":
            model = payload.get("model")
            if isinstance(model, str):
                self._expected_predict_models[model] = (
                    self._expected_predict_models.get(model, 0) + 1
                )

    def _tally_resubmit(self, envelope) -> None:
        """Account for one coalescing-verification re-submit the suite issued."""
        self._expected_requests["predict"] = self._expected_requests.get("predict", 0) + 1
        if envelope.ok:
            payload = envelope.payload if isinstance(envelope.payload, dict) else {}
            model = payload.get("model")
            if isinstance(model, str):
                self._expected_predict_models[model] = (
                    self._expected_predict_models.get(model, 0) + 1
                )
        else:
            self._expected_errors["predict"] = self._expected_errors.get("predict", 0) + 1

    def _metric_totals(self) -> dict:
        """Flat ``(scope, name, labels) -> value`` view of the live counters.

        The gateway registry keeps its own scope; the shard registries are
        summed into one ``"shards"`` scope — *which* shard counted an event
        is a placement question (already checked), not an accounting one.
        """
        totals: dict[tuple, float] = {}

        def fold(snapshot: dict, scope: str) -> None:
            for entry in snapshot.get("counters", []):
                key = (scope, entry["name"], tuple(sorted(entry["labels"].items())))
                totals[key] = totals.get(key, 0.0) + entry["value"]

        fold(self.gateway.metrics.snapshot(), "gateway")
        for service in self.gateway.shards:
            fold(service.metrics.snapshot(), "shards")
        return totals

    def _check_metrics(self, tick: int) -> None:
        """Counters must reconcile exactly with the envelopes observed so far."""
        if not self.gateway.metrics.enabled:
            return
        name = "metrics_accounting"
        self.checks[name] += 1
        current = self._metric_totals()

        def delta(scope: str, counter: str, **labels) -> float:
            key = (
                scope,
                counter,
                tuple(sorted((str(k), str(v)) for k, v in labels.items())),
            )
            return current.get(key, 0.0) - self._metrics_baseline.get(key, 0.0)

        def label_values(scope: str, counter: str, label: str) -> set:
            found = set()
            for (entry_scope, entry_name, labels), _ in current.items():
                if entry_scope == scope and entry_name == counter:
                    found.update(value for key, value in labels if key == label)
            return found

        def label_sum(scope: str, counter: str) -> float:
            total = 0.0
            for key in set(current) | set(self._metrics_baseline):
                entry_scope, entry_name, _ = key
                if entry_scope == scope and entry_name == counter:
                    total += current.get(key, 0.0) - self._metrics_baseline.get(key, 0.0)
            return total

        def expect(counter: str, scope: str, expected: float, actual: float, what: str) -> None:
            if actual != expected:
                self._fail(
                    name,
                    tick,
                    f"{counter} counted {actual:g} but the transcript says "
                    f"{expected:g} ({what})",
                )

        for kind in sorted(
            set(self._expected_requests) | label_values("gateway", "serve.requests", "kind")
        ):
            expect(
                f"serve.requests{{kind={kind}}}",
                "gateway",
                self._expected_requests.get(kind, 0),
                delta("gateway", "serve.requests", kind=kind),
                "envelopes produced per kind, coalescing re-submits included",
            )
        for kind in sorted(
            set(self._expected_errors) | label_values("gateway", "serve.errors", "kind")
        ):
            expect(
                f"serve.errors{{kind={kind}}}",
                "gateway",
                self._expected_errors.get(kind, 0),
                delta("gateway", "serve.errors", kind=kind),
                "error envelopes per kind",
            )
        for action in sorted(
            set(self._expected_actions) | label_values("shards", "stream.actions", "action")
        ):
            expect(
                f"stream.actions{{action={action}}}",
                "shards",
                self._expected_actions.get(action, 0),
                delta("shards", "stream.actions", action=action),
                "actions reported by ok stream envelopes",
            )
        expect(
            "service.adaptations{mode=cold}",
            "shards",
            self._expected_adapt_ok + self._expected_actions.get("cold_adapt", 0),
            delta("shards", "service.adaptations", mode="cold"),
            "ok adapt envelopes plus cold stream adaptations",
        )
        expect(
            "service.adaptations{mode=warm}",
            "shards",
            self._expected_actions.get("warm_adapt", 0),
            delta("shards", "service.adaptations", mode="warm"),
            "warm stream adaptations",
        )
        expect(
            "service.cache.hits",
            "shards",
            self._expected_predict_models.get("adapted", 0),
            delta("shards", "service.cache.hits"),
            'ok predictions attributed to the "adapted" model',
        )
        expect(
            "service.cache.misses",
            "shards",
            self._expected_predict_models.get("source", 0),
            delta("shards", "service.cache.misses"),
            'ok predictions attributed to the "source" fallback',
        )
        # Stacked-training accounting (mirrors the serve tiler's tile /
        # padding metrics): stack counters may only move when the gateway
        # actually stacks, every stack holds at least two replicas
        # (singleton groups take the serial path), and each stacked replica
        # is one engine run — the stacked path must not double- or
        # under-count relative to the serial path it replaces.
        stacks = delta("shards", "engine.stacks")
        stack_replicas = delta("shards", "engine.stack_replicas")
        engine_runs = delta("shards", "engine.runs")
        if getattr(self.gateway, "train_batching", 1) <= 1:
            expect(
                "engine.stacks",
                "shards",
                0,
                stacks,
                "no stacked runs with train_batching=1",
            )
            expect(
                "engine.stack_replicas",
                "shards",
                0,
                stack_replicas,
                "no stacked replicas with train_batching=1",
            )
        elif stack_replicas < 2 * stacks:
            self._fail(
                name,
                tick,
                f"engine.stack_replicas counted {stack_replicas:g} across "
                f"{stacks:g} stacks; every stack holds at least two replicas",
            )
        if stack_replicas > engine_runs:
            self._fail(
                name,
                tick,
                f"engine.stack_replicas ({stack_replicas:g}) exceeds "
                f"engine.runs ({engine_runs:g}); every stacked replica is "
                "one engine run",
            )
        # Snapshot-tier accounting: a resume consumes a spill (the model
        # re-enters the cache and must be evicted — spilled — again before
        # the next resume), and a corrupt detection deletes the file, so a
        # fresh spill must precede the next one.  Without a snapshot store
        # the counters must never move at all.
        spilled = delta("shards", "snapshots.spilled")
        resumed = delta("shards", "snapshots.resumed")
        corrupt = delta("shards", "snapshots.corrupt")
        snapshot_tier = any(
            getattr(service, "snapshot_store", None) is not None
            for service in self.gateway.shards
        )
        if not snapshot_tier:
            for counter, value in (
                ("snapshots.spilled", spilled),
                ("snapshots.resumed", resumed),
                ("snapshots.corrupt", corrupt),
            ):
                expect(
                    counter,
                    "shards",
                    0,
                    value,
                    "no snapshot store is attached, so the snapshot tier "
                    "cannot count anything",
                )
        elif resumed + corrupt > spilled:
            self._fail(
                name,
                tick,
                f"snapshots.resumed ({resumed:g}) + snapshots.corrupt "
                f"({corrupt:g}) exceeds snapshots.spilled ({spilled:g}); "
                "every resume and every corruption detection consumes one "
                "spilled file",
            )
        for entry in self.gateway.metrics.snapshot().get("gauges", []):
            if entry["name"] == "serve.queue_depth" and entry["value"] != 0:
                self._fail(
                    name,
                    tick,
                    f"serve.queue_depth{{{entry['labels']}}} is {entry['value']:g} "
                    "at tick end; every submitted request has been answered, "
                    "so the queues must be empty",
                )
        if getattr(self.gateway, "networked", False):
            # Traffic crossed a socket transport: the transport's own books
            # (per-connection ``net.*`` counters in the server's registry)
            # must reconcile with the transcript too.  Labels carry *which*
            # connection counted — an ordering/ownership question — so the
            # accounting identities sum across them.
            net_lines = label_sum("gateway", "net.lines")
            net_accepted = label_sum("gateway", "net.accepted")
            net_shed = label_sum("gateway", "net.shed")
            net_invalid = label_sum("gateway", "net.invalid")
            expect(
                "net.lines",
                "gateway",
                net_accepted + net_shed + net_invalid,
                net_lines,
                "every non-blank wire line is exactly one of "
                "accepted / shed / invalid",
            )
            expect(
                "net.accepted",
                "gateway",
                sum(self._expected_requests.values()),
                net_accepted,
                "admitted wire requests vs gateway-produced envelopes "
                "(coalescing re-submits included)",
            )
            expect(
                "net.shed",
                "gateway",
                self._expected_shed,
                net_shed,
                "requests shed at the admission bound vs overloaded "
                "envelopes in the transcript",
            )
            for entry in self.gateway.metrics.snapshot().get("gauges", []):
                if entry["name"] == "net.queue_depth" and entry["value"] != 0:
                    self._fail(
                        name,
                        tick,
                        f"net.queue_depth{{{entry['labels']}}} is "
                        f"{entry['value']:g} at tick end; every answered "
                        "request has been popped, so connection queues must "
                        "be empty",
                    )

    # ------------------------------------------------------------------
    # Individual invariants
    # ------------------------------------------------------------------
    def _check_envelope_schema(self, tick: int, record: RequestRecord) -> None:
        self.checks["envelope_schema"] += 1
        wire = record.envelope.to_dict()
        name = "envelope_schema"
        keys = set(wire)
        if keys != ENVELOPE_KEYS:
            self._fail(name, tick, f"envelope keys {sorted(keys)} != {sorted(ENVELOPE_KEYS)}")
            return
        if wire["schema"] != SCHEMA:
            self._fail(name, tick, f"schema {wire['schema']!r} != {SCHEMA!r}")
        if not isinstance(wire["ok"], bool) or not isinstance(wire["kind"], str):
            self._fail(name, tick, f"ok/kind badly typed in {wire!r}")
            return
        if wire["target_id"] is not None and not isinstance(wire["target_id"], str):
            self._fail(name, tick, f"target_id not a string: {wire['target_id']!r}")
        if not isinstance(wire["duration_seconds"], float) or wire["duration_seconds"] < 0:
            self._fail(name, tick, f"bad duration_seconds {wire['duration_seconds']!r}")
        if wire["ok"]:
            if not isinstance(wire["payload"], dict) or wire["error"] is not None:
                self._fail(name, tick, f"ok envelope without payload-only body: {wire!r}")
        else:
            error = wire["error"]
            if wire["payload"] is not None or not isinstance(error, dict):
                self._fail(name, tick, f"error envelope without error-only body: {wire!r}")
            elif not isinstance(error.get("type"), str) or not isinstance(
                error.get("message"), str
            ):
                self._fail(name, tick, f"error body missing type/message: {error!r}")

    def _check_shard_placement(self, tick: int, record: RequestRecord) -> None:
        envelope = record.envelope
        payload = envelope.payload
        if not envelope.ok or not isinstance(payload, dict) or "shard" not in payload:
            return
        self.checks["shard_placement"] += 1
        target = envelope.target_id
        shard = payload["shard"]
        expected = self.gateway.shard_for(target)
        if shard != expected:
            self._fail(
                "shard_placement",
                tick,
                f"target {target!r} answered by shard {shard}, rendezvous says {expected}",
            )
        previous = self._placements.setdefault(target, shard)
        if previous != shard:
            self._fail(
                "shard_placement",
                tick,
                f"target {target!r} moved from shard {previous} to {shard} mid-run",
            )

    def _check_coalesced_bits(self, tick: int, record: RequestRecord) -> None:
        """Re-submit a burst-answered prediction alone and compare bits."""
        if not isinstance(record.request, PredictRequest) or not record.envelope.ok:
            return
        self.checks["coalesced_bit_identity"] += 1
        burst = record.envelope.payload
        solo = self.gateway.submit(record.request)
        if self.verify_metrics:
            self._tally_resubmit(solo)
        if not solo.ok:
            self._fail(
                "coalesced_bit_identity",
                tick,
                f"solo re-submit for {record.request.target_id!r} failed: {solo.error}",
            )
            return
        a = np.asarray(burst["prediction"])
        b = np.asarray(solo.payload["prediction"])
        if a.shape != b.shape or a.dtype != b.dtype or a.tobytes() != b.tobytes():
            self._fail(
                "coalesced_bit_identity",
                tick,
                f"coalesced != solo prediction for {record.request.target_id!r} "
                f"(shapes {a.shape}/{b.shape})",
            )
        if burst["model"] != solo.payload["model"]:
            self._fail(
                "coalesced_bit_identity",
                tick,
                f"model attribution drifted for {record.request.target_id!r}: "
                f"{burst['model']} != {solo.payload['model']}",
            )

    def _check_accounting(self, tick: int) -> None:
        """Stream counters and report counts only ever grow."""
        name = "monotone_accounting"
        for shard_index, service in enumerate(self.gateway.shards):
            self.checks[name] += 1
            count = service.n_adapted
            if count < self._last_report_counts[shard_index]:
                self._fail(
                    name,
                    tick,
                    f"shard {shard_index} report count fell from "
                    f"{self._last_report_counts[shard_index]} to {count}",
                )
            self._last_report_counts[shard_index] = count
            if not isinstance(service, StreamingAdaptationService):
                continue
            for target in service.stream_ids():
                stats = service.stream_stats(target)
                self.checks[name] += 1
                previous = self._last_stats.get(target)
                if previous is not None:
                    for counter in MONOTONE_COUNTERS:
                        if stats[counter] < previous[counter]:
                            self._fail(
                                name,
                                tick,
                                f"{target!r} counter {counter} fell from "
                                f"{previous[counter]} to {stats[counter]}",
                            )
                if stats["buffered"] < 0:
                    self._fail(name, tick, f"{target!r} negative buffer {stats['buffered']}")
                adaptations = stats["cold_adaptations"] + stats["warm_adaptations"]
                if adaptations > stats["steps"]:
                    self._fail(
                        name,
                        tick,
                        f"{target!r} has more adaptations ({adaptations}) than "
                        f"ingest steps ({stats['steps']})",
                    )
                self._last_stats[target] = stats

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        """Whether every check so far passed."""
        return not self.violations

    def report(self, max_violations: int = 20) -> dict:
        """JSON-safe per-invariant summary (violations truncated per name)."""
        by_name: dict[str, list[InvariantViolation]] = {name: [] for name in INVARIANT_NAMES}
        for violation in self.violations:
            by_name.setdefault(violation.invariant, []).append(violation)
        return {
            "ok": self.ok,
            "invariants": {
                name: {
                    "ok": not broken,
                    "checks": self.checks.get(name, 0),
                    "violations": [v.to_dict() for v in broken[:max_violations]],
                    "n_violations": len(broken),
                }
                for name, broken in by_name.items()
            },
        }
