"""Workload specifications and their compilation to deterministic event traces.

A :class:`WorkloadSpec` is a complete, JSON-serializable description of a
simulated serving workload: which task and scheme the gateway serves, how it
is sharded, and one or more user **fleets** — each fleet naming how many
virtual users it contains, which target scenarios they play, what drift their
streams carry (reusing the :mod:`repro.data.drift` generators), and the
arrival process (steady, Poisson, or bursty) that schedules their requests on
the virtual clock.

:func:`compile_trace` turns a spec into a :class:`WorkloadTrace`: for every
virtual tick, an ordered list of :class:`TraceEvent`\\ s whose payload is the
*wire line* (the same JSON-lines form ``repro serve`` reads), so the
simulator drives the stack through the real request codec.  Compilation is a
pure function of the spec — every random draw comes from generators seeded
from ``(spec.seed, fleet, user)`` — which is what makes the whole simulation
replayable: same spec + seed, same trace, same transcript, byte for byte.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..data.base import AdaptationTask
from ..data.drift import DRIFT_KINDS, make_drift_stream
from ..runtime.serialization import to_jsonable

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalSpec",
    "FleetSpec",
    "WorkloadSpec",
    "TraceEvent",
    "WorkloadTrace",
    "compile_trace",
    "load_spec",
]

ARRIVAL_KINDS = ("every", "poisson", "bursty")


@dataclass(frozen=True)
class ArrivalSpec:
    """When a fleet's users emit stream batches on the virtual clock.

    Attributes
    ----------
    kind:
        ``"every"`` — one batch every ``every`` ticks, staggered per user;
        ``"poisson"`` — a Poisson(``rate``) number of batches per tick
        (capped at 3 so one tick cannot swallow a whole stream);
        ``"bursty"`` — a Bernoulli(``rate``) trickle, plus a synchronized
        fleet-wide burst of ``burst_size`` batches every ``burst_every``
        ticks (the whole fleet bursts together — that is the point).
    """

    kind: str = "every"
    every: int = 1
    rate: float = 0.6
    burst_every: int = 4
    burst_size: int = 3

    def validate(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"arrival kind must be one of {ARRIVAL_KINDS}, got {self.kind!r}"
            )
        if self.every < 1:
            raise ValueError("arrival.every must be at least 1")
        if not 0.0 <= self.rate <= 1.0 and self.kind == "bursty":
            raise ValueError("arrival.rate must be in [0, 1] for bursty arrivals")
        if self.rate < 0.0:
            raise ValueError("arrival.rate must be non-negative")
        if self.burst_every < 1:
            raise ValueError("arrival.burst_every must be at least 1")
        if self.burst_size < 1:
            raise ValueError("arrival.burst_size must be at least 1")

    def counts(self, n_ticks: int, user_index: int, rng: np.random.Generator) -> list[int]:
        """Stream batches this user emits at every tick (length ``n_ticks``)."""
        if self.kind == "every":
            return [1 if (tick + user_index) % self.every == 0 else 0 for tick in range(n_ticks)]
        if self.kind == "poisson":
            return [int(min(3, rng.poisson(self.rate))) for _ in range(n_ticks)]
        counts = [1 if rng.random() < self.rate else 0 for tick in range(n_ticks)]
        for tick in range(n_ticks):
            if (tick + 1) % self.burst_every == 0:
                counts[tick] += self.burst_size
        return counts


@dataclass(frozen=True)
class FleetSpec:
    """One group of virtual users sharing a drift regime and arrival process.

    Attributes
    ----------
    name:
        Prefix of the fleet's user ids (``"{name}-{index:02d}"``).
    n_users:
        Number of virtual users.
    scenarios:
        Target-scenario names the users cycle through (``None``: every
        scenario of the task, in task order).
    drift, batch_size, drift_point, cycle, noise_scale:
        Forwarded to :func:`repro.data.drift.make_drift_stream`; each user
        gets an independent, per-user-seeded stream.
    arrival:
        The :class:`ArrivalSpec` scheduling stream batches.
    adapt_at:
        Optional tick at which each user submits an explicit
        :class:`~repro.serve.AdaptRequest` with its scenario's adaptation
        block (exercises the batch-adaptation request kind).
    predict_every:
        Ticks between prediction probes per user (0: never).  Probes sample
        ``predict_rows`` rows from the scenario's own inputs.
    predict_duplicates:
        Extra byte-identical copies of every probe — duplicate-target burst
        traffic that must coalesce through the dedup tier.
    strict_predict:
        Send probes with ``strict=true`` (missing adapted models then come
        back as typed error envelopes instead of source fallbacks).
    report_every:
        Ticks between per-user report requests (0: never).
    """

    name: str = "fleet"
    n_users: int = 2
    scenarios: tuple[str, ...] | None = None
    drift: str = "gradual"
    batch_size: int = 12
    drift_point: float = 0.5
    cycle: int | None = None
    noise_scale: float = 2.0
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    adapt_at: int | None = None
    predict_every: int = 2
    predict_rows: int = 4
    predict_duplicates: int = 1
    strict_predict: bool = False
    report_every: int = 0

    def validate(self) -> None:
        if not self.name:
            raise ValueError("fleet name must be non-empty")
        if self.n_users < 1:
            raise ValueError("fleet n_users must be at least 1")
        if self.drift not in DRIFT_KINDS:
            raise ValueError(
                f"fleet drift must be one of {DRIFT_KINDS}, got {self.drift!r}"
            )
        if self.batch_size < 1:
            raise ValueError("fleet batch_size must be at least 1")
        if self.predict_every < 0 or self.report_every < 0:
            raise ValueError("predict_every/report_every must be non-negative")
        if self.predict_rows < 1:
            raise ValueError("fleet predict_rows must be at least 1")
        if self.predict_duplicates < 0:
            raise ValueError("fleet predict_duplicates must be non-negative")
        self.arrival.validate()


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything a reproducible serving simulation needs, in one record.

    The gateway side (task, scheme, shards, service thresholds) mirrors the
    ``repro serve`` CLI; the workload side is the fleet list.  The spec is
    the *only* input of a simulation besides the seed — a spec plus a seed
    pins the full event trace and, through the deterministic serving stack,
    the full envelope transcript.

    Determinism caveat: ``max_cached_models`` defaults to the total user
    count, so no adapted model is ever evicted by capacity pressure.  With a
    smaller explicit cache and ``shard_workers > 1``, *which* model is
    evicted depends on thread completion order and the transcript is no
    longer replayable — the cache-thrash fault plan injects evictions
    explicitly instead, which keeps replay exact.

    ``train_batching`` mirrors the gateway knob of the same name: values
    above 1 stack up to that many same-tick adaptation requests into one
    batched training pass per shard.  Only the lower bound is checked here;
    scheme/model stackability is validated when the gateway is built, so an
    incompatible combination fails before the first tick runs.

    ``snapshots`` turns on the warm snapshot tier under every shard's LRU
    cache: evicted adapted models spill to ``repro.snapshot/v1`` files and
    warm-resume on the next touch.  The spec stays a pure value — it only
    says *whether* the tier exists; the simulator backs it with a fresh
    private temporary directory per gateway build, so replay verification
    always starts from an empty store and stays byte-exact.
    """

    task: str = "housing"
    scheme: str = "tasfar"
    scale: str = "tiny"
    seed: int = 0
    n_ticks: int = 8
    tick_seconds: float = 1.0
    n_shards: int = 2
    shard_workers: int = 2
    executor: str = "thread"
    train_batching: int = 1
    snapshots: bool = False
    max_cached_models: int | None = None
    min_adapt_events: int = 24
    readapt_budget: int = 64
    warm_epochs: int | None = None
    drift_threshold: float = 0.10
    config_overrides: Mapping = field(default_factory=dict)
    fleets: tuple[FleetSpec, ...] = (FleetSpec(),)
    fault_plan: str = "none"
    fault_options: Mapping = field(default_factory=dict)
    verify_coalescing: bool = True
    final_report: bool = True

    # ------------------------------------------------------------------
    # Validation / derived values
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the spec against the live registries; raise ``ValueError``."""
        import dataclasses as _dataclasses

        from ..core.config import TasfarConfig
        from ..data.tasks import SCALES, task_names
        from ..engine.registry import strategy_names
        from .faults import fault_plan_names

        if self.task not in task_names():
            raise ValueError(
                f"unknown task {self.task!r}; expected one of {task_names()}"
            )
        if self.scheme not in strategy_names():
            raise ValueError(
                f"unknown scheme {self.scheme!r}; expected one of {strategy_names()}"
            )
        if self.scale not in SCALES:
            raise ValueError(
                f"unknown scale {self.scale!r}; expected one of {tuple(SCALES)}"
            )
        config_fields = {f.name for f in _dataclasses.fields(TasfarConfig)}
        unknown_overrides = set(self.config_overrides) - config_fields
        if unknown_overrides:
            raise ValueError(
                f"unknown config_overrides key(s) {sorted(unknown_overrides)}; "
                f"expected a subset of {sorted(config_fields)}"
            )
        if self.fault_plan not in fault_plan_names():
            raise ValueError(
                f"unknown fault plan {self.fault_plan!r}; "
                f"expected one of {fault_plan_names()}"
            )
        if self.n_ticks < 1:
            raise ValueError("n_ticks must be at least 1")
        if self.tick_seconds <= 0:
            raise ValueError("tick_seconds must be positive")
        if self.n_shards < 1 or self.shard_workers < 1:
            raise ValueError("n_shards and shard_workers must be at least 1")
        if self.executor not in ("thread", "process"):
            raise ValueError(
                f"executor must be 'thread' or 'process', got {self.executor!r}"
            )
        if self.train_batching < 1:
            raise ValueError("train_batching must be at least 1")
        if self.max_cached_models is not None and self.max_cached_models < 1:
            raise ValueError("max_cached_models must be at least 1")
        if self.min_adapt_events < 1 or self.readapt_budget < 1:
            raise ValueError("min_adapt_events and readapt_budget must be at least 1")
        if self.warm_epochs is not None and self.warm_epochs < 1:
            raise ValueError("warm_epochs must be at least 1")
        if not self.fleets:
            raise ValueError("spec needs at least one fleet")
        for fleet in self.fleets:
            fleet.validate()
        names = [fleet.name for fleet in self.fleets]
        if len(set(names)) != len(names):
            raise ValueError(f"fleet names must be unique, got {names}")

    @property
    def n_users(self) -> int:
        """Total virtual users across all fleets."""
        return sum(fleet.n_users for fleet in self.fleets)

    def cache_capacity(self) -> int:
        """Per-shard LRU capacity: explicit, or the whole fleet (see caveat)."""
        if self.max_cached_models is not None:
            return self.max_cached_models
        return max(1, self.n_users)

    # ------------------------------------------------------------------
    # (De)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-builtins form, loadable back via :meth:`from_dict`."""
        return to_jsonable(dataclasses.asdict(self))

    @classmethod
    def from_dict(cls, payload: Mapping) -> "WorkloadSpec":
        """Build and validate a spec from a JSON-style dictionary.

        Unknown keys raise :class:`ValueError` so a typo in a spec file
        fails loudly instead of silently running the default workload.
        """
        data = dict(_require_mapping(payload, "spec"))
        fleets = data.pop("fleets", None)
        spec_kwargs = _check_fields(cls, data, "spec")
        if fleets is not None:
            if not isinstance(fleets, (list, tuple)):
                raise ValueError("spec 'fleets' must be a list of fleet objects")
            spec_kwargs["fleets"] = tuple(_fleet_from_dict(item) for item in fleets)
        spec = cls(**spec_kwargs)
        spec.validate()
        return spec

    def replace(self, **changes) -> "WorkloadSpec":
        """A validated copy with ``changes`` applied (CLI overrides)."""
        spec = dataclasses.replace(self, **changes)
        spec.validate()
        return spec


def _require_mapping(payload: object, name: str) -> Mapping:
    if not isinstance(payload, Mapping):
        raise ValueError(f"{name} must be a JSON object, got {type(payload).__name__}")
    return payload


def _check_fields(cls, data: dict, name: str) -> dict:
    """Reject unknown keys, coerce list-valued tuple fields."""
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"unknown {name} field(s) {sorted(unknown)}; expected a subset of {sorted(known)}"
        )
    return data


def _fleet_from_dict(payload: Mapping) -> FleetSpec:
    data = dict(_require_mapping(payload, "fleet"))
    arrival = data.pop("arrival", None)
    kwargs = _check_fields(FleetSpec, data, "fleet")
    if kwargs.get("scenarios") is not None:
        kwargs["scenarios"] = tuple(str(name) for name in kwargs["scenarios"])
    if arrival is not None:
        arrival_kwargs = _check_fields(ArrivalSpec, dict(_require_mapping(arrival, "arrival")), "arrival")
        kwargs["arrival"] = ArrivalSpec(**arrival_kwargs)
    return FleetSpec(**kwargs)


def load_spec(path: str) -> WorkloadSpec:
    """Load and validate a :class:`WorkloadSpec` from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"spec file {path!r} is not valid JSON: {exc}") from exc
    return WorkloadSpec.from_dict(payload)


# ----------------------------------------------------------------------
# Trace compilation
# ----------------------------------------------------------------------
@dataclass
class TraceEvent:
    """One scheduled wire line of the simulated workload.

    ``line`` is exactly what a ``repro serve`` client would write on stdin;
    fault plans may rewrite it (or replace it with junk).  ``note`` records
    the fault provenance (``"duplicate"``, ``"junk"``, ``"corrupt"``) for
    the invariant report; it never reaches the serving stack.
    """

    tick: int
    seq: int
    kind: str
    user: str | None
    line: str
    note: str | None = None


@dataclass
class WorkloadTrace:
    """The compiled workload: per-tick ordered wire lines plus provenance."""

    spec: WorkloadSpec
    users: dict[str, str]  #: user id -> scenario name
    ticks: list[list[TraceEvent]]

    @property
    def n_events(self) -> int:
        """Total wire lines across all ticks."""
        return sum(len(events) for events in self.ticks)

    def resequence(self) -> None:
        """Reassign ``tick``/``seq`` after fault plans mutate the tick lists."""
        for tick, events in enumerate(self.ticks):
            for seq, event in enumerate(events):
                event.tick = tick
                event.seq = seq


def _user_rng(spec: WorkloadSpec, fleet_index: int, user_index: int, purpose: int):
    """A generator seeded purely by ``(seed, fleet, user, purpose)``."""
    return np.random.default_rng(
        [int(spec.seed) % (2**31), 0x51D, fleet_index, user_index, purpose]
    )


def _stream_seed(spec: WorkloadSpec, fleet_index: int, user_index: int) -> int:
    """Integer seed for a user's drift stream (mutually independent users)."""
    return (int(spec.seed) * 1_000_003 + fleet_index * 1_009 + user_index * 7) % (2**31)


def _wire(payload: dict) -> str:
    """One JSON wire line, the exact form ``repro serve`` reads."""
    return json.dumps(to_jsonable(payload))


def compile_trace(spec: WorkloadSpec, task: AdaptationTask | None = None) -> WorkloadTrace:
    """Compile a spec into its deterministic per-tick event trace.

    ``task`` defaults to the registry bundle named by the spec; the
    simulator passes the task of the gateway it built so the trace and the
    serving side always agree on scenarios and feature widths.
    """
    spec.validate()
    if task is None:
        from ..experiments import get_bundle

        task = get_bundle(spec.task, spec.scale, spec.seed).task

    scenario_by_name = {scenario.name: scenario for scenario in task.scenarios}
    users: dict[str, str] = {}
    ticks: list[list[TraceEvent]] = [[] for _ in range(spec.n_ticks)]

    for fleet_index, fleet in enumerate(spec.fleets):
        names = (
            list(fleet.scenarios)
            if fleet.scenarios is not None
            else [scenario.name for scenario in task.scenarios]
        )
        unknown = [name for name in names if name not in scenario_by_name]
        if unknown:
            raise ValueError(
                f"fleet {fleet.name!r} names unknown scenario(s) {unknown}; "
                f"task {task.name!r} has {sorted(scenario_by_name)}"
            )
        for user_index in range(fleet.n_users):
            user_id = f"{fleet.name}-{user_index:02d}"
            scenario = scenario_by_name[names[user_index % len(names)]]
            users[user_id] = scenario.name

            arrival_rng = _user_rng(spec, fleet_index, user_index, purpose=1)
            probe_rng = _user_rng(spec, fleet_index, user_index, purpose=2)
            counts = fleet.arrival.counts(spec.n_ticks, user_index, arrival_rng)
            total_batches = sum(counts)
            stream = (
                make_drift_stream(
                    scenario,
                    kind=fleet.drift,
                    n_steps=total_batches,
                    batch_size=fleet.batch_size,
                    drift_point=fleet.drift_point,
                    cycle=fleet.cycle,
                    noise_scale=fleet.noise_scale,
                    seed=_stream_seed(spec, fleet_index, user_index),
                )
                if total_batches
                else None
            )

            consumed = 0
            for tick in range(spec.n_ticks):
                events = ticks[tick]
                if fleet.adapt_at is not None and tick == fleet.adapt_at:
                    events.append(
                        TraceEvent(
                            tick,
                            0,
                            "adapt",
                            user_id,
                            _wire(
                                {
                                    "kind": "adapt",
                                    "target_id": user_id,
                                    "inputs": scenario.adaptation.inputs,
                                }
                            ),
                        )
                    )
                for _ in range(counts[tick]):
                    batch = stream.batches[consumed]
                    consumed += 1
                    events.append(
                        TraceEvent(
                            tick,
                            0,
                            "stream",
                            user_id,
                            _wire(
                                {
                                    "kind": "stream",
                                    "target_id": user_id,
                                    "batch": batch.inputs,
                                }
                            ),
                        )
                    )
                if fleet.predict_every and (tick + user_index) % fleet.predict_every == 0:
                    pool = scenario.adaptation.inputs
                    rows = probe_rng.choice(len(pool), size=fleet.predict_rows, replace=True)
                    line = _wire(
                        {
                            "kind": "predict",
                            "target_id": user_id,
                            "inputs": pool[rows],
                            "strict": fleet.strict_predict,
                        }
                    )
                    for _ in range(1 + fleet.predict_duplicates):
                        events.append(TraceEvent(tick, 0, "predict", user_id, line))
                if fleet.report_every and tick % fleet.report_every == 0:
                    events.append(
                        TraceEvent(
                            tick,
                            0,
                            "report",
                            user_id,
                            _wire({"kind": "report", "target_id": user_id}),
                        )
                    )

    if spec.final_report:
        ticks[-1].append(
            TraceEvent(spec.n_ticks - 1, 0, "report", None, _wire({"kind": "report"}))
        )

    trace = WorkloadTrace(spec=spec, users=users, ticks=ticks)
    trace.resequence()
    return trace
