"""Deterministic workload simulation and fault injection for the serving stack.

This package is the repo's standing integration-test engine and a
user-facing scenario tool in one:

* :mod:`repro.sim.spec` — :class:`WorkloadSpec`: a JSON description of user
  fleets, arrival processes, drift schedules and burst patterns, compiled by
  :func:`compile_trace` into a reproducible per-tick wire-line trace;
* :mod:`repro.sim.faults` — the pluggable :class:`FaultPlan` registry
  (``none`` / ``wire_chaos`` / ``shard_crash`` / ``cache_thrash`` /
  ``conn_churn`` / ``slow_client``) injecting deterministic failures at the
  wire, state, and transport levels;
* :mod:`repro.sim.invariants` — the :class:`InvariantSuite` oracle checking
  envelope schema validity, shard-placement stability, coalesced-vs-solo
  prediction bit-identity and monotone accounting after every tick;
* :mod:`repro.sim.simulator` — the virtual-clock :class:`Simulator` driving
  a live :class:`~repro.serve.Gateway`, plus :func:`verify_replay`, the
  byte-identical replay-determinism check, and :func:`verify_transport`,
  the same oracle run across the socket transport (TCP vs in-process,
  byte-identical).

Entry points: ``repro simulate`` on the command line (spec JSON in,
canonical transcript + invariant report out) and the pytest scenario matrix
under ``tests/sim/``.
"""

from .faults import (
    FAULT_PLANS,
    FaultPlan,
    create_fault_plan,
    fault_plan_names,
    register_fault_plan,
)
from .invariants import INVARIANT_NAMES, InvariantSuite, InvariantViolation, RequestRecord
from .simulator import (
    SimulationResult,
    Simulator,
    build_gateway,
    run_simulation,
    scrub_wall_clock,
    verify_replay,
    verify_transport,
)
from .spec import (
    ARRIVAL_KINDS,
    ArrivalSpec,
    FleetSpec,
    TraceEvent,
    WorkloadSpec,
    WorkloadTrace,
    compile_trace,
    load_spec,
)

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalSpec",
    "FAULT_PLANS",
    "FaultPlan",
    "FleetSpec",
    "INVARIANT_NAMES",
    "InvariantSuite",
    "InvariantViolation",
    "RequestRecord",
    "SimulationResult",
    "Simulator",
    "TraceEvent",
    "WorkloadSpec",
    "WorkloadTrace",
    "build_gateway",
    "compile_trace",
    "create_fault_plan",
    "fault_plan_names",
    "load_spec",
    "register_fault_plan",
    "run_simulation",
    "scrub_wall_clock",
    "verify_replay",
    "verify_transport",
]
